//! The Agrawal–Evfimievski–Srikant private set intersection (SIGMOD'03 —
//! the paper's ref \[26\]).
//!
//! This is the protocol whose measured cost the paper quotes to motivate
//! secret sharing: "10 documents at one site and 100 documents at another
//! (each with 1000 words) could take as much as 2 hours of computation
//! and approximately 3 Gigabits of data transmission".
//!
//! Protocol (semi-honest two-party):
//! 1. Both parties hash every item into the shared safe-prime group.
//! 2. A sends E_a(h(x)) for its items; B sends E_b(h(y)) for its items.
//! 3. Each adds its own layer to the other's list and A gets both
//!    double-encrypted lists; commutativity makes equal items collide.
//!
//! Every step is one modular exponentiation per item per layer — four
//! modexps per element pair of lists — which is exactly where the hours
//! go.

use dasp_bigint::BigUint;
use dasp_crypto::CommutativeCipher;
use rand::Rng;

/// Detailed cost report for one intersection run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IntersectionCost {
    /// Total modular exponentiations (both parties).
    pub mod_exps: u64,
    /// Total bytes exchanged.
    pub bytes: u64,
    /// Items in the computed intersection.
    pub matches: u64,
}

/// Run the full protocol over two item sets, returning the intersection
/// (as indices into `a_items`) and the cost.
pub fn commutative_intersection<R: Rng + ?Sized>(
    prime: &BigUint,
    a_items: &[Vec<u8>],
    b_items: &[Vec<u8>],
    rng: &mut R,
) -> (Vec<usize>, IntersectionCost) {
    let alice = CommutativeCipher::generate(prime, rng);
    let bob = CommutativeCipher::generate(prime, rng);
    let elem = alice.ciphertext_bytes() as u64;
    let mut cost = IntersectionCost::default();

    // Step 1+2: single-layer encryptions, exchanged.
    let a_single: Vec<BigUint> = a_items
        .iter()
        .map(|x| {
            cost.mod_exps += 1;
            alice.encrypt(&alice.hash_to_group(x))
        })
        .collect();
    let b_single: Vec<BigUint> = b_items
        .iter()
        .map(|y| {
            cost.mod_exps += 1;
            bob.encrypt(&bob.hash_to_group(y))
        })
        .collect();
    cost.bytes += (a_single.len() + b_single.len()) as u64 * elem;

    // Step 3: each party adds its layer to the other's list; B returns
    // A's doubly-encrypted list plus its own.
    let a_double: Vec<BigUint> = a_single
        .iter()
        .map(|c| {
            cost.mod_exps += 1;
            bob.encrypt(c)
        })
        .collect();
    let b_double: Vec<BigUint> = b_single
        .iter()
        .map(|c| {
            cost.mod_exps += 1;
            alice.encrypt(c)
        })
        .collect();
    cost.bytes += (a_double.len() + b_double.len()) as u64 * elem;

    // A intersects the double-encrypted lists.
    let b_set: std::collections::HashSet<Vec<u8>> =
        b_double.iter().map(|c| c.to_be_bytes()).collect();
    let hits: Vec<usize> = a_double
        .iter()
        .enumerate()
        .filter(|(_, c)| b_set.contains(&c.to_be_bytes()))
        .map(|(i, _)| i)
        .collect();
    cost.matches = hits.len() as u64;
    (hits, cost)
}

/// Closed-form cost model for the protocol at scale (so E2 can report the
/// paper's 1M-record configuration without hours of compute): modexps and
/// bytes as functions of the set sizes and group size.
pub fn predicted_cost(a_len: u64, b_len: u64, prime_bits: u64) -> IntersectionCost {
    let elem = prime_bits.div_ceil(8);
    IntersectionCost {
        mod_exps: 2 * (a_len + b_len),
        bytes: 2 * (a_len + b_len) * elem,
        matches: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_crypto::commutative::shared_test_prime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn items(names: &[&str]) -> Vec<Vec<u8>> {
        names.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn finds_exact_intersection() {
        let mut rng = StdRng::seed_from_u64(51);
        let p = shared_test_prime();
        let a = items(&["apple", "banana", "cherry", "date"]);
        let b = items(&["banana", "date", "elderberry"]);
        let (hits, cost) = commutative_intersection(&p, &a, &b, &mut rng);
        assert_eq!(hits, vec![1, 3]); // banana, date
        assert_eq!(cost.matches, 2);
        assert_eq!(cost.mod_exps, 2 * (4 + 3));
    }

    #[test]
    fn disjoint_sets_empty() {
        let mut rng = StdRng::seed_from_u64(52);
        let p = shared_test_prime();
        let (hits, _) = commutative_intersection(&p, &items(&["x", "y"]), &items(&["z"]), &mut rng);
        assert!(hits.is_empty());
    }

    #[test]
    fn bytes_scale_linearly() {
        let mut rng = StdRng::seed_from_u64(53);
        let p = shared_test_prime();
        let a = items(&["a", "b", "c", "d", "e", "f"]);
        let b = items(&["a"]);
        let (_, cost) = commutative_intersection(&p, &a, &b, &mut rng);
        let elem = p.bits().div_ceil(8) as u64;
        assert_eq!(cost.bytes, 2 * 7 * elem);
    }

    #[test]
    fn predicted_cost_matches_measured_shape() {
        let mut rng = StdRng::seed_from_u64(54);
        let p = shared_test_prime();
        let a = items(&["q", "r", "s"]);
        let b = items(&["s", "t"]);
        let (_, measured) = commutative_intersection(&p, &a, &b, &mut rng);
        let predicted = predicted_cost(3, 2, p.bits() as u64);
        assert_eq!(measured.mod_exps, predicted.mod_exps);
        assert_eq!(measured.bytes, predicted.bytes);
    }

    #[test]
    fn paper_configuration_predicted_gigabits() {
        // The SIGMOD'03 setup the paper quotes: 10×1000 + 100×1000 words,
        // 1024-bit group. Predicted transfer lands in the gigabit range —
        // matching the "~3 Gbit" narrative (order of magnitude; their
        // protocol variant exchanged more rounds).
        let c = predicted_cost(10_000, 100_000, 1024);
        let gigabits = c.bytes as f64 * 8.0 / 1e9;
        assert!(gigabits > 0.1, "got {gigabits}");
        assert!(c.mod_exps >= 200_000);
    }
}
