//! Encryption-model baselines (paper §II-A).
//!
//! The paper's whole argument is comparative: secret sharing is proposed
//! *because* the encryption-based state of the art (Hacigümüş et al.'s
//! NetDB2 model, order-preserving encryption, homomorphic aggregate
//! encryption, commutative-encryption set intersection) pays heavy
//! compute or leaks through its filtering metadata. This crate implements
//! those comparators faithfully enough to measure:
//!
//! * [`encdb`] — a single-server encrypted DBSP: deterministic AES for
//!   exact-match indexes, bucketization **or** OPE for ranges, AES-CTR
//!   payloads. Reports superset factors (the bucket privacy/performance
//!   trade-off the paper highlights) and crypto-operation counts.
//! * [`paillier_agg`] — aggregation outsourcing à la Ge & Zdonik (paper
//!   ref \[23\]): the server multiplies Paillier ciphertexts; the client
//!   decrypts one number.
//! * [`intersection`] — the Agrawal–Evfimievski–Srikant SIGMOD'03
//!   protocol whose measured costs ("~2 hours / ~3 Gbit") the paper
//!   quotes as the case against encryption (experiment E2).

pub mod encdb;
pub mod intersection;
pub mod paillier_agg;

pub use encdb::{EncClient, EncServer, RangeStrategy};
pub use intersection::{commutative_intersection, IntersectionCost};
pub use paillier_agg::{PaillierAggClient, PaillierAggServer};

/// Crypto-operation and traffic counters for a baseline run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BaselineCost {
    /// AES block operations (encrypt or decrypt).
    pub aes_blocks: u64,
    /// Big-number modular multiplications (Paillier, commutative enc).
    pub mod_muls: u64,
    /// Big-number modular exponentiations.
    pub mod_exps: u64,
    /// Bytes moved client → server.
    pub upload_bytes: u64,
    /// Bytes moved server → client.
    pub download_bytes: u64,
}

impl BaselineCost {
    /// Total bytes both directions.
    pub fn total_bytes(&self) -> u64 {
        self.upload_bytes + self.download_bytes
    }

    /// Accumulate another cost.
    pub fn add(&mut self, other: &BaselineCost) {
        self.aes_blocks += other.aes_blocks;
        self.mod_muls += other.mod_muls;
        self.mod_exps += other.mod_exps;
        self.upload_bytes += other.upload_bytes;
        self.download_bytes += other.download_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_accumulates() {
        let mut a = BaselineCost {
            aes_blocks: 1,
            mod_muls: 2,
            mod_exps: 3,
            upload_bytes: 4,
            download_bytes: 5,
        };
        a.add(&a.clone());
        assert_eq!(a.aes_blocks, 2);
        assert_eq!(a.total_bytes(), 18);
    }
}
