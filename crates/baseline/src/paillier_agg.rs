//! Aggregate outsourcing under additively homomorphic encryption
//! (Ge & Zdonik, VLDB'07 — the paper's ref \[23\]).
//!
//! The server stores one Paillier ciphertext per (row, aggregate column)
//! plus a deterministic index for predicates. A SUM query multiplies the
//! matching ciphertexts server-side; the client decrypts a single number.
//! Per-row cost: one ~|n²|-bit modular multiplication at query time and
//! one full Paillier encryption at load time — the compute the paper's
//! secret-sharing approach eliminates.

use crate::BaselineCost;
use dasp_crypto::paillier::{PaillierCiphertext, PaillierKeypair};
use rand::Rng;

/// The untrusted aggregation server.
pub struct PaillierAggServer {
    rows: Vec<(u64, PaillierCiphertext)>, // (group key, ciphertext)
}

impl PaillierAggServer {
    /// Host the encrypted column.
    pub fn new(rows: Vec<(u64, PaillierCiphertext)>) -> Self {
        PaillierAggServer { rows }
    }

    /// Homomorphically sum ciphertexts whose group key matches; returns
    /// the product ciphertext, the match count, and mod-muls spent.
    pub fn sum_group(
        &self,
        pk: &dasp_crypto::paillier::PaillierPublicKey,
        group: u64,
    ) -> (PaillierCiphertext, u64, u64) {
        let mut acc = pk.one_ciphertext();
        let mut count = 0;
        let mut muls = 0;
        for (g, c) in &self.rows {
            if *g == group {
                acc = pk.add(&acc, c);
                count += 1;
                muls += 1;
            }
        }
        (acc, count, muls)
    }
}

/// The trusted client.
pub struct PaillierAggClient {
    keypair: PaillierKeypair,
}

impl PaillierAggClient {
    /// Generate keys (`bits`-bit modulus).
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        PaillierAggClient {
            keypair: PaillierKeypair::generate(bits, rng),
        }
    }

    /// Encrypt `(group, value)` rows for outsourcing.
    pub fn encrypt_rows<R: Rng + ?Sized>(
        &self,
        rows: &[(u64, u64)],
        rng: &mut R,
        cost: &mut BaselineCost,
    ) -> Vec<(u64, PaillierCiphertext)> {
        rows.iter()
            .map(|&(g, v)| {
                // One Paillier encryption ≈ one modexp (r^n) plus a mul.
                cost.mod_exps += 1;
                cost.mod_muls += 1;
                cost.upload_bytes += self.keypair.public().ciphertext_bytes() as u64 + 8;
                (g, self.keypair.public().encrypt_u64(v, rng))
            })
            .collect()
    }

    /// `SELECT SUM(value) WHERE group = g` through the server.
    pub fn sum(
        &self,
        server: &PaillierAggServer,
        group: u64,
        cost: &mut BaselineCost,
    ) -> (u64, u64) {
        cost.upload_bytes += 8;
        let (ct, count, muls) = server.sum_group(self.keypair.public(), group);
        cost.mod_muls += muls;
        cost.download_bytes += self.keypair.public().ciphertext_bytes() as u64;
        // Decryption: one modexp.
        cost.mod_exps += 1;
        (self.keypair.decrypt_u64(&ct), count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grouped_sums_match_plaintext() {
        let mut rng = StdRng::seed_from_u64(41);
        let client = PaillierAggClient::generate(128, &mut rng);
        let mut cost = BaselineCost::default();
        let rows = [(1u64, 500u64), (1, 700), (2, 900), (1, 1), (3, 42)];
        let enc = client.encrypt_rows(&rows, &mut rng, &mut cost);
        let server = PaillierAggServer::new(enc);
        let (sum1, count1) = client.sum(&server, 1, &mut cost);
        assert_eq!((sum1, count1), (1201, 3));
        let (sum2, _) = client.sum(&server, 2, &mut cost);
        assert_eq!(sum2, 900);
        let (sum9, count9) = client.sum(&server, 9, &mut cost);
        assert_eq!((sum9, count9), (0, 0));
        assert!(cost.mod_exps >= rows.len() as u64);
    }

    #[test]
    fn cost_counts_per_row_muls() {
        let mut rng = StdRng::seed_from_u64(42);
        let client = PaillierAggClient::generate(96, &mut rng);
        let mut cost = BaselineCost::default();
        let rows: Vec<(u64, u64)> = (0..20).map(|i| (1, i)).collect();
        let server = PaillierAggServer::new(client.encrypt_rows(&rows, &mut rng, &mut cost));
        let before = cost.mod_muls;
        client.sum(&server, 1, &mut cost);
        assert!(cost.mod_muls - before >= 20);
    }
}
