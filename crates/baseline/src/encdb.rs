//! The single-server encrypted DBSP (Hacigümüş et al. model, paper refs
//! \[1\], \[2\], with OPE per ref \[3\]).
//!
//! Each row is stored as: per-column filtering metadata (deterministic
//! AES ciphertext, a bucket label, and optionally an OPE ciphertext) plus
//! an AES-CTR-encrypted tuple payload. The server filters on metadata
//! only; the client decrypts and post-filters the superset. Bucket count
//! is the privacy dial: fewer buckets leak less, return more.

use crate::BaselineCost;
use dasp_crypto::{Aes128, CtrMode, OpeCipher};

/// How the server evaluates range predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeStrategy {
    /// Coarse bucket labels (superset retrieval + client filtering).
    Bucketized,
    /// Order-preserving encryption (exact server filtering, order leak).
    Ope,
}

/// A stored encrypted row.
#[derive(Debug, Clone)]
pub struct EncRow {
    /// Row id (plaintext — ids are not sensitive here).
    pub id: u64,
    /// Deterministic index per column.
    pub det: Vec<u128>,
    /// Bucket label per column.
    pub bucket: Vec<u32>,
    /// OPE ciphertext per column.
    pub ope: Vec<u128>,
    /// CTR-encrypted tuple payload.
    pub payload: Vec<u8>,
}

/// The untrusted server: filters on metadata, never decrypts.
#[derive(Default)]
pub struct EncServer {
    rows: Vec<EncRow>,
}

impl EncServer {
    /// An empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store rows.
    pub fn insert(&mut self, rows: Vec<EncRow>) {
        self.rows.extend(rows);
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Exact match on the deterministic index.
    pub fn exact(&self, col: usize, det: u128) -> Vec<&EncRow> {
        self.rows.iter().filter(|r| r.det[col] == det).collect()
    }

    /// All rows whose bucket label for `col` is in `buckets`.
    pub fn by_buckets(&self, col: usize, buckets: &[u32]) -> Vec<&EncRow> {
        self.rows
            .iter()
            .filter(|r| buckets.contains(&r.bucket[col]))
            .collect()
    }

    /// OPE range scan.
    pub fn by_ope_range(&self, col: usize, lo: u128, hi: u128) -> Vec<&EncRow> {
        self.rows
            .iter()
            .filter(|r| r.ope[col] >= lo && r.ope[col] <= hi)
            .collect()
    }
}

/// The trusted client: owns the keys, encrypts rows, rewrites queries,
/// decrypts and post-filters results.
pub struct EncClient {
    det: Aes128,
    payload_key: [u8; 16],
    ope: Vec<OpeCipher>,
    n_buckets: u64,
    domains: Vec<u64>,
    next_id: u64,
}

impl EncClient {
    /// A client for rows of `domains.len()` numeric columns, with
    /// `n_buckets` bucket labels per column.
    pub fn new(master: &[u8; 16], domains: Vec<u64>, n_buckets: u64) -> Self {
        assert!(n_buckets > 0, "need at least one bucket");
        let ope = domains
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let mut key = *master;
                key[0] ^= i as u8 + 1;
                OpeCipher::new(&key, d)
            })
            .collect();
        EncClient {
            det: Aes128::new(master),
            payload_key: {
                let mut k = *master;
                k[15] ^= 0xaa;
                k
            },
            ope,
            n_buckets,
            domains,
            next_id: 1,
        }
    }

    fn bucket_of(&self, col: usize, value: u64) -> u32 {
        let width = (self.domains[col] / self.n_buckets).max(1);
        (value / width) as u32
    }

    /// Deterministic index value for (col, value) — domain-separated so
    /// equal values in different columns don't collide.
    fn det_index(&self, col: usize, value: u64) -> u128 {
        self.det.encrypt_u128(((col as u128) << 64) | value as u128)
    }

    /// Encrypt one row of values; increments crypto counters.
    pub fn encrypt_row(&mut self, values: &[u64], cost: &mut BaselineCost) -> EncRow {
        assert_eq!(values.len(), self.domains.len(), "row arity");
        let id = self.next_id;
        self.next_id += 1;
        let det = values
            .iter()
            .enumerate()
            .map(|(c, &v)| {
                cost.aes_blocks += 1;
                self.det_index(c, v)
            })
            .collect();
        let bucket = values
            .iter()
            .enumerate()
            .map(|(c, &v)| self.bucket_of(c, v))
            .collect();
        let ope = values
            .iter()
            .enumerate()
            .map(|(c, &v)| {
                // OPE costs ~log(domain) PRF calls; count one AES-equivalent
                // block per level for comparability.
                cost.aes_blocks += 64 - (self.domains[c].leading_zeros() as u64).min(63);
                self.ope[c].encrypt(v)
            })
            .collect();
        let mut payload: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        CtrMode::new(&self.payload_key, id).apply(&mut payload);
        cost.aes_blocks += payload.len().div_ceil(16) as u64;
        EncRow {
            id,
            det,
            bucket,
            ope,
            payload,
        }
    }

    fn decrypt_payload(&self, row: &EncRow, cost: &mut BaselineCost) -> Vec<u64> {
        let mut payload = row.payload.clone();
        CtrMode::new(&self.payload_key, row.id).apply(&mut payload);
        cost.aes_blocks += payload.len().div_ceil(16) as u64;
        cost.download_bytes += (row.payload.len() + 16 * row.det.len()) as u64;
        payload
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect()
    }

    /// Exact-match query; returns decrypted matching rows.
    pub fn exact(
        &self,
        server: &EncServer,
        col: usize,
        value: u64,
        cost: &mut BaselineCost,
    ) -> Vec<(u64, Vec<u64>)> {
        cost.aes_blocks += 1;
        cost.upload_bytes += 16;
        let hits = server.exact(col, self.det_index(col, value));
        hits.into_iter()
            .map(|r| (r.id, self.decrypt_payload(r, cost)))
            .collect()
    }

    /// Range query; returns decrypted exact matches plus the superset
    /// factor (rows transferred / rows matching — 1.0 is optimal).
    pub fn range(
        &self,
        server: &EncServer,
        col: usize,
        lo: u64,
        hi: u64,
        strategy: RangeStrategy,
        cost: &mut BaselineCost,
    ) -> (Vec<(u64, Vec<u64>)>, f64) {
        let candidates = match strategy {
            RangeStrategy::Bucketized => {
                let b_lo = self.bucket_of(col, lo);
                let b_hi = self.bucket_of(col, hi);
                let buckets: Vec<u32> = (b_lo..=b_hi).collect();
                cost.upload_bytes += 4 * buckets.len() as u64;
                server.by_buckets(col, &buckets)
            }
            RangeStrategy::Ope => {
                cost.upload_bytes += 32;
                cost.aes_blocks += 2 * 64;
                server.by_ope_range(col, self.ope[col].encrypt(lo), self.ope[col].encrypt(hi))
            }
        };
        let fetched = candidates.len();
        let decrypted: Vec<(u64, Vec<u64>)> = candidates
            .into_iter()
            .map(|r| (r.id, self.decrypt_payload(r, cost)))
            .collect();
        let matching: Vec<(u64, Vec<u64>)> = decrypted
            .into_iter()
            .filter(|(_, vals)| vals[col] >= lo && vals[col] <= hi)
            .collect();
        let superset = if matching.is_empty() {
            fetched as f64
        } else {
            fetched as f64 / matching.len() as f64
        };
        (matching, superset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n_buckets: u64) -> (EncClient, EncServer, BaselineCost) {
        let mut client = EncClient::new(b"0123456789abcdef", vec![1 << 20, 1 << 20], n_buckets);
        let mut server = EncServer::new();
        let mut cost = BaselineCost::default();
        let rows: Vec<EncRow> = [
            (100u64, 10_000u64),
            (200, 20_000),
            (100, 40_000),
            (300, 60_000),
            (400, 80_000),
        ]
        .iter()
        .map(|&(a, b)| client.encrypt_row(&[a, b], &mut cost))
        .collect();
        server.insert(rows);
        (client, server, cost)
    }

    #[test]
    fn exact_match_roundtrip() {
        let (client, server, mut cost) = setup(16);
        let hits = client.exact(&server, 0, 100, &mut cost);
        assert_eq!(hits.len(), 2);
        for (_, vals) in &hits {
            assert_eq!(vals[0], 100);
        }
        assert!(cost.aes_blocks > 0);
    }

    #[test]
    fn exact_match_misses_cleanly() {
        let (client, server, mut cost) = setup(16);
        assert!(client.exact(&server, 0, 999, &mut cost).is_empty());
    }

    #[test]
    fn bucketized_range_returns_superset_then_filters() {
        let (client, server, mut cost) = setup(8);
        let (hits, superset) = client.range(
            &server,
            1,
            10_000,
            40_000,
            RangeStrategy::Bucketized,
            &mut cost,
        );
        let mut salaries: Vec<u64> = hits.iter().map(|(_, v)| v[1]).collect();
        salaries.sort_unstable();
        assert_eq!(salaries, vec![10_000, 20_000, 40_000]);
        assert!(superset >= 1.0);
    }

    #[test]
    fn fewer_buckets_bigger_superset() {
        // The paper's privacy/performance trade-off: coarser buckets leak
        // less but transfer more.
        let (client_few, server_few, _) = setup(2);
        let (client_many, server_many, _) = setup(256);
        let mut c1 = BaselineCost::default();
        let mut c2 = BaselineCost::default();
        let (_, s_few) = client_few.range(
            &server_few,
            1,
            10_000,
            12_000,
            RangeStrategy::Bucketized,
            &mut c1,
        );
        let (_, s_many) = client_many.range(
            &server_many,
            1,
            10_000,
            12_000,
            RangeStrategy::Bucketized,
            &mut c2,
        );
        assert!(
            s_few >= s_many,
            "2 buckets (superset {s_few}) must fetch at least as much as 256 ({s_many})"
        );
    }

    #[test]
    fn ope_range_is_exact() {
        let (client, server, mut cost) = setup(4);
        let (hits, superset) =
            client.range(&server, 1, 10_000, 40_000, RangeStrategy::Ope, &mut cost);
        assert_eq!(hits.len(), 3);
        assert_eq!(superset, 1.0, "OPE filters exactly");
    }

    #[test]
    fn same_value_same_det_index_different_columns_differ() {
        let mut client = EncClient::new(b"0123456789abcdef", vec![1000, 1000], 4);
        let mut cost = BaselineCost::default();
        let row = client.encrypt_row(&[5, 5], &mut cost);
        assert_ne!(row.det[0], row.det[1], "column separation");
        let row2 = client.encrypt_row(&[5, 9], &mut cost);
        assert_eq!(row.det[0], row2.det[0], "determinism within a column");
    }

    #[test]
    fn payloads_are_actually_encrypted() {
        let mut client = EncClient::new(b"0123456789abcdef", vec![1000], 4);
        let mut cost = BaselineCost::default();
        let secret = 777u64;
        let row = client.encrypt_row(&[secret], &mut cost);
        assert!(
            !row.payload.windows(8).any(|w| w == secret.to_le_bytes()),
            "plaintext leaked into payload"
        );
    }
}
