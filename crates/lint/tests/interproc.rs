//! Interprocedural rule tests. Each fixture under `tests/fixtures/{t1,
//! l1,p3,b1,w1}/{bad,good}/` is a miniature workspace (its own
//! `crates/` and, for P3, a `vendor/` tree) fed through the real
//! [`analyze_workspace`] pipeline: lexer → item parser → call graph →
//! T1/L1/P3/B1/W1. The bad fixtures pin the exact firing line *and* the
//! full propagation or witness chain; the good fixtures must stay
//! silent for the rule under test (waived findings excepted, which are
//! asserted explicitly).

use dasp_lint::{analyze_workspace, callgraph, parser, report, Finding, Report, Rule};
use std::path::{Path, PathBuf};

fn fixture_root(rule: &str, which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(which)
}

fn run(rule: &str, which: &str) -> Report {
    let root = fixture_root(rule, which);
    analyze_workspace(&root).unwrap_or_else(|e| panic!("analyze {}: {e}", root.display()))
}

/// Unwaived findings of one rule as `(file, line, message)` triples,
/// in report (= sorted) order.
fn of_rule(report: &Report, rule: Rule) -> Vec<(String, u32, String)> {
    report
        .violations()
        .filter(|f| f.rule == rule)
        .map(|f| (f.file.clone(), f.line, f.message.clone()))
        .collect()
}

fn waived_of_rule(report: &Report, rule: Rule) -> Vec<&Finding> {
    report
        .findings
        .iter()
        .filter(|f| f.waived && f.rule == rule)
        .collect()
}

const APP: &str = "crates/app/src/lib.rs";

#[test]
fn t1_bad_reports_direct_and_multi_hop_leaks() {
    let report = run("t1", "bad");
    let got = of_rule(&report, Rule::T1);
    let want = [
        (
            APP.to_string(),
            27,
            "T1 secret taint: value from expose() reaches println! macro in direct_leak"
                .to_string(),
        ),
        (
            APP.to_string(),
            32,
            "T1 secret taint: value from expose() reaches println! macro in chained_leak \
             via log_value"
                .to_string(),
        ),
        (
            APP.to_string(),
            33,
            "T1 secret taint: value from expose() reaches .write_u64() wire write in \
             chained_leak"
                .to_string(),
        ),
    ];
    assert_eq!(got, want, "T1 bad fixture findings");
}

#[test]
fn t1_good_sanitizers_consumers_and_waivers_stay_quiet() {
    let report = run("t1", "good");
    assert_eq!(
        of_rule(&report, Rule::T1),
        vec![],
        "unwaived T1 in good fixture"
    );
    let waived = waived_of_rule(&report, Rule::T1);
    assert_eq!(waived.len(), 1, "exactly the waived dump: {waived:?}");
    assert_eq!(waived[0].line, 28);
}

#[test]
fn l1_bad_reports_discipline_violations_with_witness_chains() {
    let report = run("l1", "bad");
    let got = of_rule(&report, Rule::L1);
    let want = [
        (
            APP.to_string(),
            15,
            "L1 double acquisition: mutex guard taken while a mutex guard is already \
             held in double_mutex"
                .to_string(),
        ),
        (
            APP.to_string(),
            22,
            "L1 lock-order inversion: RwLock read guard taken while a mutex guard is \
             held in inversion (declared order: tables-RwLock before pool-shard mutex)"
                .to_string(),
        ),
        (
            APP.to_string(),
            29,
            "L1 blocking op under guard: channel send while holding a RwLock write \
             guard in send_under_write"
                .to_string(),
        ),
        (
            APP.to_string(),
            35,
            "L1 blocking op under guard: call chain notify sends while send_via_helper \
             holds a RwLock write guard"
                .to_string(),
        ),
    ];
    assert_eq!(got, want, "L1 bad fixture findings");
}

#[test]
fn l1_good_declared_order_and_read_guards_pass() {
    let report = run("l1", "good");
    assert_eq!(of_rule(&report, Rule::L1), vec![], "L1 in good fixture");
}

#[test]
fn p3_bad_reports_cross_crate_reachability_paths() {
    let report = run("p3", "bad");
    let got = of_rule(&report, Rule::P3);
    let want = [
        (
            APP.to_string(),
            9,
            "P3 panic reachability: indexing without get in Shares::pick, reachable \
             via DataSource::select -> decode -> Shares::pick"
                .to_string(),
        ),
        (
            APP.to_string(),
            24,
            "P3 panic reachability: .unwrap() in DataSource::first, reachable via \
             DataSource::first"
                .to_string(),
        ),
        (
            "vendor/mini/src/lib.rs".to_string(),
            10,
            "P3 panic reachability: indexing without get in Rng::next_u64, reachable \
             via DataSource::sample -> Rng::next_u64"
                .to_string(),
        ),
    ];
    assert_eq!(got, want, "P3 bad fixture findings");
    // `orphan` panics but is unreachable from any entry point.
    assert!(
        report
            .findings
            .iter()
            .all(|f| !f.message.contains("orphan")),
        "unreachable fn must not be flagged"
    );
}

#[test]
fn p3_good_checked_access_passes_waiver_surfaces() {
    let report = run("p3", "good");
    assert_eq!(
        of_rule(&report, Rule::P3),
        vec![],
        "unwaived P3 in good fixture"
    );
    let waived = waived_of_rule(&report, Rule::P3);
    assert_eq!(waived.len(), 1, "exactly the waived unwrap: {waived:?}");
    assert_eq!(waived[0].line, 16);
}

#[test]
fn vendor_gets_relaxed_ruleset_u1_plus_p3_only() {
    let report = run("p3", "bad");
    let vendor: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.file.starts_with("vendor/"))
        .collect();
    // The vendored stub derives Debug on a secret-named type (S1 in
    // first-party code) — only U1 and P3 may fire there.
    assert!(
        vendor.iter().all(|f| matches!(f.rule, Rule::U1 | Rule::P3)),
        "vendor findings must be U1/P3 only: {vendor:?}"
    );
    assert!(
        vendor.iter().any(|f| f.rule == Rule::U1 && f.line == 15),
        "bare unsafe in vendor must still fire U1: {vendor:?}"
    );
}

const REACTOR: &str = "crates/app/src/reactor.rs";

#[test]
fn b1_bad_reports_blocking_ops_with_reachability_paths() {
    let report = run("b1", "bad");
    let got = of_rule(&report, Rule::B1);
    let want = [
        (
            REACTOR.to_string(),
            12,
            "B1 blocking on reactor path: fsync in spill, reachable via Shard::run -> spill"
                .to_string(),
        ),
        (
            REACTOR.to_string(),
            19,
            "B1 blocking on reactor path: thread sleep in Conn::flush, reachable via \
             Conn::flush"
                .to_string(),
        ),
        (
            REACTOR.to_string(),
            38,
            "B1 blocking on reactor path: write-capable lock acquisition in Shard::tick, \
             reachable via Shard::tick"
                .to_string(),
        ),
        (
            REACTOR.to_string(),
            43,
            "B1 blocking on reactor path: unbounded channel send in Shard::pump, \
             reachable via Shard::pump"
                .to_string(),
        ),
        (
            REACTOR.to_string(),
            47,
            "B1 blocking on reactor path: durable WAL append in Shard::log_durable, \
             reachable via Shard::log_durable"
                .to_string(),
        ),
    ];
    assert_eq!(got, want, "B1 bad fixture findings");
}

#[test]
fn b1_good_bounded_ops_and_wouldblock_io_pass_waiver_surfaces() {
    let report = run("b1", "good");
    assert_eq!(
        of_rule(&report, Rule::B1),
        vec![],
        "unwaived B1 in good fixture"
    );
    let waived = waived_of_rule(&report, Rule::B1);
    assert_eq!(waived.len(), 1, "exactly the waived backoff: {waived:?}");
    assert_eq!(waived[0].line, 36);
}

#[test]
fn w1_bad_reports_ordering_and_crash_point_violations() {
    let report = run("w1", "bad");
    let got = of_rule(&report, Rule::W1);
    let want = [
        (
            APP.to_string(),
            20,
            "W1 durability ordering: snapshot publish precedes durable WAL append in \
             ProviderEngine::execute_write"
                .to_string(),
        ),
        (
            APP.to_string(),
            26,
            "W1 durability ordering: success ack returned before durable WAL append in \
             ProviderEngine::ack_early"
                .to_string(),
        ),
        (
            APP.to_string(),
            33,
            "W1 durability ordering: snapshot publish precedes durable WAL append in \
             ProviderEngine::publish_via_helper via ProviderEngine::install -> \
             ProviderEngine::set_published"
                .to_string(),
        ),
        (
            APP.to_string(),
            46,
            "W1 crash-point discipline: crash_point_hit result discarded in \
             ProviderEngine::mutate"
                .to_string(),
        ),
        (
            APP.to_string(),
            51,
            "W1 crash-point discipline: execution continues past crash point guard in \
             ProviderEngine::guarded"
                .to_string(),
        ),
    ];
    assert_eq!(got, want, "W1 bad fixture findings");
}

#[test]
fn w1_good_append_then_publish_passes_waiver_surfaces() {
    let report = run("w1", "good");
    assert_eq!(
        of_rule(&report, Rule::W1),
        vec![],
        "unwaived W1 in good fixture"
    );
    let waived = waived_of_rule(&report, Rule::W1);
    assert_eq!(waived.len(), 1, "exactly the waived early ack: {waived:?}");
    assert_eq!(waived[0].line, 41);
}

#[test]
fn c1_bad_reports_lock_order_cycle_with_two_sided_witness() {
    let report = run("c1", "bad");
    let got = of_rule(&report, Rule::C1);
    let want = [(
        APP.to_string(),
        22,
        "C1 lock-order cycle between `Engine.pool` and `Engine.tables`: one thread \
         `Engine::evict` acquires `Engine.tables` (mutex guard) while holding \
         `Engine.pool` via Engine::flush; another thread `Engine::publish` acquires \
         `Engine.pool` (mutex guard) while holding `Engine.tables` — interleaved, \
         each waits for the lock the other holds"
            .to_string(),
    )];
    assert_eq!(got, want, "C1 bad fixture findings");
}

#[test]
fn c1_good_consistent_order_passes_waiver_surfaces() {
    let report = run("c1", "good");
    assert_eq!(
        of_rule(&report, Rule::C1),
        vec![],
        "unwaived C1 in good fixture"
    );
    let waived = waived_of_rule(&report, Rule::C1);
    assert_eq!(waived.len(), 1, "exactly the waived ring: {waived:?}");
    assert_eq!(waived[0].line, 47);
}

/// The e3a2826 regression (reconnect joining its reader thread while
/// holding the state lock the reader's loop takes) plus a two-channel
/// bounded ring. Both must fire with full witness chains.
#[test]
fn c2_bad_reports_reconnect_join_and_bounded_ring() {
    let report = run("c2", "bad");
    let got = of_rule(&report, Rule::C2);
    let want = [
        (
            APP.to_string(),
            24,
            "C2 deadlock: `Conn::reconnect` blocks on a thread join while holding \
             `Conn.state`; the awaited thread spawned in `Conn::reconnect` (entry \
             `reader_loop`) acquires `Conn.state` via reader_loop — the wait can \
             never finish"
                .to_string(),
        ),
        (
            APP.to_string(),
            38,
            "C2 bounded-channel wait cycle: the caller thread blocks in `feed` \
             sending on the bounded channel `(job_tx, job_rx)` created in `pipeline` \
             until the thread spawned in `pipeline` (entry `worker`) drains it; the \
             thread spawned in `pipeline` (entry `worker`) blocks in `worker` \
             sending on the bounded channel `(res_tx, res_rx)` created in `pipeline` \
             until the caller thread drains it — every thread in the ring waits for \
             the next, and the bounded queue can be full"
                .to_string(),
        ),
    ];
    assert_eq!(got, want, "C2 bad fixture findings");
}

/// The fixed shapes: guard dropped before join, single-channel
/// producer/consumer (rendezvous, never a deadlock), and one waived
/// lock-held join.
#[test]
fn c2_good_fixed_shapes_pass_waiver_surfaces() {
    let report = run("c2", "good");
    assert_eq!(
        of_rule(&report, Rule::C2),
        vec![],
        "unwaived C2 in good fixture"
    );
    let waived = waived_of_rule(&report, Rule::C2);
    assert_eq!(waived.len(), 1, "exactly the waived join: {waived:?}");
    assert_eq!(waived[0].line, 57);
}

/// Regression for the call-graph precision upgrade: `Wal::spawn_flusher`
/// calls `std::thread::Builder::new().name(…).spawn(…)` — a chained
/// call on an external type. The old bare-name fallback fabricated an
/// edge to every workspace fn named `spawn`; return-type chaining must
/// classify the receiver as external and emit no edge at all.
#[test]
fn external_builder_spawn_does_not_link_to_workspace_spawn() {
    let src = r#"
pub struct Wal;

impl Wal {
    fn spawn_flusher(shared: u64) -> Option<u64> {
        std::thread::Builder::new()
            .name("dasp-wal-flusher".into())
            .spawn(move || Self::flusher_loop(shared))
            .ok()
    }

    fn flusher_loop(_shared: u64) {}
}

pub struct Cluster;

impl Cluster {
    pub fn spawn(&self, _provider: u64) -> u64 {
        42
    }
}
"#;
    let ws = parser::build_workspace(vec![(
        "crates/storage/src/wal.rs".to_string(),
        false,
        src.to_string(),
    )]);
    let graph = callgraph::CallGraph::build(&ws);
    let find = |impl_type: &str, name: &str| {
        ws.fns
            .iter()
            .position(|f| f.impl_type.as_deref() == Some(impl_type) && f.name == name)
            .unwrap_or_else(|| panic!("{impl_type}::{name} not parsed"))
    };
    let flusher = find("Wal", "spawn_flusher");
    let cluster_spawn = find("Cluster", "spawn");
    let targets: Vec<usize> = graph.edges[flusher].iter().map(|e| e.to).collect();
    assert!(
        !targets.contains(&cluster_spawn),
        "external Builder::spawn must not link to Cluster::spawn: {targets:?}"
    );
    // The closure body still links: the flusher loop is a real callee.
    assert!(
        targets.contains(&find("Wal", "flusher_loop")),
        "Self::flusher_loop edge lost: {targets:?}"
    );
}

#[test]
fn output_is_deterministic_and_sorted() {
    for (rule, which) in [
        ("t1", "bad"),
        ("l1", "bad"),
        ("p3", "bad"),
        ("b1", "bad"),
        ("w1", "bad"),
        ("c1", "bad"),
        ("c2", "bad"),
    ] {
        let a = run(rule, which);
        let b = run(rule, which);
        let render = |r: &Report| {
            r.findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            render(&a),
            render(&b),
            "{rule}/{which} must be reproducible"
        );
        assert_eq!(report::to_json(&a), report::to_json(&b));
        let keys: Vec<_> = a
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line, f.rule.as_str()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "{rule}/{which} findings must be sorted");
    }
}
