//! S1 fixture: three violations, lines 4, 9 and 17.

// A secret-bearing type must not derive Debug.
#[derive(Clone, Debug)]
pub struct EvalPoints(Vec<u64>);

pub struct ClientKeys;

impl std::fmt::Debug for ClientKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "master={:x?}", [0u8; 32])
    }
}

pub fn audit_log(points: &EvalPoints) -> String {
    let _ = points;
    format!("outsourcing with X = {:?}", EvalPoints(vec![1, 2, 3]))
}
