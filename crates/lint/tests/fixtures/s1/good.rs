//! S1 fixture: zero unwaived findings.

pub struct EvalPoints(Vec<u64>);

// dasp::allow(S1): sanctioned redacting impl — prints only the count.
impl std::fmt::Debug for EvalPoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The type name inside the string literal must not trip S1.
        write!(f, "EvalPoints(n={}, X=<redacted>)", self.0.len())
    }
}

// Non-secret types may derive Debug freely.
#[derive(Debug, Clone)]
pub struct PublicStats {
    pub rows: usize,
}

pub fn show(stats: &PublicStats) -> String {
    // A lowercase binding of secret type is invisible to a token-level
    // rule; the redacting Debug impl is what keeps this safe.
    format!("{stats:?}")
}
