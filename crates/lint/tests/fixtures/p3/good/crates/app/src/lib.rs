//! P3 good fixture: checked access everywhere, one justified waiver.

pub struct DataSource;

fn decode(v: &[u64]) -> Option<u64> {
    v.first().copied()
}

impl DataSource {
    pub fn select(&self, v: &[u64]) -> Option<u64> {
        decode(v)
    }

    pub fn waived(&self, v: &[u64]) -> u64 {
        // dasp::allow(P3): fixture demonstrates a justified waiver.
        v.first().copied().unwrap()
    }
}
