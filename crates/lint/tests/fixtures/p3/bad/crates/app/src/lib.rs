//! P3 bad fixture: panics reachable from DataSource entry points.

pub struct DataSource;

struct Shares;

impl Shares {
    fn pick(&self, v: &[u64]) -> u64 {
        v[0]
    }
}

fn decode(v: &[u64]) -> u64 {
    let s = Shares;
    s.pick(v)
}

impl DataSource {
    pub fn select(&self, v: &[u64]) -> u64 {
        decode(v)
    }

    pub fn first(&self, v: &[u64]) -> u64 {
        v.first().copied().unwrap()
    }

    pub fn sample(&self, rng: &Rng, pool: &[u64]) -> u64 {
        rng.next_u64(pool)
    }
}

fn orphan(v: &[u64]) -> u64 {
    v[1]
}
