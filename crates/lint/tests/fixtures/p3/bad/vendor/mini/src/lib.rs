//! Vendored stub fixture: relaxed ruleset (U1 + P3 only).

#[derive(Debug)]
pub struct ClientKeys(pub u64);

pub struct Rng;

impl Rng {
    pub fn next_u64(&self, pool: &[u64]) -> u64 {
        pool[3]
    }
}

pub fn peek(v: &[u64]) -> u64 {
    unsafe { *v.as_ptr() }
}
