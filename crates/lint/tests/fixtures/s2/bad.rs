//! S2 fixture: one violation, line 8 — ClientKeys is not an
//! allowlisted wire DTO, so serializing it ships secret material.

pub struct WireWriter(Vec<u8>);

pub struct ClientKeys;

pub fn write_keys(w: &mut WireWriter, keys: &ClientKeys) {
    let _ = (w, keys);
}
