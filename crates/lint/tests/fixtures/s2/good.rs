//! S2 fixture: zero findings — only allowlisted DTOs cross the wire.

pub struct WireWriter(Vec<u8>);
pub struct WireReader<'a>(&'a [u8]);

pub struct Row;
pub struct PredAtom;

pub fn write_row(w: &mut WireWriter, row: &Row) {
    let _ = (w, row);
}

pub fn write_preds(w: &mut WireWriter, predicate: &[PredAtom]) {
    let _ = (w, predicate);
}

pub fn read_rows<T>(
    r: &mut WireReader<'_>,
    f: impl FnMut(&mut WireReader<'_>) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let _ = (r, f);
    Ok(Vec::new())
}
