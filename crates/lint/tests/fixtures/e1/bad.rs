//! E1 fixture: four discarded Results, lines 4, 5, 6 and 7.

pub fn ship(tx: Sender<u64>, wal: &mut Wal) {
    let _ = tx.send(1);
    tx.send(2).ok();
    let _ = wal.append_durable(b"rec");
    wal.commit().ok();
}
