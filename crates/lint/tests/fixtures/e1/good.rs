//! E1 fixture: every Result is handled, bound, or waived.

pub fn ship(tx: Sender<u64>, wal: &mut Wal) -> Result<(), SendError> {
    tx.send(1)?;
    if tx.send(2).is_err() {
        wal.note_backpressure();
    }
    // Binding the Option keeps the outcome observable — not a discard.
    let acked = tx.send(3).ok();
    let _ = acked;
    wal.append_durable(b"rec")?;
    // dasp::allow(E1): the peer may have hung up mid-shutdown; a dead
    // receiver is expected here and must not fail the drain.
    let _ = tx.send(4);
    Ok(())
}

pub fn relay(tx: Sender<u64>) -> Option<()> {
    // The Option is returned, not dropped.
    return tx.send(5).ok();
}
