//! P2 fixture: zero unwaived findings.

pub fn widen_mul(a: u64, b: u64) -> u128 {
    // Widening casts are exact and therefore allowed.
    a as u128 * b as u128
}

#[inline]
fn lo64(v: u128) -> u64 {
    // dasp::allow(P2): deliberate truncation — the fold keeps the high bits.
    v as u64
}

pub fn fold(v: u128) -> u64 {
    lo64(v) ^ lo64(v >> 64)
}

pub fn index(i: u64) -> usize {
    // Platform-size casts are allowed: they index, they don't compute.
    i as usize
}
