//! P2 fixture: three violations, lines 4, 5 and 6.

pub fn fold(v: u128) -> u64 {
    let lo = v as u64;
    let mid = (v >> 61) as u32;
    let hi = (v >> 122) as u16;
    lo ^ u64::from(mid) ^ u64::from(hi)
}
