//! U1 fixture: zero unwaived findings.

pub fn read_first(bytes: &[u8]) -> Option<u8> {
    if bytes.is_empty() {
        return None;
    }
    // SAFETY: the emptiness check above guarantees at least one byte.
    Some(unsafe { *bytes.as_ptr() })
}
