//! U1 fixture: one violation, line 4 — unsafe without SAFETY.

pub fn read_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
