//! C2 good fixture: the fixed shapes of the bad fixture.
//!
//! `Conn::reconnect` drops the state guard *before* joining the reader
//! (the e3a2826 fix); `pipeline` is plain producer/consumer flow — the
//! bounded job send and the worker's recv of the same channel unblock
//! each other, which is rendezvous, not deadlock. One known lock-held
//! join is waived with a reason.

pub struct Conn {
    pub state: Mutex<u32>,
}

fn reader_loop(conn: &Conn) {
    let g = conn.state.lock();
    drop(g);
}

impl Conn {
    pub fn reconnect(&self) {
        let g = self.state.lock();
        drop(g);
        let h = std::thread::spawn(|| reader_loop(self));
        let _ = h.join();
    }
}

pub fn pipeline() {
    let (job_tx, job_rx) = bounded(1);
    let h = std::thread::spawn(move || worker(job_rx));
    feed(job_tx);
    let _ = h.join();
}

fn feed(job_tx: Sender<u32>) {
    let _ok = job_tx.send(1);
}

fn worker(job_rx: Receiver<u32>) {
    let _j = job_rx.recv();
}

pub struct Flusher {
    pub buf: Mutex<u32>,
}

fn flush_loop(f: &Flusher) {
    let g = f.buf.lock();
    drop(g);
}

impl Flusher {
    pub fn shutdown(&self) {
        let g = self.buf.lock();
        let h = std::thread::spawn(|| flush_loop(self));
        // dasp::allow(C2): the flusher thread exits before shutdown is
        // callable (single-owner handoff); the join cannot block on `buf`.
        let _ = h.join();
        drop(g);
    }
}
