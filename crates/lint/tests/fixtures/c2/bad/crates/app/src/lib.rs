//! C2 bad fixture: both wait-cycle shapes.
//!
//! `Conn::reconnect` is the e3a2826 regression: it holds `Conn.state`
//! while joining the reader thread, and the reader's first act is to
//! lock `Conn.state` — the join can never finish.
//!
//! `pipeline` is a bounded-channel ring: the caller thread blocks
//! sending jobs on a capacity-1 channel while the worker thread blocks
//! sending results back on another capacity-1 channel.

pub struct Conn {
    pub state: Mutex<u32>,
}

fn reader_loop(conn: &Conn) {
    let g = conn.state.lock();
    drop(g);
}

impl Conn {
    pub fn reconnect(&self) {
        let g = self.state.lock();
        let h = std::thread::spawn(|| reader_loop(self));
        let _ = h.join();
        drop(g);
    }
}

pub fn pipeline() {
    let (job_tx, job_rx) = bounded(1);
    let (res_tx, res_rx) = bounded(1);
    let h = std::thread::spawn(move || worker(job_rx, res_tx));
    feed(job_tx, res_rx);
    let _ = h.join();
}

fn feed(job_tx: Sender<u32>, res_rx: Receiver<u32>) {
    let _ok = job_tx.send(1);
    let _r = res_rx.recv();
}

fn worker(job_rx: Receiver<u32>, res_tx: Sender<u32>) {
    let _j = job_rx.recv();
    let _ok = res_tx.send(2);
}
