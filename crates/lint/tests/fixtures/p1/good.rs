//! P1 fixture: zero unwaived findings.

pub fn reconstruct(shares: Vec<Option<u64>>) -> Result<u64, String> {
    let first = shares.first().ok_or("no shares")?;
    let v = first.ok_or("empty share")?;
    // unwrap_or* never panics, so it is not in P1's pattern set.
    let bonus = shares.get(1).copied().flatten().unwrap_or_default();
    Ok(v + bonus)
}

pub fn classify(k: usize) -> &'static str {
    match k {
        0 => "empty",
        _ if k < 64 => "ok",
        // unreachable! is allowed: it documents an invariant the
        // surrounding code already enforces.
        _ => unreachable!("k is validated at construction"),
    }
}

pub fn must(v: Option<u64>) -> u64 {
    // dasp::allow(P1): diagnostic-only helper, never on the provider path.
    v.expect("checked by caller")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        super::reconstruct(vec![Some(1)]).unwrap();
        assert_eq!(super::must(Some(2)), 2);
    }
}
