//! P1 fixture: four violations, lines 4, 5, 7 and 10.

pub fn reconstruct(shares: Vec<Option<u64>>) -> u64 {
    let first = shares.first().unwrap();
    let v = first.expect("share present");
    if shares.len() < 2 {
        panic!("not enough shares");
    }
    let _ = v;
    todo!()
}
