//! L1 good fixture: declared order, early drops, and read-guard sends.

pub struct Channel;

impl Channel {
    pub fn send(&self, _v: u64) {}
}

pub fn declared_order(tables: &RwLock<u32>, shard: &Mutex<u32>) {
    let t = tables.read();
    let s = shard.lock();
    drop(s);
    drop(t);
}

pub fn send_after_drop(tables: &RwLock<u32>, ch: &Channel) {
    let g = tables.write();
    drop(g);
    ch.send(7);
}

pub fn send_under_read(tables: &RwLock<u32>, ch: &Channel) {
    let g = tables.read();
    ch.send(7);
    drop(g);
}
