//! L1 bad fixture: double acquisition, order inversion, sends under guards.

pub struct Channel;

impl Channel {
    pub fn send(&self, _v: u64) {}
}

fn notify(ch: &Channel) {
    ch.send(1);
}

pub fn double_mutex(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock();
    let gb = b.lock();
    drop(gb);
    drop(ga);
}

pub fn inversion(shard: &Mutex<u32>, tables: &RwLock<u32>) {
    let g = shard.lock();
    let t = tables.read();
    drop(t);
    drop(g);
}

pub fn send_under_write(tables: &RwLock<u32>, ch: &Channel) {
    let g = tables.write();
    ch.send(7);
    drop(g);
}

pub fn send_via_helper(tables: &RwLock<u32>, ch: &Channel) {
    let g = tables.write();
    notify(ch);
    drop(g);
}
