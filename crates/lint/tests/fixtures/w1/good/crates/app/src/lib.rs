//! W1 good fixture: append-then-publish, steered crash points, waived ack.

pub struct Wal;

impl Wal {
    pub fn commit(&self, _lsn: u64) {}
}

fn crash_point_hit(_tag: &str) -> bool {
    false
}

pub struct ProviderEngine {
    wal: Wal,
    published: RwLock<u64>,
}

impl ProviderEngine {
    pub fn execute_write(&self, snap: u64, lsn: u64) -> Result<u64, ()> {
        self.wal.commit(lsn);
        *self.published.write() = snap;
        Ok(lsn)
    }

    pub fn steered(&self, lsn: u64) {
        if crash_point_hit("pre-commit") {
            return;
        }
        self.wal.commit(lsn);
    }

    pub fn consumed(&self, lsn: u64) -> bool {
        let hit = crash_point_hit("post-commit");
        self.wal.commit(lsn);
        !hit
    }

    pub fn waived_ack(&self, rows: u64, lsn: u64) -> Result<u64, ()> {
        if rows == 0 {
            // dasp::allow(W1): fixture — empty batch acks without logging
            return Ok(0);
        }
        self.wal.commit(lsn);
        Ok(rows)
    }
}
