//! W1 bad fixture: publish before append, early acks, dropped crash points.

pub struct Wal;

impl Wal {
    pub fn commit(&self, _lsn: u64) {}
}

fn crash_point_hit(_tag: &str) -> bool {
    false
}

pub struct ProviderEngine {
    wal: Wal,
    published: RwLock<u64>,
}

impl ProviderEngine {
    pub fn execute_write(&self, snap: u64, lsn: u64) {
        *self.published.write() = snap;
        self.wal.commit(lsn);
    }

    pub fn ack_early(&self, rows: u64, lsn: u64) -> Result<u64, ()> {
        if rows == 0 {
            return Ok(0);
        }
        self.wal.commit(lsn);
        Ok(rows)
    }

    pub fn publish_via_helper(&self, snap: u64, lsn: u64) {
        self.install(snap);
        self.wal.commit(lsn);
    }

    fn install(&self, snap: u64) {
        self.set_published(snap);
    }

    fn set_published(&self, snap: u64) {
        *self.published.write() = snap;
    }

    pub fn mutate(&self, lsn: u64) {
        crash_point_hit("pre-log");
        self.wal.commit(lsn);
    }

    pub fn guarded(&self, lsn: u64) {
        if crash_point_hit("mid-commit") {
            self.stat();
        }
        self.wal.commit(lsn);
    }

    fn stat(&self) {}
}
