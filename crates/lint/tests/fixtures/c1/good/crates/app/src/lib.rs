//! C1 good fixture: every path takes `Engine.tables` before
//! `Engine.pool` — same shapes as the bad fixture, no cycle — plus one
//! known two-lock ring that is waived with a reason.

pub struct Engine {
    pub tables: Mutex<u32>,
    pub pool: Mutex<u32>,
}

impl Engine {
    pub fn publish(&self) {
        let t = self.tables.lock();
        let p = self.pool.lock();
        drop(p);
        drop(t);
    }

    pub fn evict(&self) {
        let t = self.tables.lock();
        self.reclaim();
        drop(t);
    }

    fn reclaim(&self) {
        let p = self.pool.lock();
        drop(p);
    }
}

pub struct Journal {
    pub log: Mutex<u32>,
    pub index: Mutex<u32>,
}

impl Journal {
    pub fn rotate(&self) {
        let l = self.log.lock();
        let i = self.index.lock();
        drop(i);
        drop(l);
    }

    pub fn compact(&self) {
        let i = self.index.lock();
        // dasp::allow(C1): rotate and compact both run on the single
        // maintenance thread, never concurrently; the ring is unreachable.
        let l = self.log.lock();
        drop(l);
        drop(i);
    }
}
