//! C1 bad fixture: a two-lock order cycle, closed interprocedurally.
//!
//! `publish` takes `Engine.tables` then `Engine.pool`; `evict` takes
//! `Engine.pool` and then reaches `Engine.tables` through `flush`.
//! Interleaved, each thread waits for the lock the other holds.

pub struct Engine {
    pub tables: Mutex<u32>,
    pub pool: Mutex<u32>,
}

impl Engine {
    pub fn publish(&self) {
        let t = self.tables.lock();
        let p = self.pool.lock();
        drop(p);
        drop(t);
    }

    pub fn evict(&self) {
        let p = self.pool.lock();
        self.flush();
        drop(p);
    }

    fn flush(&self) {
        let t = self.tables.lock();
        drop(t);
    }
}
