//! B1 bad fixture: blocking operations reachable from the shard loop.

pub struct Wal;

impl Wal {
    pub fn append_durable(&self, _rec: u64) -> u64 {
        0
    }
}

fn spill(f: &File) {
    f.sync_all();
}

pub struct Conn;

impl Conn {
    pub fn flush(&mut self) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

pub struct Shard {
    state: Mutex<u64>,
    tx: Sender,
    wal: Wal,
    log: File,
}

impl Shard {
    pub fn run(&mut self) {
        self.tick();
        self.pump(7);
        spill(&self.log);
    }

    fn tick(&mut self) {
        let g = self.state.lock();
        drop(g);
    }

    fn pump(&self, v: u64) {
        self.tx.send(v);
    }

    pub fn log_durable(&self, rec: u64) -> u64 {
        self.wal.append_durable(rec)
    }
}
