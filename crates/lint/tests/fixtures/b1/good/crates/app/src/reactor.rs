//! B1 good fixture: bounded ops, WouldBlock-aware I/O, a waived sleep.

pub struct Shard {
    tables: RwLock<u64>,
    tx: Sender,
    rx: Receiver,
}

impl Shard {
    pub fn run(&mut self, stream: &TcpStream, buf: &mut [u8]) -> usize {
        self.peek();
        self.offer(7);
        self.fill(stream, buf)
    }

    fn peek(&self) -> u64 {
        let g = self.tables.read();
        *g
    }

    fn offer(&self, v: u64) {
        let _ = self.tx.try_send(v);
        let _ = self.rx.recv_timeout(v);
    }

    fn fill(&mut self, stream: &TcpStream, buf: &mut [u8]) -> usize {
        match stream.read(buf) {
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => 0,
            Err(_) => 0,
        }
    }

    fn backoff(&self) {
        // dasp::allow(B1): fixture — bounded idle backoff between ticks
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
