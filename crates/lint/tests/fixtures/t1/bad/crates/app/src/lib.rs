//! T1 bad fixture: reconstructed secrets flow into logging and the wire.

pub struct EvalPoints(u64);

impl EvalPoints {
    pub fn expose(&self) -> u64 {
        self.0
    }
}

pub struct WireWriter;

impl WireWriter {
    pub fn write_u64(&mut self, _v: u64) {}
}

fn forward(v: u64) -> u64 {
    v
}

fn log_value(v: u64) {
    println!("value = {}", v);
}

pub fn direct_leak(points: &EvalPoints) {
    let raw = points.expose();
    println!("{}", raw);
}

pub fn chained_leak(points: &EvalPoints, w: &mut WireWriter) {
    let staged = forward(points.expose());
    log_value(staged);
    w.write_u64(staged);
}
