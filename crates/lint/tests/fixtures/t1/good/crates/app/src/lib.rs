//! T1 good fixture: sanitized, consumed, and waived flows stay quiet.

pub struct EvalPoints(Vec<u64>);

impl EvalPoints {
    pub fn expose(&self) -> &[u64] {
        &self.0
    }
}

fn share_for(_v: &[u64]) -> u64 {
    0
}

pub fn sanctioned(points: &EvalPoints) {
    let shares = share_for(points.expose());
    println!("{}", shares);
}

pub fn length_only(points: &EvalPoints) {
    let raw = points.expose();
    println!("{}", raw.len());
}

pub fn waived_dump(points: &EvalPoints) {
    let raw = points.expose();
    // dasp::allow(T1): fixture-sanctioned debug dump of a test vector.
    println!("{:?}", raw);
}
