//! D1 fixture: zero findings — time is injected, never read.

pub fn encode_batch(values: &[u64], logical_epoch: u64) -> Vec<u64> {
    values.iter().map(|v| v ^ logical_epoch).collect()
}
