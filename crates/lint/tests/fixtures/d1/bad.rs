//! D1 fixture: two violations, lines 4 and 6.

pub fn encode_batch(values: &[u64]) -> Vec<u64> {
    let started = std::time::Instant::now();
    let _ = started;
    let _stamp = std::time::SystemTime::now();
    values.to_vec()
}
