//! Robustness: the lexer and the item parser are fed untrusted bytes
//! (every `.rs` file in the tree, including fixtures that are invalid
//! Rust on purpose) and must never panic — a lint that aborts on weird
//! input is a lint that gets disabled. The workspace IR build runs the
//! full pipeline: items, structs, fn bodies, ctx/panic/unit extraction,
//! then the call graph and the B1/W1 interprocedural passes on top
//! (the path hint is a `reactor.rs` so the B1 root filter can match).

use dasp_lint::{blocking, callgraph, deadlock, lexer, ordering, parser};
use proptest::prelude::*;

fn build(src: String) {
    let tokens = lexer::lex(&src);
    // Every token must round back into the source's line range.
    let max_line = src.lines().count() as u32 + 1;
    for t in &tokens {
        assert!(t.line <= max_line, "token line {} out of range", t.line);
    }
    let ws = parser::build_workspace(vec![("crates/app/src/reactor.rs".to_string(), false, src)]);
    // Walk everything the analyzer would: no index may be out of range.
    for f in &ws.fns {
        for ctx in &f.ctxs {
            assert!(ctx.args_start <= ctx.args_end);
        }
    }
    let graph = callgraph::CallGraph::build(&ws);
    let _ = blocking::run_b1(&ws, &graph);
    let _ = ordering::run_w1(&ws, &graph);
    let _ = deadlock::run(&ws);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes, lossily decoded: binary garbage, truncated
    /// multi-byte sequences, NULs.
    #[test]
    fn lexer_parser_survive_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        build(String::from_utf8_lossy(&bytes).into_owned());
    }

    /// Rust-shaped punctuation soup: unbalanced braces, dangling
    /// generics, half-open comments and strings, stray `#` and `!`.
    /// Uppercase letters let the soup spell type names the B1/W1 root
    /// and seed filters match on (`Shard`, `Wal`, `WouldBlock`).
    #[test]
    fn lexer_parser_survive_token_soup(src in "[a-zA-Z0-9 {}();=.,:<>#!&*'\"/_\n-]{0,300}") {
        build(src);
    }

    /// Concurrency-shaped soup for C1/C2: the vocabulary spells spawns,
    /// lock/drop pairs, channel constructors and endpoint ops so the
    /// deadlock passes exercise their scope walks, endpoint propagation
    /// and cycle search on malformed topologies — and must neither
    /// panic nor hang.
    #[test]
    fn deadlock_passes_survive_spawn_lock_channel_soup(
        picks in proptest::collection::vec(0..37usize, 0..120)
    ) {
        const WORDS: [&str; 37] = [
            "fn", "pub", "impl", "struct", "let",
            "self", "move", "||", "std::thread::spawn",
            ".lock()", ".read()", ".write()", "drop",
            "bounded", "unbounded", "channel",
            ".send(1)", ".recv()", ".join()", ".clone()",
            "Mutex<u64>", "tx", "rx", "g", "h",
            "(", ")", "{", "}", ";", ",",
            "=", ".", ":", "&", "_", "\n",
        ];
        let src: String = picks.iter().flat_map(|&i| [WORDS[i], " "]).collect();
        build(src);
    }
}
