//! Robustness: the lexer and the item parser are fed untrusted bytes
//! (every `.rs` file in the tree, including fixtures that are invalid
//! Rust on purpose) and must never panic — a lint that aborts on weird
//! input is a lint that gets disabled. The workspace IR build runs the
//! full pipeline: items, structs, fn bodies, ctx/panic/unit extraction.

use dasp_lint::{lexer, parser};
use proptest::prelude::*;

fn build(src: String) {
    let tokens = lexer::lex(&src);
    // Every token must round back into the source's line range.
    let max_line = src.lines().count() as u32 + 1;
    for t in &tokens {
        assert!(t.line <= max_line, "token line {} out of range", t.line);
    }
    let ws = parser::build_workspace(vec![("crates/app/src/lib.rs".to_string(), false, src)]);
    // Walk everything the analyzer would: no index may be out of range.
    for f in &ws.fns {
        for ctx in &f.ctxs {
            assert!(ctx.args_start <= ctx.args_end);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes, lossily decoded: binary garbage, truncated
    /// multi-byte sequences, NULs.
    #[test]
    fn lexer_parser_survive_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        build(String::from_utf8_lossy(&bytes).into_owned());
    }

    /// Rust-shaped punctuation soup: unbalanced braces, dangling
    /// generics, half-open comments and strings, stray `#` and `!`.
    #[test]
    fn lexer_parser_survive_token_soup(src in "[a-z0-9 {}();=.,:<>#!&*'\"/_\n-]{0,300}") {
        build(src);
    }
}
