//! End-to-end analyzer tests: each rule fires exactly where the bad
//! fixture says it should, stays silent on the good fixture, and the
//! real workspace passes with zero unwaived findings.

use dasp_lint::{analyze_source, Finding, Rule};
use std::path::Path;

/// Read `tests/fixtures/<rule>/<which>`.
fn fixture(rule: &str, which: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(which);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Analyze fixture text as if it lived at `path_hint`, dropping waived
/// findings (the CI gate only sees unwaived ones).
fn violations(path_hint: &str, src: &str) -> Vec<Finding> {
    analyze_source(path_hint, src)
        .into_iter()
        .filter(|f| !f.waived)
        .collect()
}

/// Assert `found` is exactly `rule` at exactly `lines` (sorted).
fn assert_fires(found: &[Finding], rule: Rule, lines: &[u32]) {
    let mut got: Vec<u32> = found
        .iter()
        .map(|f| {
            assert_eq!(f.rule, rule, "unexpected rule in {f}");
            f.line
        })
        .collect();
    got.sort_unstable();
    assert_eq!(got, lines, "findings: {found:?}");
}

#[test]
fn s1_bad_fires_on_derive_impl_and_macro() {
    let found = violations("crates/sss/src/x.rs", &fixture("s1", "bad.rs"));
    assert_fires(&found, Rule::S1, &[4, 9, 17]);
}

#[test]
fn s1_good_is_clean_and_waiver_visible() {
    let src = fixture("s1", "good.rs");
    assert!(violations("crates/sss/src/x.rs", &src).is_empty());
    // The sanctioned impl still registers as a waived finding.
    let all = analyze_source("crates/sss/src/x.rs", &src);
    assert_eq!(all.iter().filter(|f| f.waived).count(), 1);
}

#[test]
fn s2_bad_fires_on_non_allowlisted_type() {
    let found = violations("crates/net/src/x.rs", &fixture("s2", "bad.rs"));
    assert_fires(&found, Rule::S2, &[8]);
    assert!(found[0].message.contains("ClientKeys"));
}

#[test]
fn s2_good_is_clean() {
    assert!(violations("crates/net/src/x.rs", &fixture("s2", "good.rs")).is_empty());
}

#[test]
fn p1_bad_fires_on_every_panic_construct() {
    let found = violations("crates/net/src/x.rs", &fixture("p1", "bad.rs"));
    assert_fires(&found, Rule::P1, &[4, 5, 7, 10]);
}

#[test]
fn p1_good_is_clean() {
    assert!(violations("crates/net/src/x.rs", &fixture("p1", "good.rs")).is_empty());
}

#[test]
fn p1_is_scoped_to_provider_paths() {
    // The same panicky source is fine outside net/server/client-source.
    let src = fixture("p1", "bad.rs");
    let found = violations("crates/workload/src/x.rs", &src);
    assert!(
        found.iter().all(|f| f.rule != Rule::P1),
        "P1 must not fire outside its scope: {found:?}"
    );
    // …and fires in every scoped layer.
    for hint in [
        "crates/net/src/rpc.rs",
        "crates/server/src/engine.rs",
        "crates/client/src/source.rs",
    ] {
        assert!(
            violations(hint, &src).iter().any(|f| f.rule == Rule::P1),
            "P1 must fire under {hint}"
        );
    }
}

#[test]
fn p2_bad_fires_on_lossy_casts() {
    let found = violations("crates/field/src/x.rs", &fixture("p2", "bad.rs"));
    assert_fires(&found, Rule::P2, &[4, 5, 6]);
}

#[test]
fn p2_good_allows_widening_waivers_and_usize() {
    assert!(violations("crates/field/src/x.rs", &fixture("p2", "good.rs")).is_empty());
    assert!(violations("crates/bigint/src/x.rs", &fixture("p2", "good.rs")).is_empty());
}

#[test]
fn d1_bad_fires_on_wall_clock() {
    let found = violations("crates/sss/src/x.rs", &fixture("d1", "bad.rs"));
    assert_fires(&found, Rule::D1, &[4, 6]);
}

#[test]
fn d1_good_is_clean() {
    assert!(violations("crates/sss/src/x.rs", &fixture("d1", "good.rs")).is_empty());
}

#[test]
fn u1_bad_fires_on_bare_unsafe() {
    let found = violations("crates/storage/src/x.rs", &fixture("u1", "bad.rs"));
    assert_fires(&found, Rule::U1, &[4]);
}

#[test]
fn u1_good_safety_comment_waives() {
    assert!(violations("crates/storage/src/x.rs", &fixture("u1", "good.rs")).is_empty());
}

#[test]
fn e1_bad_fires_on_let_underscore_and_bare_ok() {
    let found = violations("crates/net/src/x.rs", &fixture("e1", "bad.rs"));
    assert_fires(&found, Rule::E1, &[4, 5, 6, 7]);
}

#[test]
fn e1_good_handled_bound_and_waived_results_pass() {
    let src = fixture("e1", "good.rs");
    assert!(violations("crates/net/src/x.rs", &src).is_empty());
    let all = dasp_lint::analyze_source("crates/net/src/x.rs", &src);
    assert_eq!(
        all.iter()
            .filter(|f| f.waived && f.rule == Rule::E1)
            .count(),
        1,
        "the shutdown-drain waiver must surface: {all:?}"
    );
}

#[test]
fn e1_is_scoped_to_net_server_storage() {
    let src = fixture("e1", "bad.rs");
    for path in ["crates/lint/src/x.rs", "crates/crypto/src/x.rs"] {
        assert!(
            violations(path, &src).is_empty(),
            "E1 must not fire outside net/server/storage at {path}"
        );
    }
    for path in ["crates/server/src/x.rs", "crates/storage/src/x.rs"] {
        assert_eq!(violations(path, &src).len(), 4, "E1 in scope at {path}");
    }
}

#[test]
fn waivers_are_rule_specific() {
    let src = "fn f(v: Option<u64>) -> u64 {\n\
               // dasp::allow(S1): wrong rule — must not cover P1.\n\
               v.unwrap()\n\
               }\n";
    let found = violations("crates/net/src/x.rs", src);
    assert_fires(&found, Rule::P1, &[3]);
}

#[test]
fn strings_and_comments_never_fire() {
    let src = r#"
        pub fn doc() -> &'static str {
            // .unwrap() and panic! in a comment are fine.
            "call .unwrap() or panic!(now) — only prose"
        }
    "#;
    assert!(violations("crates/net/src/x.rs", src).is_empty());
}

#[test]
fn workspace_self_check_is_clean_modulo_baseline() {
    // CARGO_MANIFEST_DIR = crates/lint → workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = dasp_lint::analyze_workspace(&root).unwrap();
    // Known findings (the interprocedural P3 tail) live in the
    // committed baseline; anything beyond it fails this test the same
    // way `--deny-new` fails CI.
    let baseline_path = root.join("lint-baseline.json");
    let baseline_src = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
    let baseline = dasp_lint::report::Baseline::parse(&baseline_src).unwrap();
    assert!(!baseline.is_empty(), "committed baseline must not be empty");
    let new: Vec<String> = baseline
        .new_findings(&report)
        .iter()
        .map(ToString::to_string)
        .collect();
    assert!(
        new.is_empty(),
        "workspace has findings not in lint-baseline.json:\n{}",
        new.join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "walker should find the whole workspace, got {}",
        report.files_scanned
    );
    assert!(
        report.waived_count() >= 10,
        "sanctioned redacting impls should surface as waived findings, got {}",
        report.waived_count()
    );
}
