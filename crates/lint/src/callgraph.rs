//! Workspace call graph and rule **P3** (transitive panic reachability).
//!
//! Resolution is name-based with three precision tiers:
//!
//! 1. `Type::name(…)` / `Self::name(…)` — exact lookup in the impl
//!    block of that type.
//! 2. `self.name(…)`, `self.field.name(…)`, `param.name(…)`,
//!    `local.field.name(…)` — the receiver chain is typed through the
//!    param list, the struct field table, and a per-fn local type
//!    environment (explicit `let x: T`, RHS field chains, RHS call
//!    return types, `if let Some(x) = …` rebindings), then looked up
//!    exactly. `…).name(…)` chains type the receiver through the
//!    producing call's return type (`ret_types`). A receiver that
//!    types to something *outside* the workspace is classified
//!    `Resolution::External`: no edges, and crucially no fallback —
//!    `std::thread::Builder::new().spawn(…)` must not link to a
//!    workspace fn that happens to be called `spawn`.
//! 3. Bare `recv.name(…)` with an *untypable* receiver — linked to
//!    every workspace method of that name, except when the name
//!    collides with ubiquitous std APIs (`get`, `push`, `clone`, …),
//!    where linking to everything would drown the graph in false
//!    edges. The vendored concurrency APIs (`send`, `recv`, `lock`,
//!    `read`, `write`, …) are the exception to the exception: those
//!    std-colliding names still link into `vendor/` fns, because the
//!    vendored rewrite *is* the implementation that actually runs.

use crate::ir::{Ctx, CtxKind, FnId, FnItem, PanicKind, WorkspaceIr};
use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names that collide with std-library APIs: bare calls with an
/// unresolvable receiver are *not* linked to same-named workspace fns.
const STD_COLLIDING: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "default",
    "drain",
    "entry",
    "eq",
    "extend",
    "filter",
    "find",
    "first",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "new",
    "next",
    "or_insert",
    "parse",
    "pop",
    "position",
    "push",
    "read",
    "recv",
    "remove",
    "resize",
    "rev",
    "send",
    "sort",
    "sort_by",
    "split",
    "split_off",
    "starts_with",
    "sum",
    "take",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "with_capacity",
    "write",
    "zip",
];

/// Std-colliding names that are exactly the vendored concurrency API:
/// bare calls still link to `vendor/` definitions of these.
const VENDOR_API: &[&str] = &[
    "lock",
    "read",
    "recv",
    "recv_timeout",
    "send",
    "send_timeout",
    "try_send",
    "write",
];

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee.
    pub to: FnId,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// The resolved workspace call graph, indexed by caller [`FnId`].
pub struct CallGraph {
    /// `edges[f]` — calls made by `f`, in source order, deduplicated
    /// per (callee, line).
    pub edges: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Resolve every `Call` context of every fn. Bare-name fallback
    /// edges back to the caller itself are dropped: `self.inner.lock()
    /// .backend.sync()` inside `Pager::sync` dispatches on the field,
    /// never recursively (exactly-resolved recursion is kept).
    pub fn build(ws: &WorkspaceIr) -> CallGraph {
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); ws.fns.len()];
        for (id, f) in ws.fns.iter().enumerate() {
            let mut seen = BTreeSet::new();
            for ctx in &f.ctxs {
                if ctx.kind != CtxKind::Call {
                    continue;
                }
                let targets = resolve_call(ws, f, ctx);
                let ambiguous = targets.len() > 1;
                for to in targets {
                    if ambiguous && to == id {
                        continue;
                    }
                    if seen.insert((to, ctx.line)) {
                        edges[id].push(Edge { to, line: ctx.line });
                    }
                }
            }
        }
        CallGraph { edges }
    }
}

/// Type identifiers for a method receiver chain, or `None` when the
/// chain cannot be typed syntactically. `self` resolves to the impl
/// type; `let`-bound locals resolve through [`FnItem::locals`]; further
/// `.field` hops go through the struct table.
pub fn resolve_recv_types(ws: &WorkspaceIr, f: &FnItem, recv: &[String]) -> Option<Vec<String>> {
    recv_types_with(ws, f, &f.locals, recv)
}

/// [`resolve_recv_types`] with an explicit local-binding environment
/// (used while the environment itself is still being built).
fn recv_types_with(
    ws: &WorkspaceIr,
    f: &FnItem,
    locals: &BTreeMap<String, Vec<String>>,
    recv: &[String],
) -> Option<Vec<String>> {
    let (head_ty, rest): (Vec<String>, &[String]) = match recv.split_first() {
        Some((h, rest)) if h == "self" => (vec![f.impl_type.clone()?], rest),
        Some((h, rest)) => {
            if let Some(p) = f.params.iter().find(|p| &p.name == h) {
                (p.ty.clone(), rest)
            } else if let Some(ty) = locals.get(h) {
                (ty.clone(), rest)
            } else {
                return None;
            }
        }
        None => return None,
    };
    let mut ty = head_ty;
    for field in rest {
        // Find the struct in the current type idents that declares the
        // field; generic wrappers (`Arc<Engine>`) scan left to right.
        let next = ty
            .iter()
            .find_map(|t| ws.structs.get(t).and_then(|fs| fs.get(field)))?;
        ty = next.clone();
    }
    Some(ty)
}

/// The three-valued outcome of call resolution. The distinction between
/// `External` and `Unknown` is what keeps the graph precise: a receiver
/// or path that *was* typed but names nothing in the workspace is
/// std/external code — linking its method name to every same-named
/// workspace fn would fabricate edges (`Wal::spawn_flusher →
/// Cluster::spawn` was exactly that).
pub(crate) enum Resolution {
    /// Resolved to these workspace fns.
    Exact(Vec<FnId>),
    /// Typed, but the callee lives outside the workspace: no edges, no
    /// bare-name fallback.
    External,
    /// Untypable: the tier-3 bare-name fallback applies.
    Unknown,
}

/// Depth bound for chained-receiver resolution (`a().b().c()` walks one
/// producing call per level; cycles cannot occur but pathological
/// nesting is cut off).
const CHAIN_DEPTH: usize = 8;

/// All plausible callees of one `Call` context.
pub(crate) fn resolve_call(ws: &WorkspaceIr, caller: &FnItem, ctx: &Ctx) -> Vec<FnId> {
    let name = ctx.callee.as_str();
    match resolve(ws, caller, &caller.locals, ctx, 0) {
        Resolution::Exact(ids) => ids,
        Resolution::External => Vec::new(),
        Resolution::Unknown => {
            // Tier 3: bare fallback, std-colliding names restricted.
            if STD_COLLIDING.contains(&name) {
                if VENDOR_API.contains(&name) {
                    return ws
                        .by_name(name)
                        .filter(|&id| {
                            ws.files[ws.fns[id].file].vendor && ws.fns[id].impl_type.is_some()
                        })
                        .collect();
                }
                return Vec::new();
            }
            // A fallback edge back to the caller itself is dynamic
            // dispatch (`self.inner.lock().backend.page_count()`),
            // never recursion.
            ws.by_name(name)
                .filter(|&id| ws.fns[id].impl_type.is_some() && !std::ptr::eq(&ws.fns[id], caller))
                .collect()
        }
    }
}

/// Tiers 1–2 plus chained-receiver typing.
fn resolve(
    ws: &WorkspaceIr,
    caller: &FnItem,
    locals: &BTreeMap<String, Vec<String>>,
    ctx: &Ctx,
    depth: usize,
) -> Resolution {
    let name = ctx.callee.as_str();
    // Tier 1: a `::` path ending in a type-looking segment.
    if let Some(seg) = ctx.path.last() {
        let ty = if seg == "Self" {
            caller.impl_type.clone()
        } else if seg.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            Some(seg.clone())
        } else {
            None
        };
        if let Some(ty) = ty {
            return match ws.method(&ty, name) {
                Some(id) => Resolution::Exact(vec![id]),
                None => Resolution::External,
            };
        }
        // Module-qualified free fn: match free fns of that name.
        let free: Vec<FnId> = ws
            .by_name(name)
            .filter(|&id| ws.fns[id].impl_type.is_none())
            .collect();
        return if free.is_empty() {
            Resolution::External
        } else {
            Resolution::Exact(free)
        };
    }
    if ctx.method {
        // Tier 2: typed receiver chain (params, `self`, locals).
        if let Some(ty) = recv_types_with(ws, caller, locals, &ctx.recv) {
            for t in &ty {
                if let Some(id) = ws.method(t, name) {
                    return Resolution::Exact(vec![id]);
                }
            }
            return Resolution::External;
        }
        // Tier 2½: `…).name(…)` — type the receiver through the return
        // type of the producing call.
        if ctx.recv == ["<expr>"] && depth < CHAIN_DEPTH {
            if let Some(res) = resolve_chained(ws, caller, locals, ctx, depth) {
                return res;
            }
        }
        return Resolution::Unknown;
    }
    // Free-fn call: prefer free fns; a bare name never targets methods.
    let free: Vec<FnId> = ws
        .by_name(name)
        .filter(|&id| ws.fns[id].impl_type.is_none())
        .collect();
    if free.is_empty() {
        Resolution::External
    } else {
        Resolution::Exact(free)
    }
}

/// Resolve a chained method call whose receiver is a producing call:
/// find the `Call` ctx whose closing `)` sits just before the `.` (a
/// `?` in between is tolerated), resolve it, and look the method up in
/// its return-type idents. An external producing chain stays external —
/// `std::thread::Builder::new().name(…).spawn(…)` resolves to nothing
/// rather than falling back to every workspace `spawn`.
fn resolve_chained(
    ws: &WorkspaceIr,
    caller: &FnItem,
    locals: &BTreeMap<String, Vec<String>>,
    ctx: &Ctx,
    depth: usize,
) -> Option<Resolution> {
    let tokens = &ws.files[caller.file].tokens;
    let dot = crate::parser::prev_nc(tokens, ctx.name_tok)?;
    if !tokens[dot].is_punct('.') {
        return None;
    }
    let mut p = crate::parser::prev_nc(tokens, dot)?;
    if tokens[p].is_punct('?') {
        p = crate::parser::prev_nc(tokens, p)?;
    }
    if !tokens[p].is_punct(')') {
        return None;
    }
    let prod = caller
        .ctxs
        .iter()
        .find(|c| c.kind == CtxKind::Call && c.args_end == p)?;
    match resolve(ws, caller, locals, prod, depth + 1) {
        Resolution::Exact(ids) => {
            let ty = ret_types(ws, &ids);
            if ty.is_empty() {
                return Some(Resolution::Unknown);
            }
            for t in &ty {
                if let Some(id) = ws.method(t, ctx.callee.as_str()) {
                    return Some(Resolution::Exact(vec![id]));
                }
            }
            Some(Resolution::External)
        }
        Resolution::External => Some(Resolution::External),
        Resolution::Unknown => Some(Resolution::Unknown),
    }
}

/// Union of return-type idents over callees, with `Self` substituted by
/// each callee's impl type.
fn ret_types(ws: &WorkspaceIr, ids: &[FnId]) -> Vec<String> {
    let mut ty = Vec::new();
    for &id in ids {
        let callee = &ws.fns[id];
        for r in &callee.ret {
            if r == "Self" {
                if let Some(t) = &callee.impl_type {
                    ty.push(t.clone());
                }
            } else {
                ty.push(r.clone());
            }
        }
    }
    ty
}

/// Fill [`FnItem::locals`] for every fn: one forward pass over the
/// statement units, typing each `let` binding from its explicit
/// annotation, its RHS field chain, or the return type of its RHS call.
/// Runs after the whole workspace is parsed (cross-file struct and
/// return-type lookups), before the call graph is built.
pub fn annotate_locals(ws: &mut WorkspaceIr) {
    let mut all: Vec<BTreeMap<String, Vec<String>>> = Vec::with_capacity(ws.fns.len());
    for f in &ws.fns {
        let tokens = &ws.files[f.file].tokens;
        let mut env: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for u in &f.units {
            let Some(name) = u.let_name.as_ref().or(u.pat_name.as_ref()) else {
                continue;
            };
            if !u.let_ty.is_empty() {
                env.insert(name.clone(), u.let_ty.clone());
                continue;
            }
            if u.deref_rhs {
                continue;
            }
            let Some(rhs) = u.rhs_start else { continue };
            if let Some(ty) = type_of_expr(ws, f, &env, tokens, rhs, u.end) {
                env.insert(name.clone(), ty);
            }
        }
        all.push(env);
    }
    for (f, env) in ws.fns.iter_mut().zip(all) {
        f.locals = env;
    }
}

/// Type an RHS expression: a plain field chain (`&self.inline`,
/// `conn.stream`) through the struct table, or a trailing call
/// (`Wal::open(dir)?`, `self.decoder.next()`) through its return type.
/// `None` when the shape is anything else — untyped is always safe.
fn type_of_expr(
    ws: &WorkspaceIr,
    f: &FnItem,
    env: &BTreeMap<String, Vec<String>>,
    tokens: &[Token],
    rhs: usize,
    end: usize,
) -> Option<Vec<String>> {
    let last_tok = end.min(tokens.len().saturating_sub(1));
    let mut nc: Vec<usize> = (rhs..=last_tok)
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    while let Some(&last) = nc.last() {
        let t = &tokens[last];
        if t.is_punct(';') || t.is_punct('?') || t.is_ident("else") {
            nc.pop();
        } else {
            break;
        }
    }
    while let Some(&first) = nc.first() {
        let t = &tokens[first];
        if t.is_punct('&') || t.is_ident("mut") {
            nc.remove(0);
        } else {
            break;
        }
    }
    let &last = nc.last()?;
    if tokens[last].kind == TokenKind::Ident {
        // A pure `a.b.c` field chain (tuple indices allowed).
        let mut chain = Vec::new();
        let mut expect_ident = true;
        for &i in &nc {
            let t = &tokens[i];
            if expect_ident {
                if t.kind != TokenKind::Ident && t.kind != TokenKind::Number {
                    return None;
                }
                chain.push(t.text.clone());
            } else if !t.is_punct('.') {
                return None;
            }
            expect_ident = !expect_ident;
        }
        if expect_ident {
            return None; // ended on a `.`
        }
        return recv_types_with(ws, f, env, &chain);
    }
    if tokens[last].is_punct(')') {
        let ctx = f
            .ctxs
            .iter()
            .find(|c| c.kind == CtxKind::Call && c.args_end == last)?;
        return match resolve(ws, f, env, ctx, 1) {
            Resolution::Exact(ids) => {
                let ty = ret_types(ws, &ids);
                (!ty.is_empty()).then_some(ty)
            }
            // `Type::ctor(…)` on an external type: the path names the
            // type (`File::create` → `File`), good enough to keep later
            // method calls on the binding external.
            Resolution::External => ctx
                .path
                .last()
                .filter(|s| s.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
                .map(|s| vec![s.clone()]),
            Resolution::Unknown => None,
        };
    }
    None
}

/// The P3 entry points: `ProviderEngine::execute`, every pub method of
/// `Cluster` (whose worker-loop closures live inside `spawn_*`), and
/// every pub method of `DataSource`.
pub fn p3_roots(ws: &WorkspaceIr) -> Vec<FnId> {
    let mut roots = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if ws.files[f.file].vendor {
            continue;
        }
        let is_root = match f.impl_type.as_deref() {
            Some("ProviderEngine") => f.name == "execute",
            Some("Cluster") | Some("DataSource") => f.is_pub,
            _ => false,
        };
        if is_root {
            roots.push(id);
        }
    }
    roots
}

/// Reachability with parent pointers for path reconstruction.
pub struct Reach {
    /// `parent[f]` — predecessor on the first discovered path from a
    /// root; `usize::MAX` marks a root, absence marks unreachable.
    parent: BTreeMap<FnId, FnId>,
}

impl Reach {
    /// BFS from `roots` (processed in order, so paths are stable).
    pub fn from(graph: &CallGraph, roots: &[FnId]) -> Reach {
        let mut parent = BTreeMap::new();
        let mut queue = VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(r) {
                e.insert(usize::MAX);
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for e in &graph.edges[f] {
                if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(e.to) {
                    v.insert(f);
                    queue.push_back(e.to);
                }
            }
        }
        Reach { parent }
    }

    /// True when `f` is reachable from any root.
    pub fn reachable(&self, f: FnId) -> bool {
        self.parent.contains_key(&f)
    }

    /// Root-to-`f` call chain as fn labels (`A::x → B::y → …`).
    pub fn path(&self, ws: &WorkspaceIr, f: FnId) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = f;
        loop {
            chain.push(ws.label(cur));
            match self.parent.get(&cur) {
                Some(&p) if p != usize::MAX => cur = p,
                _ => break,
            }
        }
        chain.reverse();
        chain
    }
}

/// A raw P3 result, before waiver/baseline handling: one finding per
/// (reachable fn, panic kind), anchored at the first site of that kind.
pub struct P3Hit {
    /// The fn containing the panic sites.
    pub fn_id: FnId,
    /// Panic construct kind.
    pub kind: PanicKind,
    /// Lines of all unwaived sites of this kind (first anchors the
    /// finding).
    pub lines: Vec<u32>,
    /// Lines of waived sites of this kind.
    pub waived_lines: Vec<u32>,
    /// Root-to-fn call chain labels.
    pub path: Vec<String>,
}

/// Run P3 over the workspace: every panic-capable construct inside a fn
/// reachable from [`p3_roots`], grouped per (fn, kind).
pub fn run_p3(ws: &WorkspaceIr, graph: &CallGraph) -> Vec<P3Hit> {
    let roots = p3_roots(ws);
    let reach = Reach::from(graph, &roots);
    let mut hits = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !reach.reachable(id) || f.panics.is_empty() {
            continue;
        }
        let file = &ws.files[f.file];
        let mut by_kind: BTreeMap<&'static str, (PanicKind, Vec<u32>, Vec<u32>)> = BTreeMap::new();
        for p in &f.panics {
            let waived = file
                .waivers
                .get(&p.line)
                .is_some_and(|rules| rules.contains("P3"));
            let entry =
                by_kind
                    .entry(p.kind.describe())
                    .or_insert((p.kind, Vec::new(), Vec::new()));
            if waived {
                entry.2.push(p.line);
            } else {
                entry.1.push(p.line);
            }
        }
        let path = reach.path(ws, id);
        for (_, (kind, lines, waived_lines)) in by_kind {
            hits.push(P3Hit {
                fn_id: id,
                kind,
                lines,
                waived_lines,
                path: path.clone(),
            });
        }
    }
    hits
}
