//! Rule **W1** — durability ordering on provider write paths.
//!
//! The group-commit WAL contract (DESIGN.md §7) is apply → log →
//! publish → ack: a snapshot may only become visible, and a success
//! response may only leave the engine, after the WAL append that
//! records the write is durable. The PR-6/7 machinery implements the
//! order; this rule pins it statically, in three checks:
//!
//! * **publish ordering** — in any fn that both publishes a snapshot
//!   (a `write()` lock on a `published` field, directly or through a
//!   callee) and performs a durable WAL append (`Wal::commit` /
//!   `Wal::append_durable`, directly or through a callee), every
//!   publish must sit at or after the first durable append in the
//!   statement sequence. Callee effects are summarized to a fixpoint
//!   over the call graph, so the events carry L1-style witness chains.
//! * **ack ordering** — in any fn that performs a durable append, no
//!   `return Ok` may precede the first durable append: an early success
//!   ack promises durability the WAL has not delivered yet.
//! * **crash-point discipline** — `crash_point_hit(…)` models "the
//!   process dies here" for fault injection; its result must steer
//!   control. A bare `crash_point_hit(…);` statement discards the
//!   verdict, and an `if crash_point_hit(…) { … }` guard whose body
//!   never returns/breaks falls through and keeps mutating state the
//!   simulated crash should have frozen.

use crate::callgraph::{resolve_call, CallGraph};
use crate::ir::{CtxKind, FnId, FnItem, Unit, WorkspaceIr};
use crate::locks::{lock_class, LockClass};

/// One W1 result, pre-waiver.
pub struct W1Hit {
    /// Fn the violation occurs in.
    pub fn_id: FnId,
    /// 1-based line of the offending publish / return / crash point.
    pub line: u32,
    /// Line-free message (stable under unrelated edits).
    pub message: String,
}

/// Per-fn effect summary: `Some(chain)` when the fn (transitively)
/// performs the effect; the chain lists fn labels down to a direct
/// performer.
#[derive(Default, Clone)]
struct Effects {
    /// Durable WAL append (`Wal::commit` / `Wal::append_durable`).
    durable: Option<Vec<String>>,
    /// Snapshot publish (`RwLock::write` on a `published` field).
    publish: Option<Vec<String>>,
}

/// True for the fns that *are* the durable append: blocking until the
/// group-commit flusher has fsynced past the requested LSN.
fn is_durable_seed(f: &FnItem) -> bool {
    f.impl_type.as_deref() == Some("Wal") && (f.name == "commit" || f.name == "append_durable")
}

/// True for a direct snapshot-publish context: a write-capable lock on
/// a field named `published`.
fn is_publish_ctx(ws: &WorkspaceIr, f: &FnItem, ctx: &crate::ir::Ctx) -> bool {
    lock_class(ws, f, ctx) == Some(LockClass::RwWrite)
        && ctx.recv.last().is_some_and(|s| s == "published")
}

/// Compute durable/publish summaries to a fixpoint over the call graph.
fn effects(ws: &WorkspaceIr, graph: &CallGraph) -> Vec<Effects> {
    let mut sums: Vec<Effects> = vec![Effects::default(); ws.fns.len()];
    for (id, f) in ws.fns.iter().enumerate() {
        if is_durable_seed(f) {
            sums[id].durable = Some(vec![ws.label(id)]);
        }
        if f.ctxs.iter().any(|c| is_publish_ctx(ws, f, c)) {
            sums[id].publish = Some(vec![ws.label(id)]);
        }
    }
    loop {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            for e in &graph.edges[id] {
                let callee = sums[e.to].clone();
                let me = &mut sums[id];
                if me.durable.is_none() {
                    if let Some(chain) = callee.durable {
                        let mut c = vec![ws.label(id)];
                        c.extend(chain);
                        me.durable = Some(c);
                        changed = true;
                    }
                }
                if me.publish.is_none() {
                    if let Some(chain) = callee.publish {
                        let mut c = vec![ws.label(id)];
                        c.extend(chain);
                        me.publish = Some(c);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

/// Format a witness suffix for an event that happens through a callee
/// chain; direct events need none.
fn via(chain: &[String]) -> String {
    if chain.len() <= 1 {
        String::new()
    } else {
        format!(" via {}", chain.join(" -> "))
    }
}

/// Run W1 over every first-party fn.
pub fn run_w1(ws: &WorkspaceIr, graph: &CallGraph) -> Vec<W1Hit> {
    let sums = effects(ws, graph);
    let mut hits = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if ws.files[f.file].vendor || f.body.is_none() {
            continue;
        }
        check_ordering(ws, f, id, &sums, &mut hits);
        check_crash_points(ws, f, id, &mut hits);
    }
    hits.sort_by_key(|h| (h.fn_id, h.line));
    hits
}

/// The publish- and ack-ordering checks over one fn's statement
/// sequence. Event positions are the call-site token indices; a single
/// callee that both publishes and appends (a correct write path called
/// whole) yields both events at the same position, which the strict
/// `<` comparisons treat as ordered.
fn check_ordering(ws: &WorkspaceIr, f: &FnItem, id: FnId, sums: &[Effects], hits: &mut Vec<W1Hit>) {
    let label = ws.label(id);
    // (token, line, chain) per event, in source order.
    let mut durables: Vec<(usize, u32, Vec<String>)> = Vec::new();
    let mut publishes: Vec<(usize, u32, Vec<String>)> = Vec::new();
    for ctx in &f.ctxs {
        if ctx.kind != CtxKind::Call {
            continue;
        }
        if is_publish_ctx(ws, f, ctx) {
            publishes.push((ctx.name_tok, ctx.line, vec![label.clone()]));
            continue;
        }
        for callee in resolve_call(ws, f, ctx) {
            if let Some(chain) = &sums[callee].durable {
                durables.push((ctx.name_tok, ctx.line, chain.clone()));
            }
            if let Some(chain) = &sums[callee].publish {
                publishes.push((ctx.name_tok, ctx.line, chain.clone()));
            }
        }
    }
    let Some(&(first_durable, _, _)) = durables.first() else {
        return; // no durable append in scope: nothing to order against
    };
    for (tok, line, chain) in &publishes {
        if *tok < first_durable {
            hits.push(W1Hit {
                fn_id: id,
                line: *line,
                message: format!(
                    "W1 durability ordering: snapshot publish precedes durable WAL append in {label}{}",
                    via(chain)
                ),
            });
        }
    }
    // An early `return Ok` acks a write the WAL has not made durable.
    // Scoped to the engine itself: a client-side early `return Ok` on
    // an empty batch is a no-op exit, not an ack — the contract only
    // binds ProviderEngine write paths (DESIGN.md §8).
    if f.impl_type.as_deref() != Some("ProviderEngine") {
        return;
    }
    let tokens = &ws.files[f.file].tokens;
    for u in &f.units {
        let Some(ret) = unit_head(tokens, u).filter(|&i| tokens[i].is_ident("return")) else {
            continue;
        };
        if ret >= first_durable {
            break; // units are in source order
        }
        let ok = crate::parser::next_nc(tokens, ret + 1)
            .is_some_and(|i| i <= u.end && tokens[i].is_ident("Ok"));
        if ok {
            hits.push(W1Hit {
                fn_id: id,
                line: tokens[ret].line,
                message: format!(
                    "W1 durability ordering: success ack returned before durable WAL append in {label}"
                ),
            });
        }
    }
}

/// First non-comment token of a unit.
fn unit_head(tokens: &[crate::lexer::Token], u: &Unit) -> Option<usize> {
    crate::parser::next_nc(tokens, u.start).filter(|&i| i <= u.end)
}

/// The crash-point discipline check: every `crash_point_hit(…)` call
/// must be consumed as a value or steer control out of the enclosing
/// block.
fn check_crash_points(ws: &WorkspaceIr, f: &FnItem, id: FnId, hits: &mut Vec<W1Hit>) {
    let label = ws.label(id);
    let tokens = &ws.files[f.file].tokens;
    for ctx in &f.ctxs {
        if ctx.kind != CtxKind::Call || ctx.callee != "crash_point_hit" {
            continue;
        }
        let Some((ui, u)) = f
            .units
            .iter()
            .enumerate()
            .find(|(_, u)| u.start <= ctx.name_tok && ctx.name_tok <= u.end)
        else {
            continue;
        };
        let Some(head) = unit_head(tokens, u) else {
            continue;
        };
        // `if crash_point_hit(…) { … }`: the guard body must leave the
        // enclosing block, otherwise execution continues past the
        // simulated crash. A negated or compound guard (`if !hit`,
        // `if armed && hit`) consumes the value and is not modeled.
        if tokens[head].is_ident("if") || tokens[head].is_ident("while") {
            let guarded = crate::parser::next_nc(tokens, head + 1)
                .is_some_and(|i| i <= ctx.name_tok && path_prefix_from(tokens, i, ctx.name_tok));
            if guarded && !guard_body_diverges(tokens, f, ui, u) {
                hits.push(W1Hit {
                    fn_id: id,
                    line: ctx.line,
                    message: format!(
                        "W1 crash-point discipline: execution continues past crash point guard in {label}"
                    ),
                });
            }
            continue;
        }
        // `crash_point_hit(…);` as a whole statement (a `::` path
        // prefix still counts): the verdict is dropped on the floor.
        // Anything else — `let hit = …`, `.map(|()| …)`, `… && hit` —
        // is a value position, consumed by the surrounding expression.
        if !path_prefix_from(tokens, head, ctx.name_tok) {
            continue;
        }
        let terminated = match crate::parser::next_nc(tokens, ctx.args_end + 1) {
            Some(i) => i > u.end || tokens[i].is_punct(';'),
            None => true,
        };
        if terminated {
            hits.push(W1Hit {
                fn_id: id,
                line: ctx.line,
                message: format!(
                    "W1 crash-point discipline: crash_point_hit result discarded in {label}"
                ),
            });
        }
    }
}

/// True when some unit of the guard body (the units nested deeper than
/// `u`, up to the first back at `u`'s depth) leaves the enclosing
/// block.
fn guard_body_diverges(tokens: &[crate::lexer::Token], f: &FnItem, ui: usize, u: &Unit) -> bool {
    for nu in &f.units[ui + 1..] {
        if nu.depth <= u.depth {
            break;
        }
        let end = nu.end.min(tokens.len().saturating_sub(1));
        let escapes = (nu.start..=end).any(|i| {
            tokens[i].is_ident("return")
                || tokens[i].is_ident("break")
                || tokens[i].is_ident("continue")
                || tokens[i].is_ident("panic")
        });
        if escapes {
            return true;
        }
    }
    false
}

/// Statement keywords that disqualify a token run from being a bare
/// call-path prefix.
const STMT_KEYWORDS: &[&str] = &[
    "break", "continue", "else", "for", "if", "let", "loop", "match", "return", "while",
];

/// True when tokens `from..to` are a pure `a::b::` path prefix (no
/// statement keywords, only identifiers and `::`).
fn path_prefix_from(tokens: &[crate::lexer::Token], from: usize, to: usize) -> bool {
    (from..to).all(|i| {
        let t = &tokens[i];
        t.is_comment()
            || (t.kind == crate::lexer::TokenKind::Ident
                && !STMT_KEYWORDS.contains(&t.text.as_str()))
            || t.text == "::"
    })
}
