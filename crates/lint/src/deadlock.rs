//! Rules **C1** and **C2** — whole-program deadlock detection.
//!
//! **C1 — lock-order cycles.** Every lock acquisition is given an
//! identity ([`crate::locks::LockId`]: `Inner.state`, `BufferPool
//! .shards[]`, …). A guard walk per function — run once for the code
//! outside `spawn(…)` closures, and once per spawn closure with the
//! caller's guards cleared, because the closure runs on another thread —
//! records which identities are held when another is acquired, directly
//! or through a callee (per-fn transitive-acquire summaries, computed
//! to a fixpoint like L1's). The acquired-while-held edges form a
//! global graph; any cycle is a potential deadlock: two threads
//! interleaving the witness paths block each other forever. Findings
//! carry a two-sided witness (thread A's order vs thread B's).
//!
//! **C2 — blocking-wait cycles over threads and bounded channels.**
//! The spawn/channel topology is recovered statically: threads are the
//! `spawn(…)` sites plus a synthetic caller thread; channel endpoints
//! are matched from `let (tx, rx) = bounded(n)/unbounded()` construction
//! sites and propagated through `clone()` aliases, captured closures,
//! and argument positions. Two checks:
//!
//! * **wait ring** — a cycle in the thread wait graph (bounded `send` →
//!   receiver thread, blocking `recv` → sender thread, `join` → joined
//!   thread) containing at least one bounded-send edge: every thread in
//!   the ring is blocked waiting for the next.
//! * **lock-held blocking wait** — a function blocks (join / blocking
//!   recv / bounded send) while holding a lock identity the awaited
//!   thread acquires: the exact shape of the PR 7 reconnect deadlock
//!   (fixed in e3a2826), where `reconnect` held the connection-state
//!   mutex while joining a reader thread that locks the same state.
//!
//! Endpoints that vanish into fields or collections are deliberately
//! untracked (no edges): C2 under-approximates rather than guess.

use crate::callgraph::resolve_call;
use crate::ir::{Ctx, CtxKind, FnId, FnItem, WorkspaceIr};
use crate::locks::{lock_class, lock_identity, LockClass, LockId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One C1/C2 result, pre-waiver.
pub struct DeadlockHit {
    /// Fn anchoring the finding (first witness site).
    pub fn_id: FnId,
    /// 1-based line of the anchor site.
    pub line: u32,
    /// Line-free message (stable under unrelated edits).
    pub message: String,
}

/// Both passes share the per-fn walks; run them together.
pub struct DeadlockAnalysis {
    /// C1 lock-order cycle findings.
    pub c1: Vec<DeadlockHit>,
    /// C2 wait-cycle findings.
    pub c2: Vec<DeadlockHit>,
}

/// Run C1 only (fuzz entry point).
pub fn run_c1(ws: &WorkspaceIr) -> Vec<DeadlockHit> {
    run(ws).c1
}

/// Run C2 only (fuzz entry point).
pub fn run_c2(ws: &WorkspaceIr) -> Vec<DeadlockHit> {
    run(ws).c2
}

/// Run both deadlock passes over the workspace.
pub fn run(ws: &WorkspaceIr) -> DeadlockAnalysis {
    let facts = collect_facts(ws);
    let sums = acquire_summaries(ws, &facts);
    let c1 = find_lock_cycles(ws, &facts, &sums);
    let c2 = find_wait_cycles(ws, &facts, &sums);
    DeadlockAnalysis { c1, c2 }
}

/// A lock acquisition with identity (when derivable).
#[derive(Clone)]
struct Acq {
    id: Option<LockId>,
    class: LockClass,
    line: u32,
}

/// One non-lock call made during a walk.
struct CallSite {
    /// Index into the fn's `ctxs`.
    ctx: usize,
    /// Guards held when the call runs.
    held: Vec<Acq>,
    /// Resolved workspace callees.
    callees: Vec<FnId>,
}

/// Facts from one thread-scope walk of a fn body (the fn minus its
/// spawn closures, or one spawn closure).
#[derive(Default)]
struct ScopeFacts {
    /// (held, acquired) per acquisition, in source order.
    acq_edges: Vec<(Acq, Acq)>,
    /// Every acquisition in scope.
    acquires: Vec<Acq>,
    /// Every resolved call in scope with the guards held at it.
    calls: Vec<CallSite>,
}

/// Per-fn facts: the caller-thread scope plus one scope per spawn site.
struct FnFacts {
    /// Code outside any spawn closure.
    own: ScopeFacts,
    /// `(ctx index of the spawn call, facts of its closure)`.
    spawned: Vec<(usize, ScopeFacts)>,
}

/// Spawn-call contexts: `spawn(…)` by any path/receiver. The closure
/// argument span is the spawned thread's inline body.
fn spawn_spans(f: &FnItem) -> Vec<(usize, usize, usize)> {
    f.ctxs
        .iter()
        .enumerate()
        .filter(|(_, c)| c.kind == CtxKind::Call && c.callee == "spawn")
        .map(|(i, c)| (i, c.args_start, c.args_end))
        .collect()
}

/// Walk every first-party fn. Vendored internals keep their own locks
/// ordered; modeling them would only add noise.
fn collect_facts(ws: &WorkspaceIr) -> BTreeMap<FnId, FnFacts> {
    let mut out = BTreeMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if ws.files[f.file].vendor || f.body.is_none() {
            continue;
        }
        let spans = spawn_spans(f);
        let own = walk_scope(ws, f, &|i| !spans.iter().any(|&(_, s, e)| s <= i && i < e));
        let mut spawned = Vec::new();
        for &(ctx_idx, s, e) in &spans {
            // Exclude spawn closures nested inside this one: they are
            // their own threads.
            let inner: Vec<(usize, usize)> = spans
                .iter()
                .filter(|&&(_, s2, e2)| s2 > s && e2 <= e)
                .map(|&(_, s2, e2)| (s2, e2))
                .collect();
            let facts = walk_scope(ws, f, &|i| {
                s <= i && i < e && !inner.iter().any(|&(s2, e2)| s2 <= i && i < e2)
            });
            spawned.push((ctx_idx, facts));
        }
        out.insert(id, FnFacts { own, spawned });
    }
    out
}

/// The identity-aware guard walk: L1's lifetime model (named guards to
/// block close or `drop`, temporaries to the statement end) tracking
/// [`LockId`]s instead of classes, restricted to `scope`.
fn walk_scope(ws: &WorkspaceIr, f: &FnItem, scope: &dyn Fn(usize) -> bool) -> ScopeFacts {
    let tokens = &ws.files[f.file].tokens;
    let mut facts = ScopeFacts::default();
    struct Guard {
        acq: Acq,
        name: Option<String>,
        depth: u32,
    }
    let mut active: Vec<Guard> = Vec::new();
    for u in &f.units {
        let ctxs: Vec<(usize, &Ctx)> = f
            .ctxs
            .iter()
            .enumerate()
            .filter(|(_, c)| u.start <= c.name_tok && c.name_tok <= u.end && scope(c.name_tok))
            .collect();
        // A spawn closure lives *inside* a unit whose start/end tokens
        // (`let h = …;`) are outside the closure span, so scope the unit
        // by its in-scope ctxs too, not just its boundary tokens.
        if !scope(u.start) && !scope(u.end) && ctxs.is_empty() {
            continue;
        }
        active.retain(|g| g.depth <= u.depth);
        // Temporary guards born in this unit: (name token, acquisition).
        let mut unit_locks: Vec<(usize, Acq)> = Vec::new();
        for &(ctx_idx, ctx) in &ctxs {
            if ctx.kind == CtxKind::MacroCall {
                continue;
            }
            if !ctx.method && ctx.path.is_empty() && ctx.callee == "drop" {
                let arg = crate::parser::next_nc(tokens, ctx.args_start)
                    .filter(|&i| i < ctx.args_end)
                    .map(|i| tokens[i].text.clone());
                if let Some(name) = arg {
                    active.retain(|g| g.name.as_deref() != Some(name.as_str()));
                }
                continue;
            }
            if let Some(class) = lock_class(ws, f, ctx) {
                let acq = Acq {
                    id: lock_identity(ws, f, ctx),
                    class,
                    line: ctx.line,
                };
                for held in active
                    .iter()
                    .map(|g| &g.acq)
                    .chain(unit_locks.iter().map(|(_, a)| a))
                {
                    facts.acq_edges.push((held.clone(), acq.clone()));
                }
                facts.acquires.push(acq.clone());
                unit_locks.push((ctx.name_tok, acq));
                continue;
            }
            if ctx.kind != CtxKind::Call {
                continue;
            }
            let held: Vec<Acq> = active
                .iter()
                .map(|g| g.acq.clone())
                .chain(
                    unit_locks
                        .iter()
                        .filter(|&&(tok, _)| tok < ctx.name_tok || ctx.contains(tok))
                        .map(|(_, a)| a.clone()),
                )
                .collect();
            facts.calls.push(CallSite {
                ctx: ctx_idx,
                held,
                callees: resolve_call(ws, f, ctx),
            });
        }
        // End of unit: temporaries die; a plain `let g = x.lock();`
        // (lock call is the whole RHS) becomes a named guard.
        if let (Some(name), false) = (&u.let_name, u.deref_rhs) {
            if let Some((tok, acq)) = unit_locks.last() {
                let lock_ctx = f.ctxs.iter().find(|c| c.name_tok == *tok);
                let outermost = lock_ctx.is_some_and(|c| {
                    crate::parser::next_nc(tokens, c.args_end + 1)
                        .is_some_and(|i| tokens[i].is_punct(';'))
                });
                if outermost {
                    active.push(Guard {
                        acq: acq.clone(),
                        name: Some(name.clone()),
                        depth: u.depth,
                    });
                }
            }
        }
    }
    facts
}

/// Per-fn transitive acquire summary: lock identity → (class, witness
/// chain of fn labels to the direct acquisition). Spawn closures are
/// excluded — a spawned thread's acquisitions happen concurrently, not
/// on the caller's thread.
fn acquire_summaries(
    ws: &WorkspaceIr,
    facts: &BTreeMap<FnId, FnFacts>,
) -> BTreeMap<FnId, BTreeMap<LockId, (LockClass, Vec<String>)>> {
    let mut sums: BTreeMap<FnId, BTreeMap<LockId, (LockClass, Vec<String>)>> = BTreeMap::new();
    for (&id, ff) in facts {
        let entry = sums.entry(id).or_default();
        for a in &ff.own.acquires {
            if let Some(lid) = &a.id {
                entry
                    .entry(lid.clone())
                    .or_insert_with(|| (a.class, vec![ws.label(id)]));
            }
        }
    }
    loop {
        let mut changed = false;
        for (&id, ff) in facts {
            for call in &ff.own.calls {
                for &callee in &call.callees {
                    let callee_sum = sums.get(&callee).cloned().unwrap_or_default();
                    let me = sums.entry(id).or_default();
                    for (lid, (class, chain)) in callee_sum {
                        me.entry(lid).or_insert_with(|| {
                            changed = true;
                            let mut c = vec![ws.label(id)];
                            c.extend(chain);
                            (class, c)
                        });
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

/// One acquired-while-held edge's witness.
struct EdgeWit {
    fn_id: FnId,
    line: u32,
    /// e.g. "`Pager::flush` acquires `Wal.state` (mutex guard) while
    /// holding `Pager.cache`" (+ " via A -> B" when interprocedural).
    desc: String,
}

/// Build the global lock-order graph and report every cycle (C1).
fn find_lock_cycles(
    ws: &WorkspaceIr,
    facts: &BTreeMap<FnId, FnFacts>,
    sums: &BTreeMap<FnId, BTreeMap<LockId, (LockClass, Vec<String>)>>,
) -> Vec<DeadlockHit> {
    let mut edges: BTreeMap<(LockId, LockId), EdgeWit> = BTreeMap::new();
    let mut add = |from: &LockId, to: &LockId, wit: EdgeWit| {
        if from != to {
            edges.entry((from.clone(), to.clone())).or_insert(wit);
        }
    };
    for (&id, ff) in facts {
        let label = ws.label(id);
        for scope in std::iter::once(&ff.own).chain(ff.spawned.iter().map(|(_, s)| s)) {
            for (held, acq) in &scope.acq_edges {
                let (Some(h), Some(a)) = (&held.id, &acq.id) else {
                    continue;
                };
                add(
                    h,
                    a,
                    EdgeWit {
                        fn_id: id,
                        line: acq.line,
                        desc: format!(
                            "`{label}` acquires `{a}` ({}) while holding `{h}`",
                            acq.class.describe()
                        ),
                    },
                );
            }
            for call in &scope.calls {
                for &callee in &call.callees {
                    let Some(callee_sum) = sums.get(&callee) else {
                        continue;
                    };
                    for (lid, (class, chain)) in callee_sum {
                        for held in &call.held {
                            let Some(h) = &held.id else { continue };
                            let line = ws.fns[id].ctxs[call.ctx].line;
                            add(
                                h,
                                lid,
                                EdgeWit {
                                    fn_id: id,
                                    line,
                                    desc: format!(
                                        "`{label}` acquires `{lid}` ({}) while holding `{h}` via {}",
                                        class.describe(),
                                        chain.join(" -> ")
                                    ),
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    let mut adj: BTreeMap<&LockId, Vec<&LockId>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut seen: BTreeSet<Vec<LockId>> = BTreeSet::new();
    let mut hits = Vec::new();
    for (from, to) in edges.keys() {
        let Some(path) = bfs_path(&adj, to, from) else {
            continue;
        };
        // Cycle nodes in order: from -> to -> … -> from.
        let mut cycle: Vec<LockId> = vec![from.clone()];
        cycle.extend(path.into_iter().take_while(|n| n != from));
        let canon = canonical(&cycle);
        if !seen.insert(canon) {
            continue;
        }
        let descs: Vec<&EdgeWit> = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .filter_map(|(a, b)| edges.get(&(a.clone(), b.clone())))
            .collect();
        let anchor = match descs.first() {
            Some(w) => (w.fn_id, w.line),
            None => continue,
        };
        let message = if cycle.len() == 2 {
            format!(
                "C1 lock-order cycle between `{}` and `{}`: one thread {}; another thread {} — interleaved, each waits for the lock the other holds",
                cycle[0],
                cycle[1],
                descs.first().map(|w| w.desc.as_str()).unwrap_or(""),
                descs.get(1).map(|w| w.desc.as_str()).unwrap_or(""),
            )
        } else {
            format!(
                "C1 lock-order cycle: {} -> back to start; {}",
                cycle
                    .iter()
                    .map(|n| format!("`{n}`"))
                    .collect::<Vec<_>>()
                    .join(" -> "),
                descs
                    .iter()
                    .map(|w| w.desc.as_str())
                    .collect::<Vec<_>>()
                    .join("; "),
            )
        };
        hits.push(DeadlockHit {
            fn_id: anchor.0,
            line: anchor.1,
            message,
        });
    }
    hits.sort_by_key(|h| (h.fn_id, h.line, h.message.clone()));
    hits
}

/// Shortest path `from -> … -> to` (inclusive) over the adjacency map.
fn bfs_path(
    adj: &BTreeMap<&LockId, Vec<&LockId>>,
    from: &LockId,
    to: &LockId,
) -> Option<Vec<LockId>> {
    let mut parent: BTreeMap<&LockId, &LockId> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    let mut visited: BTreeSet<&LockId> = BTreeSet::new();
    visited.insert(from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![to.clone()];
            let mut cur = n;
            while let Some(&p) = parent.get(cur) {
                path.push(p.clone());
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &next in adj.get(n).into_iter().flatten() {
            if visited.insert(next) {
                parent.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Rotate a cycle's node list to start at its minimum element, so each
/// distinct cycle is reported exactly once.
fn canonical<T: Clone + Ord>(cycle: &[T]) -> Vec<T> {
    let Some(min_pos) = cycle
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cmp(b.1))
        .map(|(i, _)| i)
    else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min_pos..]);
    out.extend_from_slice(&cycle[..min_pos]);
    out
}

// ---------------------------------------------------------------------
// C2 — thread/channel topology.

/// One statically recovered channel construction site.
struct Channel {
    bounded: bool,
    /// Constructing fn and the endpoint binding names, for messages.
    fn_id: FnId,
    tx: String,
    rx: String,
}

/// Which end of a channel a binding holds.
#[derive(Clone, Copy, PartialEq, Eq)]
enum End {
    Tx,
    Rx,
}

/// A channel operation found at a call site.
#[derive(Clone, Copy)]
enum ChanOp {
    /// `send`-family call; blocking iff plain `send` on a bounded
    /// channel.
    Send { chan: usize, blocking: bool },
    /// `recv`-family call; blocking iff plain `recv`.
    Recv { chan: usize, blocking: bool },
    /// `join()` on a handle (no args).
    Join,
}

/// A node in the thread wait graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ThreadNode {
    /// The synthetic caller thread (everything reachable from public
    /// entry points without crossing a spawn).
    Main,
    /// The closure passed to the spawn call at `(fn, ctx index)`.
    Spawned(FnId, usize),
}

/// The recovered topology: channels, endpoint environment, threads.
struct Topology {
    channels: Vec<Channel>,
    /// (fn, binding name) → endpoint.
    env: EndpointEnv,
    /// Thread → fns that (may) run on it.
    members: BTreeMap<ThreadNode, BTreeSet<FnId>>,
    /// Spawned-thread entry labels for messages.
    entries: BTreeMap<ThreadNode, String>,
}

/// `(fn, binding name)` → `(channel index, which end)`.
type EndpointEnv = BTreeMap<(FnId, String), (usize, End)>;

/// Find `let (tx, rx) = bounded(n) / unbounded() / channel()` units.
fn find_channels(ws: &WorkspaceIr) -> (Vec<Channel>, EndpointEnv) {
    let mut channels = Vec::new();
    let mut env = BTreeMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if ws.files[f.file].vendor {
            continue;
        }
        let tokens = &ws.files[f.file].tokens;
        for u in &f.units {
            let Some(ctor) = f.ctxs.iter().find(|c| {
                c.kind == CtxKind::Call
                    && matches!(c.callee.as_str(), "bounded" | "unbounded" | "channel")
                    && u.start <= c.name_tok
                    && c.name_tok <= u.end
            }) else {
                continue;
            };
            // Parse the `let (a, b) =` tuple pattern by hand — `Unit`
            // deliberately leaves tuple-lets unnamed.
            let nc: Vec<usize> = (u.start..=u.end.min(tokens.len().saturating_sub(1)))
                .filter(|&i| !tokens[i].is_comment())
                .collect();
            let ident = |k: usize| {
                nc.get(k)
                    .map(|&i| &tokens[i])
                    .filter(|t| t.kind == crate::lexer::TokenKind::Ident)
                    .map(|t| t.text.clone())
            };
            let punct = |k: usize, c: char| nc.get(k).is_some_and(|&i| tokens[i].is_punct(c));
            let shape = ident(0).as_deref() == Some("let")
                && punct(1, '(')
                && punct(3, ',')
                && punct(5, ')')
                && punct(6, '=');
            let (Some(tx), Some(rx)) = (ident(2), ident(4)) else {
                continue;
            };
            if !shape || tx == "_" || rx == "_" {
                continue;
            }
            let key = channels.len();
            env.insert((id, tx.clone()), (key, End::Tx));
            env.insert((id, rx.clone()), (key, End::Rx));
            channels.push(Channel {
                bounded: ctor.callee == "bounded",
                fn_id: id,
                tx,
                rx,
            });
        }
    }
    (channels, env)
}

/// Propagate endpoints: `clone()` aliases within a fn, then argument
/// positions into callees, to a fixpoint.
fn propagate_endpoints(ws: &WorkspaceIr, env: &mut EndpointEnv) {
    let mut queue: VecDeque<(FnId, String)> = env.keys().cloned().collect();
    let mut seen: BTreeSet<(FnId, String)> = env.keys().cloned().collect();
    while let Some((id, name)) = queue.pop_front() {
        let Some(&(chan, end)) = env.get(&(id, name.clone())) else {
            continue;
        };
        let f = &ws.fns[id];
        let tokens = &ws.files[f.file].tokens;
        // Aliases: `let other = name;` / `let other = name.clone();`.
        for u in &f.units {
            let Some(alias) = u.let_name.as_ref().or(u.pat_name.as_ref()) else {
                continue;
            };
            let Some(rhs) = u.rhs_start else { continue };
            let nc: Vec<&str> = (rhs..=u.end.min(tokens.len().saturating_sub(1)))
                .filter(|&i| !tokens[i].is_comment())
                .map(|i| tokens[i].text.as_str())
                .collect();
            let is_alias = nc == [name.as_str(), ";"]
                || nc == [name.as_str(), ".", "clone", "(", ")", ";"]
                || nc == [name.as_str()]
                || nc == [name.as_str(), ".", "clone", "(", ")"];
            if is_alias {
                let key = (id, alias.clone());
                if env.insert(key.clone(), (chan, end)).is_none() && seen.insert(key.clone()) {
                    queue.push_back(key);
                }
            }
        }
        // Argument positions: `g(…, name, …)` / `g(…, name.clone(), …)`
        // maps to the callee's parameter of the same position.
        for ctx in &f.ctxs {
            if ctx.kind != CtxKind::Call {
                continue;
            }
            for (pos, arg) in split_args(tokens, ctx).into_iter().enumerate() {
                let texts: Vec<&str> = arg.iter().map(|&i| tokens[i].text.as_str()).collect();
                let matches_name = texts == [name.as_str()]
                    || texts == ["&", name.as_str()]
                    || texts == [name.as_str(), ".", "clone", "(", ")"];
                if !matches_name {
                    continue;
                }
                for callee in resolve_call(ws, f, ctx) {
                    let cf = &ws.fns[callee];
                    let skip_self = usize::from(
                        ctx.method && cf.params.first().is_some_and(|p| p.name == "self"),
                    );
                    let Some(param) = cf.params.get(pos + skip_self) else {
                        continue;
                    };
                    if param.name == "self" || param.name == "_" {
                        continue;
                    }
                    let key = (callee, param.name.clone());
                    if env.insert(key.clone(), (chan, end)).is_none() && seen.insert(key.clone()) {
                        queue.push_back(key);
                    }
                }
            }
        }
    }
}

/// Top-level comma-separated argument token slices of a call context.
fn split_args(tokens: &[crate::lexer::Token], ctx: &Ctx) -> Vec<Vec<usize>> {
    let mut args = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for (i, t) in tokens
        .iter()
        .enumerate()
        .take(ctx.args_end)
        .skip(ctx.args_start)
    {
        if t.is_comment() {
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            args.push(std::mem::take(&mut cur));
            continue;
        }
        cur.push(i);
    }
    if !cur.is_empty() {
        args.push(cur);
    }
    args
}

/// Recover threads and their fn membership.
fn build_threads(ws: &WorkspaceIr, facts: &BTreeMap<FnId, FnFacts>) -> Topology {
    let (channels, mut env) = find_channels(ws);
    propagate_endpoints(ws, &mut env);

    // Same-thread call edges: resolved calls outside spawn closures.
    let mut same_thread: BTreeMap<FnId, BTreeSet<FnId>> = BTreeMap::new();
    for (&id, ff) in facts {
        let entry = same_thread.entry(id).or_default();
        for call in &ff.own.calls {
            entry.extend(call.callees.iter().copied());
        }
    }
    let closure = |roots: BTreeSet<FnId>| -> BTreeSet<FnId> {
        let mut set = roots;
        let mut queue: VecDeque<FnId> = set.iter().copied().collect();
        while let Some(n) = queue.pop_front() {
            for &next in same_thread.get(&n).into_iter().flatten() {
                if set.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        set
    };

    let mut members = BTreeMap::new();
    let mut entries = BTreeMap::new();
    let mut spawn_entries: BTreeSet<FnId> = BTreeSet::new();
    for (&id, ff) in facts {
        for (ctx_idx, scope) in &ff.spawned {
            let node = ThreadNode::Spawned(id, *ctx_idx);
            let roots: BTreeSet<FnId> = scope
                .calls
                .iter()
                .flat_map(|c| c.callees.iter().copied())
                .collect();
            spawn_entries.extend(roots.iter().copied());
            entries.insert(
                node,
                roots
                    .iter()
                    .next()
                    .map(|&r| ws.label(r))
                    .unwrap_or_else(|| "closure".to_string()),
            );
            members.insert(node, closure(roots));
        }
    }
    let main_roots: BTreeSet<FnId> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(id, f)| {
            !ws.files[f.file].vendor && f.is_pub && f.body.is_some() && !spawn_entries.contains(id)
        })
        .map(|(id, _)| id)
        .collect();
    members.insert(ThreadNode::Main, closure(main_roots));
    Topology {
        channels,
        env,
        members,
        entries,
    }
}

/// Channel ops in one fn scope, from its recorded calls.
fn scope_ops(
    ws: &WorkspaceIr,
    env: &EndpointEnv,
    channels: &[Channel],
    env_fn: FnId,
    facts_fn: FnId,
    scope: &ScopeFacts,
) -> Vec<(usize, ChanOp)> {
    let f = &ws.fns[facts_fn];
    let mut ops = Vec::new();
    for call in &scope.calls {
        let ctx = &f.ctxs[call.ctx];
        if !ctx.method {
            continue;
        }
        let endpoint = || {
            let name = match ctx.recv.as_slice() {
                [n] if n != "self" && n != "<expr>" => n,
                _ => return None,
            };
            env.get(&(env_fn, name.clone())).copied()
        };
        let op = match ctx.callee.as_str() {
            "send" | "send_timeout" | "try_send" => match endpoint() {
                Some((chan, End::Tx)) => Some(ChanOp::Send {
                    chan,
                    blocking: ctx.callee == "send" && channels[chan].bounded,
                }),
                _ => None,
            },
            "recv" | "recv_timeout" | "try_recv" => match endpoint() {
                Some((chan, End::Rx)) => Some(ChanOp::Recv {
                    chan,
                    blocking: ctx.callee == "recv",
                }),
                _ => None,
            },
            "join" if ctx.args_start == ctx.args_end => Some(ChanOp::Join),
            _ => None,
        };
        if let Some(op) = op {
            ops.push((call.ctx, op));
        }
    }
    ops
}

/// A wait-edge target: `(awaited thread, is bounded send, (channel,
/// is_send) for channel ops, description)`.
type WaitTarget = (ThreadNode, bool, Option<(usize, bool)>, String);

/// An edge in the thread wait graph.
struct WaitEdge {
    /// True for a bounded-channel `send` (the edge kind a ring must
    /// contain to be a deadlock rather than ordinary producer/consumer
    /// flow).
    bounded_send: bool,
    /// `(channel, is_send)` for channel waits; `None` for joins. Used
    /// to recognize rendezvous pairs (send one way, recv of the *same*
    /// channel back), which unblock each other and are not deadlocks.
    chan_op: Option<(usize, bool)>,
    fn_id: FnId,
    line: u32,
    desc: String,
}

/// Both C2 checks: the thread wait-ring and lock-held blocking waits.
fn find_wait_cycles(
    ws: &WorkspaceIr,
    facts: &BTreeMap<FnId, FnFacts>,
    sums: &BTreeMap<FnId, BTreeMap<LockId, (LockClass, Vec<String>)>>,
) -> Vec<DeadlockHit> {
    let topo = build_threads(ws, facts);
    let mut hits = Vec::new();

    // Ops per thread: every member fn's caller-scope ops, plus the
    // spawn closure's inline ops for spawned threads.
    let mut thread_ops: BTreeMap<ThreadNode, Vec<(FnId, usize, ChanOp)>> = BTreeMap::new();
    for (&node, fns) in &topo.members {
        let ops = thread_ops.entry(node).or_default();
        for &g in fns {
            if let Some(ff) = facts.get(&g) {
                for (ctx, op) in scope_ops(ws, &topo.env, &topo.channels, g, g, &ff.own) {
                    ops.push((g, ctx, op));
                }
            }
        }
        if let ThreadNode::Spawned(f_id, ctx_idx) = node {
            if let Some(ff) = facts.get(&f_id) {
                if let Some((_, scope)) = ff.spawned.iter().find(|(i, _)| *i == ctx_idx) {
                    for (ctx, op) in scope_ops(ws, &topo.env, &topo.channels, f_id, f_id, scope) {
                        ops.push((f_id, ctx, op));
                    }
                }
            }
        }
    }

    // Channel → sender/receiver threads.
    let mut senders: BTreeMap<usize, BTreeSet<ThreadNode>> = BTreeMap::new();
    let mut receivers: BTreeMap<usize, BTreeSet<ThreadNode>> = BTreeMap::new();
    for (&node, ops) in &thread_ops {
        for &(_, _, op) in ops {
            match op {
                ChanOp::Send { chan, .. } => {
                    senders.entry(chan).or_default().insert(node);
                }
                ChanOp::Recv { chan, .. } => {
                    receivers.entry(chan).or_default().insert(node);
                }
                ChanOp::Join => {}
            }
        }
    }

    let tlabel = |node: ThreadNode| -> String {
        match node {
            ThreadNode::Main => "caller thread".to_string(),
            ThreadNode::Spawned(f, _) => format!(
                "thread spawned in `{}` (entry `{}`)",
                ws.label(f),
                topo.entries.get(&node).cloned().unwrap_or_default()
            ),
        }
    };
    let chan_desc = |chan: usize| -> String {
        let c = &topo.channels[chan];
        format!(
            "{} channel `({}, {})` created in `{}`",
            if c.bounded { "bounded" } else { "unbounded" },
            c.tx,
            c.rx,
            ws.label(c.fn_id)
        )
    };
    // Joinable threads for a fn: spawned by the fn itself or by a fn of
    // the same impl type (handles routinely flow through self fields).
    let join_peers = |g: FnId| -> Vec<ThreadNode> {
        let g_impl = ws.fns[g].impl_type.as_deref();
        topo.members
            .keys()
            .filter(|n| match n {
                ThreadNode::Spawned(f, _) => {
                    *f == g || (g_impl.is_some() && ws.fns[*f].impl_type.as_deref() == g_impl)
                }
                ThreadNode::Main => false,
            })
            .copied()
            .collect()
    };

    // Check 1: wait ring with at least one bounded-send edge.
    let mut edges: BTreeMap<(ThreadNode, ThreadNode), WaitEdge> = BTreeMap::new();
    for (&node, ops) in &thread_ops {
        for &(g, ctx_idx, op) in ops {
            let line = ws.fns[g].ctxs[ctx_idx].line;
            let targets: Vec<WaitTarget> = match op {
                ChanOp::Send {
                    chan,
                    blocking: true,
                } => receivers
                    .get(&chan)
                    .into_iter()
                    .flatten()
                    .filter(|&&u| u != node)
                    .map(|&u| {
                        (
                            u,
                            true,
                            Some((chan, true)),
                            format!(
                                "the {} blocks in `{}` sending on the {} until the {} drains it",
                                tlabel(node),
                                ws.label(g),
                                chan_desc(chan),
                                tlabel(u)
                            ),
                        )
                    })
                    .collect(),
                ChanOp::Recv {
                    chan,
                    blocking: true,
                } => senders
                    .get(&chan)
                    .into_iter()
                    .flatten()
                    .filter(|&&u| u != node)
                    .map(|&u| {
                        (
                            u,
                            false,
                            Some((chan, false)),
                            format!(
                                "the {} blocks in `{}` receiving on the {} until the {} sends",
                                tlabel(node),
                                ws.label(g),
                                chan_desc(chan),
                                tlabel(u)
                            ),
                        )
                    })
                    .collect(),
                ChanOp::Join => join_peers(g)
                    .into_iter()
                    .filter(|&u| u != node)
                    .map(|u| {
                        (
                            u,
                            false,
                            None,
                            format!(
                                "the {} blocks in `{}` joining the {}",
                                tlabel(node),
                                ws.label(g),
                                tlabel(u)
                            ),
                        )
                    })
                    .collect(),
                _ => Vec::new(),
            };
            for (to, bounded_send, chan_op, desc) in targets {
                let edge = WaitEdge {
                    bounded_send,
                    chan_op,
                    fn_id: g,
                    line,
                    desc,
                };
                // Keep the strongest witness per thread pair: a bounded
                // send beats a recv/join wait.
                match edges.entry((node, to)) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(edge);
                    }
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        if edge.bounded_send && !o.get().bounded_send {
                            o.insert(edge);
                        }
                    }
                }
            }
        }
    }
    let mut adj: BTreeMap<ThreadNode, Vec<ThreadNode>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(*from).or_default().push(*to);
    }
    let mut seen: BTreeSet<Vec<ThreadNode>> = BTreeSet::new();
    for (from, to) in edges.keys() {
        let Some(path) = thread_bfs(&adj, *to, *from) else {
            continue;
        };
        let mut cycle: Vec<ThreadNode> = vec![*from];
        cycle.extend(path.into_iter().take_while(|n| n != from));
        if !seen.insert(canonical(&cycle)) {
            continue;
        }
        let wits: Vec<&WaitEdge> = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .filter_map(|(a, b)| edges.get(&(*a, *b)))
            .collect();
        if !wits.iter().any(|w| w.bounded_send) {
            continue; // an all-recv/join ring is normal request/reply flow
        }
        // Rendezvous, not deadlock: a 2-ring whose edges are the send
        // and the recv of the *same* channel unblocks itself.
        if let [a, b] = wits.as_slice() {
            if let (Some((c1, s1)), Some((c2, s2))) = (a.chan_op, b.chan_op) {
                if c1 == c2 && s1 != s2 {
                    continue;
                }
            }
        }
        let Some(anchor) = wits.iter().find(|w| w.bounded_send).or(wits.first()) else {
            continue;
        };
        hits.push(DeadlockHit {
            fn_id: anchor.fn_id,
            line: anchor.line,
            message: format!(
                "C2 bounded-channel wait cycle: {} — every thread in the ring waits for the next, and the bounded queue can be full",
                wits.iter()
                    .map(|w| w.desc.as_str())
                    .collect::<Vec<_>>()
                    .join("; ")
            ),
        });
    }

    // Check 2: blocking wait while holding a lock the awaited thread
    // acquires (the e3a2826 reconnect-deadlock shape).
    let thread_acquires = |node: ThreadNode| -> BTreeMap<LockId, Vec<String>> {
        let mut out = BTreeMap::new();
        for &g in topo.members.get(&node).into_iter().flatten() {
            for (lid, (_, chain)) in sums.get(&g).into_iter().flatten() {
                out.entry(lid.clone()).or_insert_with(|| chain.clone());
            }
        }
        if let ThreadNode::Spawned(f_id, ctx_idx) = node {
            if let Some(ff) = facts.get(&f_id) {
                if let Some((_, scope)) = ff.spawned.iter().find(|(i, _)| *i == ctx_idx) {
                    for a in &scope.acquires {
                        if let Some(lid) = &a.id {
                            out.entry(lid.clone())
                                .or_insert_with(|| vec![ws.label(f_id)]);
                        }
                    }
                }
            }
        }
        out
    };
    let mut emitted: BTreeSet<String> = BTreeSet::new();
    for (&g, ff) in facts {
        for scope in std::iter::once(&ff.own).chain(ff.spawned.iter().map(|(_, s)| s)) {
            let ops: BTreeMap<usize, ChanOp> =
                scope_ops(ws, &topo.env, &topo.channels, g, g, scope)
                    .into_iter()
                    .collect();
            for call in &scope.calls {
                if call.held.iter().all(|h| h.id.is_none()) {
                    continue;
                }
                let (wait_desc, peers): (String, Vec<ThreadNode>) = match ops.get(&call.ctx) {
                    Some(ChanOp::Join) => ("a thread join".to_string(), join_peers(g)),
                    Some(&ChanOp::Recv {
                        chan,
                        blocking: true,
                    }) => (
                        format!("a blocking recv on the {}", chan_desc(chan)),
                        senders.get(&chan).into_iter().flatten().copied().collect(),
                    ),
                    Some(&ChanOp::Send {
                        chan,
                        blocking: true,
                    }) => (
                        format!("a blocking send on the {}", chan_desc(chan)),
                        receivers
                            .get(&chan)
                            .into_iter()
                            .flatten()
                            .copied()
                            .collect(),
                    ),
                    _ => continue,
                };
                let line = ws.fns[g].ctxs[call.ctx].line;
                for peer in peers {
                    let acq = thread_acquires(peer);
                    for held in &call.held {
                        let Some(h) = &held.id else { continue };
                        let Some(chain) = acq.get(h) else { continue };
                        let message = format!(
                            "C2 deadlock: `{}` blocks on {} while holding `{}`; the awaited {} acquires `{}` via {} — the wait can never finish",
                            ws.label(g),
                            wait_desc,
                            h,
                            tlabel(peer),
                            h,
                            chain.join(" -> ")
                        );
                        if emitted.insert(message.clone()) {
                            hits.push(DeadlockHit {
                                fn_id: g,
                                line,
                                message,
                            });
                        }
                    }
                }
            }
        }
    }
    hits.sort_by_key(|h| (h.fn_id, h.line, h.message.clone()));
    hits
}

/// [`bfs_path`] over thread nodes (Copy, so no borrow juggling).
fn thread_bfs(
    adj: &BTreeMap<ThreadNode, Vec<ThreadNode>>,
    from: ThreadNode,
    to: ThreadNode,
) -> Option<Vec<ThreadNode>> {
    let mut parent: BTreeMap<ThreadNode, ThreadNode> = BTreeMap::new();
    let mut visited: BTreeSet<ThreadNode> = BTreeSet::new();
    let mut queue = VecDeque::new();
    visited.insert(from);
    queue.push_back(from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = parent.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &next in adj.get(&n).into_iter().flatten() {
            if visited.insert(next) {
                parent.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}
