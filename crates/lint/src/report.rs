//! Machine-readable output and the baseline workflow.
//!
//! `--format json` emits the full report as JSON with findings sorted
//! by (file, line, rule, message) — byte-stable across platforms and
//! runs. A committed `lint-baseline.json` records known findings as
//! (rule, file, message) triples; `--deny-new` fails only on findings
//! not in the baseline. Lines are deliberately *not* part of the
//! baseline key (and the interprocedural messages carry no line
//! numbers), so unrelated edits that shift code do not churn CI.
//!
//! Both the writer and the reader here are hand-rolled: the analyzer
//! stays dependency-free, and the baseline subset of JSON (one object,
//! one array of flat string-valued objects) does not need serde.

use crate::{Finding, Report};
use std::collections::BTreeSet;

/// Order findings by (file, line, rule, message) and drop duplicates
/// (interprocedural rules can reach one site along several edges).
pub fn normalize(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str(), a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule.as_str(),
            b.message.as_str(),
        ))
    });
    findings.dedup_by(|a, b| {
        a.rule == b.rule && a.file == b.file && a.line == b.line && a.message == b.message
    });
}

/// Escape a string for JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a full report as JSON (findings must already be normalized).
pub fn to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str("  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i + 1 == report.findings.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"waived\": {}}}{}\n",
            f.rule,
            esc(&f.file),
            f.line,
            esc(&f.message),
            f.waived,
            sep
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The committed set of known findings, keyed by (rule, file, message).
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<(String, String, String)>,
}

impl Baseline {
    /// Build a baseline from the unwaived findings of a report.
    pub fn from_report(report: &Report) -> Baseline {
        Baseline {
            entries: report
                .violations()
                .map(|f| (f.rule.to_string(), f.file.clone(), f.message.clone()))
                .collect(),
        }
    }

    /// True when the finding is already recorded.
    pub fn contains(&self, f: &Finding) -> bool {
        // BTreeSet<(String,…)> lookup without cloning: range scan is
        // overkill for these sizes; a linear probe stays simple.
        self.entries
            .iter()
            .any(|(r, file, m)| r == f.rule.as_str() && file == &f.file && m == &f.message)
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Unwaived findings not present in the baseline.
    pub fn new_findings<'r>(&self, report: &'r Report) -> Vec<&'r Finding> {
        report.violations().filter(|f| !self.contains(f)).collect()
    }

    /// Serialize as the committed `lint-baseline.json` format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n  \"entries\": [\n");
        for (i, (rule, file, message)) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"message\": \"{}\"}}{}\n",
                esc(rule),
                esc(file),
                esc(message),
                sep
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Render a unified-diff-style explanation of the drift between
    /// this baseline and the current unwaived findings: `+` lines are
    /// findings absent from the baseline (these fail `--deny-new`),
    /// `-` lines are baseline entries that no longer fire (stale —
    /// candidates for a `--write-baseline` refresh). One merged walk
    /// in (rule, file, message) order, so the output is stable and a
    /// CI log is actionable without rerunning locally.
    pub fn explain_new(&self, report: &Report) -> String {
        let current: BTreeSet<(String, String, String)> = report
            .violations()
            .map(|f| (f.rule.to_string(), f.file.clone(), f.message.clone()))
            .collect();
        let mut out = String::new();
        out.push_str("--- baseline (committed)\n");
        out.push_str("+++ findings (current, unwaived)\n");
        for entry in self.entries.union(&current) {
            let (rule, file, message) = entry;
            match (self.entries.contains(entry), current.contains(entry)) {
                (true, false) => out.push_str(&format!("-{rule}: {file}: {message}\n")),
                (false, true) => out.push_str(&format!("+{rule}: {file}: {message}\n")),
                _ => {}
            }
        }
        out
    }

    /// Parse the `lint-baseline.json` format. Unknown keys are ignored;
    /// a malformed file is an error (CI must not silently pass).
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let value = Json::parse(src)?;
        let Json::Object(top) = value else {
            return Err("baseline: top level must be an object".into());
        };
        let Some(Json::Array(items)) = top.iter().find(|(k, _)| k == "entries").map(|(_, v)| v)
        else {
            return Err("baseline: missing \"entries\" array".into());
        };
        let mut entries = BTreeSet::new();
        for item in items {
            let Json::Object(fields) = item else {
                return Err("baseline: entries must be objects".into());
            };
            let get = |key: &str| -> Result<String, String> {
                match fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                    Some(Json::String(s)) => Ok(s.clone()),
                    _ => Err(format!("baseline: entry missing string \"{key}\"")),
                }
            };
            entries.insert((get("rule")?, get("file")?, get("message")?));
        }
        Ok(Baseline { entries })
    }
}

/// A minimal JSON value — just enough to read the baseline file.
enum Json {
    Null,
    Bool,
    Number,
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("json: trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let Json::String(key) = parse_value(b, pos)? else {
                    return Err("json: object key must be a string".into());
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("json: expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("json: expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("json: expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("json: unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::String(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("json: truncated \\u escape")?;
                                let hex =
                                    std::str::from_utf8(hex).map_err(|_| "json: bad \\u escape")?;
                                let n = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "json: bad \\u escape")?;
                                s.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return Err("json: bad escape".into()),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Copy a full UTF-8 sequence.
                        let len = match c {
                            0x00..=0x7f => 1,
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        let chunk = b
                            .get(*pos..*pos + len)
                            .ok_or("json: truncated utf-8 in string")?;
                        s.push_str(std::str::from_utf8(chunk).map_err(|_| "json: invalid utf-8")?);
                        *pos += len;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool)
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool)
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(|_| Json::Number)
                .ok_or_else(|| format!("json: bad number at byte {start}"))
        }
        _ => Err(format!("json: unexpected byte at {}", *pos)),
    }
}
