//! `dasp-lint` — workspace secrecy-hygiene and panic-safety analyzer.
//!
//! The paper's security model (§III) makes the client's evaluation
//! points and per-domain keys the *only* secret in the system: a
//! provider that learns X can reconstruct every value it stores. The
//! Rust type system cannot express "this value must never reach a Debug
//! formatter or a wire message", so this crate enforces it as a
//! token-level static analysis over the workspace's own source:
//!
//! * **S1** — secret-bearing types never derive or hand-implement
//!   `Debug`/`Display` (except sanctioned redacting impls) and never
//!   appear in format/log macro arguments.
//! * **S2** — only an explicit allowlist of share-carrying DTOs may
//!   appear in a `WireWriter`/`WireReader` function signature.
//! * **P1** — no `.unwrap()` / `.expect()` / `panic!` / `todo!` /
//!   `unimplemented!` in provider, transport, or reconstruction code;
//!   a malicious or flaky provider must surface as a typed error, never
//!   a client abort (§V-B liveness).
//! * **P2** — no lossy `as` casts inside the exact-arithmetic crates;
//!   a silent truncation in GF(p) or bignum limb code corrupts shares
//!   undetectably.
//! * **D1** — no wall-clock reads in deterministic codec paths;
//!   share batches must be replayable byte-for-byte.
//! * **U1** — every `unsafe` carries a `// SAFETY:` comment (the
//!   workspace denies `unsafe_code` outright; the rule keeps fixtures
//!   and future waivers honest).
//!
//! A finding is waived by `// dasp::allow(RULE): reason` on the line
//! above (or the same line as) the construct. The analyzer is
//! deliberately dependency-free — it lexes Rust with a hand-rolled
//! [`lexer`] and never executes or expands anything.

pub mod blocking;
pub mod callgraph;
pub mod deadlock;
pub mod ir;
pub mod lexer;
pub mod locks;
pub mod ordering;
pub mod parser;
pub mod report;
pub mod rules;
pub mod taint;

use std::fmt;
use std::path::{Path, PathBuf};

/// The rule identifiers, as written in waiver comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Secret types must not be formatted or printed.
    S1,
    /// Only allowlisted DTOs cross the wire.
    S2,
    /// No panics in provider/transport/reconstruction code.
    P1,
    /// No lossy casts in exact arithmetic.
    P2,
    /// No wall-clock in deterministic codecs.
    D1,
    /// `unsafe` requires a SAFETY comment.
    U1,
    /// Secret values may only flow into sanctioned share encoders.
    T1,
    /// Lock discipline: declared order, no sends under write guards.
    L1,
    /// Transitive panic reachability from provider/client entry points.
    P3,
    /// No blocking operations reachable from reactor entry points.
    B1,
    /// Durability ordering: publish/ack dominated by durable WAL
    /// append; crash-point results steer control.
    W1,
    /// Lock-order cycles across the workspace (per-field identities).
    C1,
    /// Bounded-channel / join wait cycles across threads.
    C2,
    /// No silently discarded `Result` from sends/appends.
    E1,
}

impl Rule {
    /// The identifier used in waiver comments and output.
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::S1 => "S1",
            Rule::S2 => "S2",
            Rule::P1 => "P1",
            Rule::P2 => "P2",
            Rule::D1 => "D1",
            Rule::U1 => "U1",
            Rule::T1 => "T1",
            Rule::L1 => "L1",
            Rule::P3 => "P3",
            Rule::B1 => "B1",
            Rule::W1 => "W1",
            Rule::C1 => "C1",
            Rule::C2 => "C2",
            Rule::E1 => "E1",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation (possibly waived) at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// `/`-separated path, relative to the analysis root.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// True when a `dasp::allow`/`SAFETY:` comment covers the line.
    pub waived: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.waived { " (waived)" } else { "" };
        write!(
            f,
            "{}:{}: {}: {}{}",
            self.file, self.line, self.rule, self.message, tag
        )
    }
}

/// Analyzer configuration: the secret-type list, the wire allowlist,
/// and per-rule path scopes.
#[derive(Debug, Clone)]
pub struct Config {
    /// Types whose contents reconstruct client secrets (S1).
    pub secret_types: &'static [&'static str],
    /// DTOs allowed in wire-serialization signatures (S2).
    pub wire_allowlist: &'static [&'static str],
}

impl Default for Config {
    fn default() -> Self {
        Config {
            secret_types: &[
                "Secret",
                "EvalPoints",
                "FieldSharing",
                "OpssParams",
                "OpSharing",
                "DomainKey",
                "ClientKeys",
                "Poly",
            ],
            wire_allowlist: &[
                "Request",
                "Response",
                "Row",
                "PredAtom",
                "AggOp",
                "GroupPartial",
                "WireRangeProof",
                "WireMerkleProof",
            ],
        }
    }
}

impl Config {
    /// Whether `rule` applies to the file at `path` (relative,
    /// `/`-separated). S1, S2 and U1 are workspace-wide; the others
    /// target the layers where their failure mode lives.
    pub fn in_scope(&self, rule: Rule, path: &str) -> bool {
        match rule {
            // The interprocedural rules manage their own scope: T1/L1
            // skip vendor/, P3 follows the call graph wherever it
            // goes, B1 starts from the reactor roots, W1 from the
            // WAL/publish effect seeds, C1/C2 model every first-party
            // fn.
            Rule::S1
            | Rule::S2
            | Rule::U1
            | Rule::T1
            | Rule::L1
            | Rule::P3
            | Rule::B1
            | Rule::W1
            | Rule::C1
            | Rule::C2 => true,
            Rule::E1 => {
                path.contains("crates/net/")
                    || path.contains("crates/server/")
                    || path.contains("crates/storage/")
            }
            Rule::P1 => {
                path.contains("crates/net/")
                    || path.contains("crates/server/")
                    || path.ends_with("crates/client/src/source.rs")
            }
            Rule::P2 => path.contains("crates/field/") || path.contains("crates/bigint/"),
            Rule::D1 => {
                path.contains("crates/field/")
                    || path.contains("crates/sss/")
                    || path.contains("crates/bigint/")
                    || path.contains("crates/crypto/")
            }
        }
    }
}

/// Analyze one source string as if it lived at `path_hint` (used only
/// for rule scoping), with the default [`Config`].
pub fn analyze_source(path_hint: &str, src: &str) -> Vec<Finding> {
    analyze_source_with(path_hint, src, &Config::default())
}

/// [`analyze_source`] with an explicit config.
pub fn analyze_source_with(path_hint: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let tokens = lexer::lex(src);
    rules::check(path_hint, &tokens, cfg)
}

/// Result of analyzing a directory tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    /// All findings, waived ones included.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings not covered by a waiver — the ones that gate CI.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Number of findings a waiver comment covers.
    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }
}

/// Directory names never descended into: build output, vendored stubs,
/// integration tests, benches, and lint fixtures (which contain
/// violations on purpose).
const SKIP_DIRS: &[&str] = &["target", "vendor", "tests", "benches", "fixtures", ".git"];

/// Wall-clock breakdown of a workspace run, one entry per phase.
#[derive(Debug, Default, Clone, Copy)]
pub struct Timing {
    /// Reading sources + lexing (each file is lexed exactly once).
    pub lex: std::time::Duration,
    /// Per-file token rules (S1/S2/P1/P2/D1/U1/E1).
    pub token_rules: std::time::Duration,
    /// IR construction + call-graph linking.
    pub parse: std::time::Duration,
    /// All interprocedural passes (T1/L1/P3/B1/W1/C1/C2).
    pub interproc: std::time::Duration,
    /// End-to-end, including normalization.
    pub total: std::time::Duration,
}

/// Analyze the workspace under `root`: first-party `.rs` files in
/// `crates/` and `examples/` (minus [`SKIP_DIRS`]) under the full
/// ruleset, plus `vendor/*/src/` under the relaxed one (U1 + P3).
///
/// Two phases: the per-file token rules run first, then the files are
/// parsed into a [`ir::WorkspaceIr`], linked into a call graph, and the
/// interprocedural rules (T1 taint, L1 lock discipline, P3 transitive
/// panic reachability, B1 reactor blocking, W1 durability ordering,
/// C1/C2 deadlock detection) run over the whole program. Each file is
/// lexed exactly once; the token stream is shared between the token
/// rules and the IR. Findings come back normalized: sorted by (file,
/// line, rule, message), deduplicated.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    analyze_workspace_timed(root).map(|(report, _)| report)
}

/// [`analyze_workspace`] plus the per-phase [`Timing`] breakdown.
pub fn analyze_workspace_timed(root: &Path) -> std::io::Result<(Report, Timing)> {
    let t_start = std::time::Instant::now();
    let mut files = Vec::new();
    for sub in ["crates", "examples"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut vendor_files = Vec::new();
    let vend = root.join("vendor");
    if vend.is_dir() {
        for entry in std::fs::read_dir(&vend)? {
            let src_dir = entry?.path().join("src");
            if src_dir.is_dir() {
                collect_rs_files(&src_dir, &mut vendor_files)?;
            }
        }
    }
    vendor_files.sort();

    let mut timing = Timing::default();
    let mut report = Report::default();
    let mut inputs: Vec<(String, bool, Vec<lexer::Token>)> = Vec::new();
    let first_party = files.into_iter().map(|f| (f, false));
    let vendored = vendor_files.into_iter().map(|f| (f, true));
    for (file, vendor) in first_party.chain(vendored) {
        let t = std::time::Instant::now();
        let src = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let tokens = lexer::lex(&src);
        timing.lex += t.elapsed();
        report.files_scanned += 1;
        inputs.push((rel, vendor, tokens));
    }

    let cfg = Config::default();
    let t = std::time::Instant::now();
    for (rel, _, tokens) in &inputs {
        report.findings.extend(rules::check(rel, tokens, &cfg));
    }
    timing.token_rules = t.elapsed();

    let t = std::time::Instant::now();
    let ws = parser::build_workspace_tokens(inputs);
    let graph = callgraph::CallGraph::build(&ws);
    timing.parse = t.elapsed();

    let t = std::time::Instant::now();
    report
        .findings
        .extend(interproc_findings(&ws, &graph, &cfg));
    timing.interproc = t.elapsed();

    report::normalize(&mut report.findings);
    timing.total = t_start.elapsed();
    Ok((report, timing))
}

/// Convert T1/L1/P3/B1/W1 hits into [`Finding`]s, applying waivers.
fn interproc_findings(
    ws: &ir::WorkspaceIr,
    graph: &callgraph::CallGraph,
    cfg: &Config,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let waived_at = |fn_id: ir::FnId, line: u32, rule: Rule| -> bool {
        let file = &ws.files[ws.fns[fn_id].file];
        file.waivers
            .get(&line)
            .is_some_and(|rules| rules.contains(rule.as_str()))
    };
    let file_of = |fn_id: ir::FnId| ws.files[ws.fns[fn_id].file].path.clone();

    for hit in taint::run_t1(ws, cfg.secret_types) {
        out.push(Finding {
            rule: Rule::T1,
            file: file_of(hit.fn_id),
            line: hit.line,
            message: hit.message,
            waived: waived_at(hit.fn_id, hit.line, Rule::T1),
        });
    }
    for hit in locks::run_l1(ws, graph) {
        out.push(Finding {
            rule: Rule::L1,
            file: file_of(hit.fn_id),
            line: hit.line,
            message: hit.message,
            waived: waived_at(hit.fn_id, hit.line, Rule::L1),
        });
    }
    for hit in callgraph::run_p3(ws, graph) {
        let message = format!(
            "P3 panic reachability: {} in {}, reachable via {}",
            hit.kind.describe(),
            ws.label(hit.fn_id),
            hit.path.join(" -> ")
        );
        let (line, waived) = if let Some(&l) = hit.lines.first() {
            (l, false)
        } else if let Some(&l) = hit.waived_lines.first() {
            (l, true)
        } else {
            continue;
        };
        out.push(Finding {
            rule: Rule::P3,
            file: file_of(hit.fn_id),
            line,
            message,
            waived,
        });
    }
    for hit in blocking::run_b1(ws, graph) {
        let message = format!(
            "B1 blocking on reactor path: {} in {}, reachable via {}",
            hit.desc,
            ws.label(hit.fn_id),
            hit.path.join(" -> ")
        );
        let (line, waived) = if let Some(&l) = hit.lines.first() {
            (l, false)
        } else if let Some(&l) = hit.waived_lines.first() {
            (l, true)
        } else {
            continue;
        };
        out.push(Finding {
            rule: Rule::B1,
            file: file_of(hit.fn_id),
            line,
            message,
            waived,
        });
    }
    for hit in ordering::run_w1(ws, graph) {
        out.push(Finding {
            rule: Rule::W1,
            file: file_of(hit.fn_id),
            line: hit.line,
            message: hit.message,
            waived: waived_at(hit.fn_id, hit.line, Rule::W1),
        });
    }
    let dl = deadlock::run(ws);
    for (rule, hits) in [(Rule::C1, dl.c1), (Rule::C2, dl.c2)] {
        for hit in hits {
            out.push(Finding {
                rule,
                file: file_of(hit.fn_id),
                line: hit.line,
                message: hit.message,
                waived: waived_at(hit.fn_id, hit.line, rule),
            });
        }
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
