//! Rule **L1** — lock discipline over the concurrent engine paths.
//!
//! DESIGN.md §9 declares one lock order: tables-`RwLock` first, then a
//! pool-shard mutex, never the other way, and never two locks of the
//! same class at once. On top of that, no channel send or `Service`
//! call may run while a write-capable guard (an `RwLock` write guard or
//! any mutex guard) is held — a blocked peer would stall every reader.
//!
//! The analysis walks each fn body unit by unit, modeling guard
//! lifetimes syntactically:
//!
//! * `let g = x.write();` — named guard, lives to the end of its block
//!   (or an explicit `drop(g)`).
//! * `let v = *x.lock();` — deref copy, the temporary dies at the `;`.
//! * `f(&mut x.write(), …)` — temporary guard, alive for exactly the
//!   statement that contains it (so `f` runs under it).
//!
//! Calls made under a guard are checked against per-fn summaries
//! computed to a fixpoint over the call graph: does the callee
//! (transitively) send on a channel or acquire a lock class that
//! violates the declared order? Findings carry the witness chain.

use crate::callgraph::{resolve_call, resolve_recv_types, CallGraph};
use crate::ir::{Ctx, CtxKind, FnId, FnItem, WorkspaceIr};
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeMap;
use std::fmt;

/// The lock classes the workspace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// `RwLock::read` — shared, not write-capable.
    RwRead,
    /// `RwLock::write` — exclusive.
    RwWrite,
    /// Any mutex (`Mutex::lock`), e.g. a pool shard or stats cell.
    Mutex,
}

impl LockClass {
    /// Coarse class family for double-acquisition checks.
    pub fn family(self) -> &'static str {
        match self {
            LockClass::RwRead | LockClass::RwWrite => "RwLock",
            LockClass::Mutex => "mutex",
        }
    }

    /// Guards that exclude other threads entirely.
    pub fn write_capable(self) -> bool {
        matches!(self, LockClass::RwWrite | LockClass::Mutex)
    }

    pub(crate) fn describe(self) -> &'static str {
        match self {
            LockClass::RwRead => "RwLock read guard",
            LockClass::RwWrite => "RwLock write guard",
            LockClass::Mutex => "mutex guard",
        }
    }
}

/// A lock *identity*: which specific lock object an acquisition refers
/// to, as precisely as the receiver chain can be typed. `self.state
/// .lock()` inside `impl Inner` and `inner.state.lock()` where `inner:
/// &Arc<Inner>` both yield `Inner.state`; an indexed shard
/// (`pool.shards[i].lock()`) yields `BufferPool.shards[]` — one
/// identity per shard *array*, which is exactly the granularity a
/// whole-program lock-order graph needs. Shared between L1 (which
/// classifies by [`LockClass`]) and the C1 cycle detector in
/// [`crate::deadlock`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub String);

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Derive the [`LockId`] of a lock-acquisition context (one that
/// [`lock_class`] already accepted). `None` when the receiver cannot be
/// identified (e.g. produced by a call: `pending().lock()`), in which
/// case C1 conservatively skips the acquisition rather than guess.
pub(crate) fn lock_identity(ws: &WorkspaceIr, f: &FnItem, ctx: &Ctx) -> Option<LockId> {
    if !ctx.method {
        return None;
    }
    let tokens = &ws.files[f.file].tokens;
    let segs = recv_segments(tokens, ctx.name_tok)?;
    let (last, owner_segs) = segs.split_last()?;
    if owner_segs.is_empty() {
        // Single-segment receiver: `self.lock()` is the impl type
        // itself; a param/local mutex is identified by its type.
        if last == "self" {
            return f.impl_type.clone().map(LockId);
        }
        let head = vec![last.trim_end_matches("[]").to_string()];
        return resolve_recv_types(ws, f, &head).map(|ty| LockId(render_ty(&ty)));
    }
    // Field access: identify as `OwnerType.field`, falling back to the
    // lexical path (`state.out_buf`) when the owner cannot be typed.
    let owner: Vec<String> = owner_segs
        .iter()
        .map(|s| s.trim_end_matches("[]").to_string())
        .collect();
    if let Some(ty) = resolve_recv_types(ws, f, &owner) {
        let name = ty
            .iter()
            .find(|t| ws.structs.contains_key(t.as_str()))
            .or_else(|| ty.first())?;
        return Some(LockId(format!("{name}.{last}")));
    }
    let mut parts = segs.clone();
    if let (Some(head), Some(t)) = (parts.first_mut(), &f.impl_type) {
        if head == "self" {
            *head = t.clone();
        }
    }
    Some(LockId(parts.join(".")))
}

/// Render a type-ident list as a display type (`["Mutex", "ConnState"]`
/// → `Mutex<ConnState>`).
fn render_ty(ty: &[String]) -> String {
    match ty.split_first() {
        Some((h, rest)) if !rest.is_empty() => format!("{h}<{}>", rest.join(", ")),
        Some((h, _)) => h.clone(),
        None => String::new(),
    }
}

/// The lexical receiver chain of a method call, walked back over `.`
/// from the callee name. Unlike [`Ctx::recv`] this traverses index
/// groups, so `pool.shards[i].lock()` yields `["pool", "shards[]"]`
/// instead of `["<expr>"]`. `None` when the chain starts at anything
/// other than a plain ident path (e.g. a producing call).
fn recv_segments(tokens: &[Token], name_tok: usize) -> Option<Vec<String>> {
    let mut segs: Vec<String> = Vec::new();
    let dot = crate::parser::prev_nc(tokens, name_tok)?;
    if !tokens[dot].is_punct('.') {
        return None;
    }
    let mut i = dot;
    loop {
        i = crate::parser::prev_nc(tokens, i)?;
        if tokens[i].is_punct(']') {
            let open = open_of(tokens, i)?;
            let base = crate::parser::prev_nc(tokens, open)?;
            if tokens[base].kind != TokenKind::Ident
                || crate::parser::is_keyword(&tokens[base].text)
            {
                return None;
            }
            segs.insert(0, format!("{}[]", tokens[base].text));
            i = base;
        } else if matches!(tokens[i].kind, TokenKind::Ident | TokenKind::Number) {
            if crate::parser::is_keyword(&tokens[i].text) {
                return None;
            }
            segs.insert(0, tokens[i].text.clone());
        } else {
            return None;
        }
        match crate::parser::prev_nc(tokens, i) {
            Some(p) if tokens[p].is_punct('.') => i = p,
            _ => break,
        }
    }
    Some(segs)
}

/// Matching open bracket for the `]` at `close`, scanning backwards.
fn open_of(tokens: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    for k in (0..=close).rev() {
        if tokens[k].is_punct(']') {
            depth += 1;
        } else if tokens[k].is_punct('[') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// One L1 result, pre-waiver.
pub struct L1Hit {
    /// Fn the violation occurs in.
    pub fn_id: FnId,
    /// 1-based line of the offending acquisition / send / call.
    pub line: u32,
    /// Line-free message (stable under unrelated edits).
    pub message: String,
}

/// Per-fn interprocedural summary.
#[derive(Default, Clone)]
struct Summary {
    /// `Some(chain)` when the fn (transitively) sends on a channel or
    /// makes a `Service` call; the chain lists fn labels to a direct
    /// sender.
    sends: Option<Vec<String>>,
    /// Lock classes (transitively) acquired, each with a witness chain.
    acquires: BTreeMap<LockClass, Vec<String>>,
}

/// Classify a context as a lock acquisition. Shared with rule B1,
/// which treats any write-capable acquisition on a reactor path as a
/// blocking sink.
pub(crate) fn lock_class(ws: &WorkspaceIr, f: &FnItem, ctx: &Ctx) -> Option<LockClass> {
    if ctx.kind != CtxKind::Call || !ctx.method || ctx.args_start != ctx.args_end {
        return None; // locks take no arguments
    }
    match ctx.callee.as_str() {
        "lock" => Some(LockClass::Mutex),
        "read" | "write" => {
            let ty = resolve_recv_types(ws, f, &ctx.recv)?;
            if ty.iter().any(|t| t == "RwLock") {
                Some(if ctx.callee == "read" {
                    LockClass::RwRead
                } else {
                    LockClass::RwWrite
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Channel-send and service-call method names.
fn op_desc(ctx: &Ctx) -> Option<&'static str> {
    if ctx.kind != CtxKind::Call || !ctx.method {
        return None;
    }
    match ctx.callee.as_str() {
        "send" | "send_timeout" | "try_send" => Some("channel send"),
        "handle" => Some("service call"),
        c if c == "call" || c.starts_with("call_") => Some("service call"),
        _ => None,
    }
}

/// Compute send/acquire summaries to a fixpoint over the call graph.
fn summaries(ws: &WorkspaceIr, graph: &CallGraph) -> Vec<Summary> {
    let mut sums: Vec<Summary> = vec![Summary::default(); ws.fns.len()];
    // Seed with direct facts.
    for (id, f) in ws.fns.iter().enumerate() {
        let label = ws.label(id);
        for ctx in &f.ctxs {
            if let Some(c) = lock_class(ws, f, ctx) {
                sums[id]
                    .acquires
                    .entry(c)
                    .or_insert_with(|| vec![label.clone()]);
            } else if op_desc(ctx).is_some() && sums[id].sends.is_none() {
                sums[id].sends = Some(vec![label.clone()]);
            }
        }
    }
    // Propagate along edges until stable.
    loop {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            for e in &graph.edges[id] {
                let callee = sums[e.to].clone();
                let me = &mut sums[id];
                if me.sends.is_none() {
                    if let Some(chain) = callee.sends {
                        let mut c = vec![ws.label(id)];
                        c.extend(chain);
                        me.sends = Some(c);
                        changed = true;
                    }
                }
                for (class, chain) in callee.acquires {
                    me.acquires.entry(class).or_insert_with(|| {
                        changed = true;
                        let mut c = vec![ws.label(id)];
                        c.extend(chain);
                        c
                    });
                }
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

/// A guard alive at some point in a body walk.
struct Guard {
    class: LockClass,
    name: Option<String>,
    depth: u32,
    line: u32,
}

/// Run L1 over every first-party fn.
pub fn run_l1(ws: &WorkspaceIr, graph: &CallGraph) -> Vec<L1Hit> {
    let sums = summaries(ws, graph);
    let mut hits = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if ws.files[f.file].vendor {
            continue;
        }
        check_fn(ws, f, id, &sums, &mut hits);
    }
    hits.sort_by_key(|h| (h.fn_id, h.line));
    hits
}

fn check_fn(ws: &WorkspaceIr, f: &FnItem, id: FnId, sums: &[Summary], hits: &mut Vec<L1Hit>) {
    let tokens = &ws.files[f.file].tokens;
    let label = ws.label(id);
    let mut active: Vec<Guard> = Vec::new();
    for u in &f.units {
        // Guards die when their block closes.
        active.retain(|g| g.depth <= u.depth);
        // Contexts inside this unit, in token order.
        let ctxs: Vec<&Ctx> = f
            .ctxs
            .iter()
            .filter(|c| u.start <= c.name_tok && c.name_tok <= u.end)
            .collect();
        // Temporary guards born in this unit: (token, class, line).
        let mut unit_locks: Vec<(usize, LockClass, u32)> = Vec::new();
        for ctx in &ctxs {
            if ctx.kind == CtxKind::MacroCall {
                continue;
            }
            // Explicit `drop(g)` releases a named guard.
            if !ctx.method && ctx.path.is_empty() && ctx.callee == "drop" {
                let arg = crate::parser::next_nc(tokens, ctx.args_start)
                    .filter(|&i| i < ctx.args_end)
                    .map(|i| tokens[i].text.clone());
                if let Some(name) = arg {
                    active.retain(|g| g.name.as_deref() != Some(name.as_str()));
                }
                continue;
            }
            if let Some(class) = lock_class(ws, f, ctx) {
                // Check this acquisition against everything held.
                let held = active
                    .iter()
                    .map(|g| (g.class, g.line))
                    .chain(unit_locks.iter().map(|&(_, c, l)| (c, l)));
                for (hc, _) in held {
                    if hc.family() == class.family() {
                        hits.push(L1Hit {
                            fn_id: id,
                            line: ctx.line,
                            message: format!(
                                "L1 double acquisition: {} taken while a {} is already held in {}",
                                class.describe(),
                                hc.describe(),
                                label
                            ),
                        });
                    } else if hc == LockClass::Mutex
                        && matches!(class, LockClass::RwRead | LockClass::RwWrite)
                    {
                        hits.push(L1Hit {
                            fn_id: id,
                            line: ctx.line,
                            message: format!(
                                "L1 lock-order inversion: {} taken while a mutex guard is held in {} (declared order: tables-RwLock before pool-shard mutex)",
                                class.describe(),
                                label
                            ),
                        });
                    }
                }
                unit_locks.push((ctx.name_tok, class, ctx.line));
                continue;
            }
            // Guards in effect for this call: active named guards plus
            // temporaries that were (or are being) created in this
            // statement before/inside the call.
            let under: Vec<(LockClass, u32)> = active
                .iter()
                .map(|g| (g.class, g.line))
                .chain(
                    unit_locks
                        .iter()
                        .filter(|&&(tok, _, _)| tok < ctx.name_tok || ctx.contains(tok))
                        .map(|&(_, c, l)| (c, l)),
                )
                .collect();
            // Also catch locks lexically *inside* the call's argument
            // span that appear later in `ctxs` order.
            let arg_locks: Vec<(LockClass, u32)> = ctxs
                .iter()
                .filter(|c2| c2.name_tok > ctx.name_tok && ctx.contains(c2.name_tok))
                .filter_map(|c2| lock_class(ws, f, c2).map(|cl| (cl, c2.line)))
                .collect();
            let under: Vec<(LockClass, u32)> = under.into_iter().chain(arg_locks).collect();
            if under.is_empty() {
                continue;
            }
            if let Some(desc) = op_desc(ctx) {
                if let Some(&(c, _)) = under.iter().find(|(c, _)| c.write_capable()) {
                    hits.push(L1Hit {
                        fn_id: id,
                        line: ctx.line,
                        message: format!(
                            "L1 blocking op under guard: {} while holding a {} in {}",
                            desc,
                            c.describe(),
                            label
                        ),
                    });
                }
                continue;
            }
            // Ordinary call under a guard: consult callee summaries.
            if ctx.kind != CtxKind::Call {
                continue;
            }
            for callee in resolve_call(ws, f, ctx) {
                let s = &sums[callee];
                if let Some(chain) = &s.sends {
                    if let Some(&(c, _)) = under.iter().find(|(c, _)| c.write_capable()) {
                        hits.push(L1Hit {
                            fn_id: id,
                            line: ctx.line,
                            message: format!(
                                "L1 blocking op under guard: call chain {} sends while {} holds a {}",
                                chain.join(" -> "),
                                label,
                                c.describe()
                            ),
                        });
                    }
                }
                for (&class, chain) in &s.acquires {
                    for &(hc, _) in &under {
                        if hc.family() == class.family() {
                            hits.push(L1Hit {
                                fn_id: id,
                                line: ctx.line,
                                message: format!(
                                    "L1 double acquisition via call: chain {} acquires a {} while {} already holds a {}",
                                    chain.join(" -> "),
                                    class.describe(),
                                    label,
                                    hc.describe()
                                ),
                            });
                        } else if hc == LockClass::Mutex
                            && matches!(class, LockClass::RwRead | LockClass::RwWrite)
                        {
                            hits.push(L1Hit {
                                fn_id: id,
                                line: ctx.line,
                                message: format!(
                                    "L1 lock-order inversion via call: chain {} acquires a {} while {} holds a mutex guard",
                                    chain.join(" -> "),
                                    class.describe(),
                                    label
                                ),
                            });
                        }
                    }
                }
            }
        }
        // End of unit: temporaries die; a plain `let g = x.lock();`
        // (no deref, lock call is the whole RHS) becomes a named guard.
        if let (Some(name), false) = (&u.let_name, u.deref_rhs) {
            if let Some(&(tok, class, line)) = unit_locks.last() {
                let lock_ctx = f.ctxs.iter().find(|c| c.name_tok == tok);
                let outermost = lock_ctx.is_some_and(|c| {
                    crate::parser::next_nc(tokens, c.args_end + 1)
                        .is_some_and(|i| tokens[i].is_punct(';'))
                });
                if outermost {
                    active.push(Guard {
                        class,
                        name: Some(name.clone()),
                        depth: u.depth,
                        line,
                    });
                }
            }
        }
    }
    let _ = &active;
}
