//! The seven token-level dasp lint rules, evaluated over a lexed
//! token stream.
//!
//! | Rule | What it enforces |
//! |------|------------------|
//! | S1   | secret-bearing types never derive/impl `Debug`/`Display` and never appear in format/log macro arguments |
//! | S2   | only allowlisted share-carrying DTOs may appear in a `WireWriter`/`WireReader` function signature |
//! | P1   | no `.unwrap()`/`.expect()`/`panic!`/`todo!`/`unimplemented!` in provider/transport/reconstruction code |
//! | P2   | no lossy `as` numeric casts in field/bigint arithmetic |
//! | D1   | no wall-clock reads (`Instant::now`, `SystemTime`) in deterministic codec crates |
//! | U1   | every `unsafe` carries a `// SAFETY:` comment |
//! | E1   | no silently discarded `Result` (`let _ = tx.send(…)`, bare `.ok();`) from sends/appends in net/server/storage |
//!
//! Waivers: a comment `// dasp::allow(RULE): reason` suppresses `RULE` on
//! its own line and on the next non-comment code line. `// SAFETY: …`
//! plays the same role for U1. Code under `#[cfg(test)]` / `#[test]` is
//! exempt from every rule.

use crate::lexer::{Token, TokenKind};
use crate::{Config, Finding, Rule};
use std::collections::{BTreeSet, HashMap};

/// Macros whose arguments S1 scans for secret-type identifiers.
pub(crate) const FMT_MACROS: &[&str] = &[
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "dbg",
    "log",
    "trace",
    "debug",
    "info",
    "warn",
    "error",
];

/// Cast targets P2 treats as lossy. Widening (`u128`/`i128`) and
/// platform-size (`usize`/`isize`) targets stay legal by design.
const LOSSY_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64", "f32", "f64",
];

/// Identifiers S2 always accepts in a wire-adjacent signature: generic
/// machinery and std types that carry no payload of their own.
const S2_NEUTRAL: &[&str] = &[
    "Option",
    "Vec",
    "Result",
    "Self",
    "String",
    "WireError",
    "Fn",
    "FnMut",
    "FnOnce",
    "Ok",
    "Err",
    "Box",
    "Iterator",
    "IntoIterator",
];

/// Analyze one file's tokens under `cfg`. `path` uses `/` separators and
/// is only consulted for rule scoping, never opened.
pub fn check(path: &str, tokens: &[Token], cfg: &Config) -> Vec<Finding> {
    let masked = test_mask(tokens);
    let (allow, safety) = waivers(tokens);
    // Comment-free, test-free view; rules reason over adjacency here.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !masked[i] && !tokens[i].is_comment())
        .collect();

    let mut findings = Vec::new();
    let mut emit = |rule: Rule, line: u32, message: String| {
        let waived = allow
            .get(&line)
            .is_some_and(|rules| rules.contains(rule.as_str()))
            || (rule == Rule::U1 && safety.contains(&line));
        findings.push(Finding {
            rule,
            file: path.to_string(),
            line,
            message,
            waived,
        });
    };

    if path.starts_with("vendor/") {
        // Relaxed vendor ruleset: SAFETY-comment hygiene only here; the
        // interprocedural pass adds P3 panic reachability.
        u1_unsafe(tokens, &code, &mut emit);
        return findings;
    }

    s1_derives_and_impls(tokens, &code, cfg, &mut emit);
    s1_macro_args(tokens, &code, cfg, &mut emit);
    if cfg.in_scope(Rule::S2, path) {
        s2_wire_signatures(tokens, &code, cfg, &mut emit);
    }
    if cfg.in_scope(Rule::P1, path) {
        p1_panics(tokens, &code, &mut emit);
    }
    if cfg.in_scope(Rule::P2, path) {
        p2_lossy_casts(tokens, &code, &mut emit);
    }
    if cfg.in_scope(Rule::D1, path) {
        d1_wall_clock(tokens, &code, &mut emit);
    }
    if cfg.in_scope(Rule::E1, path) {
        e1_discarded_results(tokens, &code, &mut emit);
    }
    u1_unsafe(tokens, &code, &mut emit);
    findings
}

/// Mark every token under a `#[cfg(test)]` or `#[test]` item.
pub(crate) fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut masked = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') || !matches!(tokens.get(i + 1), Some(t) if t.is_punct('[')) {
            i += 1;
            continue;
        }
        let Some(close) = match_bracket(tokens, i + 1, '[', ']') else {
            break;
        };
        let body: String = tokens[i + 2..close]
            .iter()
            .filter(|t| !t.is_comment())
            .map(|t| t.text.as_str())
            .collect();
        if body != "cfg(test)" && body != "test" {
            i = close + 1;
            continue;
        }
        // Gate found: mask through the guarded item — up to `;` for a
        // declaration, or through the matching `}` of its body.
        let mut j = close + 1;
        let mut end = tokens.len().saturating_sub(1);
        while j < tokens.len() {
            if tokens[j].is_punct(';') {
                end = j;
                break;
            }
            if tokens[j].is_punct('{') {
                end = match_bracket(tokens, j, '{', '}').unwrap_or(tokens.len() - 1);
                break;
            }
            j += 1;
        }
        for slot in masked.iter_mut().take(end + 1).skip(i) {
            *slot = true;
        }
        i = end + 1;
    }
    masked
}

/// Index of the token closing the bracket opened at `open` (which must
/// hold `open_c`), counting nesting; `None` when unbalanced.
pub(crate) fn match_bracket(
    tokens: &[Token],
    open: usize,
    open_c: char,
    close_c: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Build the waiver maps: line → set of waived rule names, and the set
/// of lines sanctioned by a `SAFETY:` comment. Each waiver covers the
/// comment's own line plus the next line holding non-comment code.
pub(crate) fn waivers(tokens: &[Token]) -> (HashMap<u32, BTreeSet<String>>, BTreeSet<u32>) {
    let code_lines: BTreeSet<u32> = tokens
        .iter()
        .filter(|t| !t.is_comment())
        .map(|t| t.line)
        .collect();
    let covered = |line: u32| -> Vec<u32> {
        let mut v = vec![line];
        if let Some(&next) = code_lines.iter().find(|&&l| l > line) {
            v.push(next);
        }
        v
    };

    let mut allow: HashMap<u32, BTreeSet<String>> = HashMap::new();
    let mut safety: BTreeSet<u32> = BTreeSet::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        if let Some(rest) = t.text.split("dasp::allow(").nth(1) {
            if let Some(inner) = rest.split(')').next() {
                for rule in inner.split(',').map(str::trim).filter(|r| !r.is_empty()) {
                    for line in covered(t.line) {
                        allow.entry(line).or_default().insert(rule.to_string());
                    }
                }
            }
        }
        let body = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start();
        if body.starts_with("SAFETY:") {
            for line in covered(t.line) {
                safety.insert(line);
            }
        }
    }
    (allow, safety)
}

/// S1 part one: `#[derive(Debug, …)]` on a secret type, and
/// `impl Debug/Display for SecretType`.
fn s1_derives_and_impls(
    tokens: &[Token],
    code: &[usize],
    cfg: &Config,
    emit: &mut impl FnMut(Rule, u32, String),
) {
    let tok = |k: usize| &tokens[code[k]];
    let n = code.len();
    let mut k = 0;
    while k < n {
        // #[derive(…)] — collect the derived trait names.
        if tok(k).is_punct('#')
            && k + 2 < n
            && tok(k + 1).is_punct('[')
            && tok(k + 2).is_ident("derive")
        {
            let attr_line = tok(k).line;
            let mut j = k + 3;
            let mut derives_debug = false;
            let mut depth = 0usize;
            while j < n {
                if tok(j).is_punct('[') || tok(j).is_punct('(') {
                    depth += 1;
                } else if tok(j).is_punct(']') || tok(j).is_punct(')') {
                    if tok(j).is_punct(']') && depth == 0 {
                        break;
                    }
                    depth = depth.saturating_sub(1);
                    if tok(j).is_punct(']') && depth == 0 {
                        break;
                    }
                } else if tok(j).kind == TokenKind::Ident
                    && (tok(j).text == "Debug" || tok(j).text == "Display")
                {
                    derives_debug = true;
                }
                j += 1;
            }
            if derives_debug {
                if let Some(name) = struct_name_after(tokens, code, j) {
                    if cfg.secret_types.contains(&name.as_str()) {
                        emit(
                            Rule::S1,
                            attr_line,
                            format!("secret-bearing type `{name}` derives Debug/Display; it must redact via a manual impl"),
                        );
                    }
                }
            }
            k = j + 1;
            continue;
        }
        // impl [<…>] TraitPath for TypeName
        if tok(k).is_ident("impl") {
            let impl_line = tok(k).line;
            let mut j = k + 1;
            if j < n && tok(j).is_punct('<') {
                j = skip_angles(tokens, code, j);
            }
            // Collect depth-0 path idents until `for`; bail on `{` (an
            // inherent impl has no trait).
            let mut trait_last: Option<String> = None;
            let mut angle = 0usize;
            while j < n {
                let t = tok(j);
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle = angle.saturating_sub(1);
                } else if t.is_punct('{') || t.is_punct(';') {
                    trait_last = None;
                    break;
                } else if t.is_ident("for") && angle == 0 {
                    break;
                } else if t.kind == TokenKind::Ident && angle == 0 {
                    trait_last = Some(t.text.clone());
                }
                j += 1;
            }
            if let Some(trait_name) = trait_last {
                if (trait_name == "Debug" || trait_name == "Display") && j < n {
                    // First ident after `for` is the implementing type.
                    let ty = code[j + 1..]
                        .iter()
                        .map(|&i| &tokens[i])
                        .find(|t| t.kind == TokenKind::Ident)
                        .map(|t| t.text.clone());
                    if let Some(ty) = ty {
                        if cfg.secret_types.contains(&ty.as_str()) {
                            emit(
                                Rule::S1,
                                impl_line,
                                format!("manual {trait_name} impl on secret-bearing type `{ty}` (waive with dasp::allow(S1) only if it redacts)"),
                            );
                        }
                    }
                }
            }
            k = j + 1;
            continue;
        }
        k += 1;
    }
}

/// The struct/enum name following a derive attribute, skipping further
/// attributes and visibility modifiers.
fn struct_name_after(tokens: &[Token], code: &[usize], attr_close: usize) -> Option<String> {
    let tok = |k: usize| &tokens[code[k]];
    let n = code.len();
    let mut j = attr_close + 1;
    while j < n {
        let t = tok(j);
        if t.is_punct('#') {
            // Another attribute: skip its bracket group.
            let mut depth = 0usize;
            j += 1;
            while j < n {
                if tok(j).is_punct('[') {
                    depth += 1;
                } else if tok(j).is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
            continue;
        }
        if t.is_ident("struct") || t.is_ident("enum") || t.is_ident("union") {
            return tokens.get(*code.get(j + 1)?).map(|t| t.text.clone());
        }
        if t.is_ident("pub")
            || t.is_ident("crate")
            || t.is_ident("super")
            || t.is_punct('(')
            || t.is_punct(')')
        {
            j += 1;
            continue;
        }
        return None; // fn/const/etc. — derives don't apply, stop.
    }
    None
}

/// Skip a balanced `<…>` group starting at `open` (filtered index),
/// tolerating `->` inside bounds. Returns the index after `>`.
fn skip_angles(tokens: &[Token], code: &[usize], open: usize) -> usize {
    let tok = |k: usize| &tokens[code[k]];
    let n = code.len();
    let mut depth = 0usize;
    let mut j = open;
    while j < n {
        let t = tok(j);
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            // `->` return arrows inside bounds don't close a bracket.
            let arrow = j > 0 && tok(j - 1).is_punct('-');
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
        j += 1;
    }
    n
}

/// S1 part two: secret-type identifiers in format/log macro arguments.
fn s1_macro_args(
    tokens: &[Token],
    code: &[usize],
    cfg: &Config,
    emit: &mut impl FnMut(Rule, u32, String),
) {
    let tok = |k: usize| &tokens[code[k]];
    let n = code.len();
    for k in 0..n {
        if tok(k).kind != TokenKind::Ident || !FMT_MACROS.contains(&tok(k).text.as_str()) {
            continue;
        }
        if k + 1 >= n || !tok(k + 1).is_punct('!') {
            continue;
        }
        let Some(open) = code.get(k + 2).map(|&i| &tokens[i]) else {
            continue;
        };
        let (oc, cc) = match open.text.chars().next() {
            Some('(') => ('(', ')'),
            Some('[') => ('[', ']'),
            Some('{') => ('{', '}'),
            _ => continue,
        };
        let mut depth = 0usize;
        let mut j = k + 2;
        while j < n {
            let t = tok(j);
            if t.is_punct(oc) {
                depth += 1;
            } else if t.is_punct(cc) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokenKind::Ident && cfg.secret_types.contains(&t.text.as_str()) {
                emit(
                    Rule::S1,
                    t.line,
                    format!(
                        "secret-bearing type `{}` passed to `{}!` — secrets must not reach format/log output",
                        t.text,
                        tok(k).text
                    ),
                );
            }
            j += 1;
        }
    }
}

/// S2: any fn signature mentioning `WireWriter`/`WireReader` may name
/// only allowlisted DTOs (plus neutral std/generic machinery).
fn s2_wire_signatures(
    tokens: &[Token],
    code: &[usize],
    cfg: &Config,
    emit: &mut impl FnMut(Rule, u32, String),
) {
    let tok = |k: usize| &tokens[code[k]];
    let n = code.len();
    let mut k = 0;
    while k < n {
        if !tok(k).is_ident("fn") {
            k += 1;
            continue;
        }
        let fn_line = tok(k).line;
        let fn_name = if k + 1 < n {
            tok(k + 1).text.clone()
        } else {
            String::new()
        };
        // Signature = tokens up to the body `{` or declaration `;`.
        let mut j = k + 1;
        let mut sig: Vec<usize> = Vec::new();
        while j < n && !tok(j).is_punct('{') && !tok(j).is_punct(';') {
            sig.push(j);
            j += 1;
        }
        let touches_wire = sig
            .iter()
            .any(|&s| tok(s).is_ident("WireWriter") || tok(s).is_ident("WireReader"));
        if touches_wire {
            for &s in &sig {
                let t = tok(s);
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let name = t.text.as_str();
                let uppercase = name.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                if !uppercase || name.len() == 1 {
                    continue; // lowercase idents and single-letter generics
                }
                if name == "WireWriter" || name == "WireReader" {
                    continue;
                }
                if S2_NEUTRAL.contains(&name) || cfg.wire_allowlist.contains(&name) {
                    continue;
                }
                emit(
                    Rule::S2,
                    fn_line,
                    format!(
                        "`{name}` appears in wire-serialization fn `{fn_name}` but is not in the share-type allowlist"
                    ),
                );
            }
        }
        k = j + 1;
    }
}

/// P1: panic-capable constructs in provider/transport code.
fn p1_panics(tokens: &[Token], code: &[usize], emit: &mut impl FnMut(Rule, u32, String)) {
    let tok = |k: usize| &tokens[code[k]];
    let n = code.len();
    for k in 0..n {
        let t = tok(k);
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" => {
                let method_call =
                    k > 0 && tok(k - 1).is_punct('.') && k + 1 < n && tok(k + 1).is_punct('(');
                if method_call {
                    emit(
                        Rule::P1,
                        t.line,
                        format!(
                            "`.{}()` can panic in provider/transport code; propagate a typed error instead",
                            t.text
                        ),
                    );
                }
            }
            "panic" | "todo" | "unimplemented" if k + 1 < n && tok(k + 1).is_punct('!') => {
                emit(
                    Rule::P1,
                    t.line,
                    format!(
                        "`{}!` aborts the provider thread; return an error instead",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }
}

/// P2: lossy `as` casts in exact-arithmetic crates.
fn p2_lossy_casts(tokens: &[Token], code: &[usize], emit: &mut impl FnMut(Rule, u32, String)) {
    let tok = |k: usize| &tokens[code[k]];
    let n = code.len();
    for k in 0..n.saturating_sub(1) {
        if !tok(k).is_ident("as") {
            continue;
        }
        let target = tok(k + 1);
        if target.kind == TokenKind::Ident && LOSSY_TARGETS.contains(&target.text.as_str()) {
            emit(
                Rule::P2,
                target.line,
                format!(
                    "lossy `as {}` cast in exact-arithmetic code; use TryFrom/From or a waived truncation helper",
                    target.text
                ),
            );
        }
    }
}

/// D1: wall-clock reads in deterministic codec crates.
fn d1_wall_clock(tokens: &[Token], code: &[usize], emit: &mut impl FnMut(Rule, u32, String)) {
    let tok = |k: usize| &tokens[code[k]];
    let n = code.len();
    for k in 0..n {
        let t = tok(k);
        if t.is_ident("SystemTime") {
            emit(
                Rule::D1,
                t.line,
                "`SystemTime` in a deterministic codec path; results must not depend on the clock"
                    .to_string(),
            );
        }
        if t.is_ident("Instant")
            && k + 3 < n
            && tok(k + 1).is_punct(':')
            && tok(k + 2).is_punct(':')
            && tok(k + 3).is_ident("now")
        {
            emit(
                Rule::D1,
                t.line,
                "`Instant::now()` in a deterministic codec path; inject time from the caller"
                    .to_string(),
            );
        }
    }
}

/// Methods whose `Result` E1 refuses to see silently dropped: a failed
/// send means a dead peer (the caller must tear down or retry) and a
/// failed append means lost durability — neither may vanish into
/// `let _ =` or a bare `.ok();`.
const E1_METHODS: &[&str] = &[
    "send",
    "send_timeout",
    "try_send",
    "append",
    "append_durable",
    "commit",
];

/// E1: silently discarded `Result` from a send/append.
///
/// Two shapes: `let _ = recv.send(…) …;` (the whole statement is
/// scanned, so `let _ = tx.send(x);` and `let _ = self.q.try_send(m);`
/// both fire) and a bare `.ok();` whose receiver is a direct
/// send/append call (`tx.send(x).ok();`). `.ok()` feeding into
/// anything other than `;` — `if tx.send(x).ok().is_some()` — is a
/// *use* of the value and stays legal.
fn e1_discarded_results(
    tokens: &[Token],
    code: &[usize],
    emit: &mut impl FnMut(Rule, u32, String),
) {
    let tok = |k: usize| &tokens[code[k]];
    let n = code.len();
    let mut k = 0;
    while k < n {
        // Shape (a): `let _ = … .M(…) … ;`
        if tok(k).is_ident("let")
            && k + 2 < n
            && tok(k + 1).is_ident("_")
            && tok(k + 2).is_punct('=')
        {
            let let_line = tok(k).line;
            let mut j = k + 3;
            let mut depth = 0usize;
            let mut dropped: Option<String> = None;
            while j < n {
                let t = tok(j);
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                } else if t.is_punct(';') && depth == 0 {
                    break;
                } else if t.kind == TokenKind::Ident
                    && E1_METHODS.contains(&t.text.as_str())
                    && j > 0
                    && tok(j - 1).is_punct('.')
                    && j + 1 < n
                    && tok(j + 1).is_punct('(')
                {
                    dropped.get_or_insert(t.text.clone());
                }
                j += 1;
            }
            if let Some(m) = dropped {
                emit(
                    Rule::E1,
                    let_line,
                    format!(
                        "`let _ =` discards the Result of `.{m}(…)`; handle the error or waive with dasp::allow(E1)"
                    ),
                );
            }
            k = j + 1;
            continue;
        }
        // Shape (b): `….M(…).ok();`
        if tok(k).is_ident("ok")
            && k >= 2
            && tok(k - 1).is_punct('.')
            && k + 2 < n
            && tok(k + 1).is_punct('(')
            && tok(k + 2).is_punct(')')
            && k + 3 < n
            && tok(k + 3).is_punct(';')
        {
            // Walk back over the producing call: `) . ok` — match the
            // `(` of that call, then require `.M` right before it.
            if tok(k - 2).is_punct(')') {
                let mut depth = 0usize;
                let mut open = None;
                for b in (0..=k - 2).rev() {
                    if tok(b).is_punct(')') {
                        depth += 1;
                    } else if tok(b).is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            open = Some(b);
                            break;
                        }
                    }
                }
                if let Some(open) = open {
                    // Only a *bare* statement discards: `let ok = x.send(1).ok();`
                    // binds the Option, `return x.send(1).ok();` passes it on.
                    // Scan back to the statement boundary looking for a binder.
                    let mut bare = true;
                    let mut bdepth = 0usize;
                    let mut b = open.saturating_sub(1);
                    while b > 0 {
                        b -= 1;
                        let t = tok(b);
                        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                            bdepth += 1;
                        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                            if bdepth == 0 {
                                break;
                            }
                            bdepth -= 1;
                        } else if bdepth == 0 && t.is_punct(';') {
                            break;
                        } else if bdepth == 0
                            && (t.is_punct('=')
                                || t.is_ident("let")
                                || t.is_ident("return")
                                || t.is_ident("match"))
                        {
                            bare = false;
                            break;
                        }
                    }
                    if bare
                        && open >= 2
                        && tok(open - 1).kind == TokenKind::Ident
                        && E1_METHODS.contains(&tok(open - 1).text.as_str())
                        && tok(open - 2).is_punct('.')
                    {
                        emit(
                            Rule::E1,
                            tok(k).line,
                            format!(
                                "bare `.ok();` discards the Result of `.{}(…)`; handle the error or waive with dasp::allow(E1)",
                                tok(open - 1).text
                            ),
                        );
                    }
                }
            }
        }
        k += 1;
    }
}

/// U1: every `unsafe` needs a `// SAFETY:` comment on or above it.
fn u1_unsafe(tokens: &[Token], code: &[usize], emit: &mut impl FnMut(Rule, u32, String)) {
    for &i in code {
        let t = &tokens[i];
        if t.is_ident("unsafe") {
            emit(
                Rule::U1,
                t.line,
                "`unsafe` without a `// SAFETY:` comment justifying the invariant".to_string(),
            );
        }
    }
}
