//! Rule **B1** — no blocking on reactor paths.
//!
//! The PR-7 transport runs every connection on a poll-based shard loop:
//! one thread ticks accept, read, dispatch, and flush for all of its
//! connections. A single blocking call anywhere on that path — an
//! fsync, a durable WAL append, a write-capable engine lock, a sleep,
//! an unbounded channel send, or straight blocking I/O — stalls every
//! connection on the shard, which is exactly the availability failure
//! the paper's provider model cannot afford (§V-B).
//!
//! The rule walks the call graph from the reactor entry points (the
//! `Shard` tick/read/flush methods and `Conn` helpers in `reactor.rs`,
//! plus the `FrameDecoder` feed methods in `wire.rs`) and reports every
//! blocking operation reachable from them, with the witness chain in
//! the message like P3's. Traversal stops at the `vendor/` boundary:
//! the vendored channel internals are the runtime the reactor links
//! against, so blocking facts are classified at the first-party call
//! site by name instead.
//!
//! Sanctioned sinks (never reported): `try_send` / `try_recv` /
//! `recv_timeout` / `send_timeout` / `wait_timeout` (bounded by
//! construction), `RwLock::read` (shared, held briefly), and
//! `read`/`write` calls inside a fn whose body handles
//! `WouldBlock` (the nonblocking-I/O idiom the reactor is built on).

use crate::callgraph::{resolve_call, resolve_recv_types, CallGraph, Reach};
use crate::ir::{Ctx, CtxKind, FnId, FnItem, WorkspaceIr};
use std::collections::BTreeMap;

/// One B1 result, pre-waiver: one finding per (reachable fn, blocking
/// operation kind), anchored at the first site of that kind.
pub struct B1Hit {
    /// The fn containing the blocking call sites.
    pub fn_id: FnId,
    /// Human-readable blocking-operation kind.
    pub desc: &'static str,
    /// Lines of all unwaived sites of this kind (first anchors the
    /// finding).
    pub lines: Vec<u32>,
    /// Lines of waived sites of this kind.
    pub waived_lines: Vec<u32>,
    /// Root-to-fn call chain labels.
    pub path: Vec<String>,
}

/// The B1 entry points: every bodied method of `Shard` / `Conn` in a
/// `reactor.rs` and of `FrameDecoder` in a `wire.rs`, minus
/// constructors (which run before the loop starts). Scoping by file
/// *and* impl type keeps unrelated same-named types (the buffer pool
/// also has a `Shard`) out of the root set.
pub fn b1_roots(ws: &WorkspaceIr) -> Vec<FnId> {
    let mut roots = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        let file = &ws.files[f.file];
        if file.vendor || f.body.is_none() {
            continue;
        }
        let reactor = file.path.ends_with("reactor.rs")
            && matches!(f.impl_type.as_deref(), Some("Shard") | Some("Conn"));
        let decoder =
            file.path.ends_with("wire.rs") && f.impl_type.as_deref() == Some("FrameDecoder");
        if !(reactor || decoder) {
            continue;
        }
        if f.name == "new" || f.name == "default" || f.name.starts_with("with_") {
            continue;
        }
        roots.push(id);
    }
    roots
}

/// True when the fn body mentions `WouldBlock`: it is written against
/// the nonblocking-I/O contract, so its `read`/`write` calls return
/// instead of parking the shard.
fn wouldblock_aware(ws: &WorkspaceIr, f: &FnItem) -> bool {
    let Some((start, end)) = f.body else {
        return false;
    };
    let tokens = &ws.files[f.file].tokens;
    let end = end.min(tokens.len().saturating_sub(1));
    tokens[start..=end].iter().any(|t| t.is_ident("WouldBlock"))
}

/// Classify one call context as a blocking operation. `resolved` is the
/// call-graph resolution of the context: a call that resolves to a
/// bodied first-party fn is *not* classified by name (the traversal
/// walks into the body instead), except `append_durable`, whose whole
/// point is to block until fsync.
fn blocking_desc(
    ws: &WorkspaceIr,
    f: &FnItem,
    ctx: &Ctx,
    resolved: &[FnId],
    aware: bool,
) -> Option<&'static str> {
    if ctx.kind != CtxKind::Call {
        return None;
    }
    if ctx.callee == "append_durable" {
        return Some("durable WAL append");
    }
    if let Some(class) = crate::locks::lock_class(ws, f, ctx) {
        // RwLock::read is shared and held briefly; everything
        // write-capable excludes the whole engine while the shard spins.
        return class
            .write_capable()
            .then_some("write-capable lock acquisition");
    }
    let first_party_body = resolved
        .iter()
        .any(|&id| ws.fns[id].body.is_some() && !ws.files[ws.fns[id].file].vendor);
    if first_party_body {
        return None;
    }
    match ctx.callee.as_str() {
        "sleep" | "sleep_ms" | "park" => Some("thread sleep"),
        "sync_all" | "sync_data" | "fsync" => Some("fsync"),
        "wait" | "wait_while" => Some("condvar wait"),
        "send" if ctx.method => Some("unbounded channel send"),
        "recv" if ctx.method => Some("blocking channel recv"),
        // Dynamic dispatch through a bodyless first-party trait method:
        // the analyzer cannot see past it, and the inline (`workers=0`)
        // contract makes the handler's cost the shard's cost.
        "handle" | "call" => {
            (ctx.method && !resolved.is_empty()).then_some("dynamic service dispatch")
        }
        c if c.starts_with("call_") => {
            (ctx.method && !resolved.is_empty()).then_some("dynamic service dispatch")
        }
        // Blocking I/O on an external handle (TcpStream, File): only
        // when the receiver *was* typed — an untyped receiver would
        // drown the rule in `Vec::write`-style noise — and the fn does
        // not speak WouldBlock.
        "read" | "read_exact" | "read_to_end" | "write" | "write_all" => {
            (ctx.method && !aware && resolve_recv_types(ws, f, &ctx.recv).is_some())
                .then_some("blocking I/O")
        }
        _ => None,
    }
}

/// Run B1 over the workspace: every blocking operation inside a fn
/// reachable from [`b1_roots`], grouped per (fn, kind).
pub fn run_b1(ws: &WorkspaceIr, graph: &CallGraph) -> Vec<B1Hit> {
    let roots = b1_roots(ws);
    let mut edges = graph.edges.clone();
    for es in &mut edges {
        es.retain(|e| !ws.files[ws.fns[e.to].file].vendor);
    }
    let first_party = CallGraph { edges };
    let reach = Reach::from(&first_party, &roots);
    let mut hits = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !reach.reachable(id) || ws.files[f.file].vendor {
            continue;
        }
        let aware = wouldblock_aware(ws, f);
        let file = &ws.files[f.file];
        let mut by_desc: BTreeMap<&'static str, (Vec<u32>, Vec<u32>)> = BTreeMap::new();
        for ctx in &f.ctxs {
            if ctx.kind != CtxKind::Call {
                continue;
            }
            let resolved = resolve_call(ws, f, ctx);
            let Some(desc) = blocking_desc(ws, f, ctx, &resolved, aware) else {
                continue;
            };
            let waived = file
                .waivers
                .get(&ctx.line)
                .is_some_and(|rules| rules.contains("B1"));
            let entry = by_desc.entry(desc).or_default();
            if waived {
                entry.1.push(ctx.line);
            } else {
                entry.0.push(ctx.line);
            }
        }
        if by_desc.is_empty() {
            continue;
        }
        let path = reach.path(ws, id);
        for (desc, (lines, waived_lines)) in by_desc {
            hits.push(B1Hit {
                fn_id: id,
                desc,
                lines,
                waived_lines,
                path: path.clone(),
            });
        }
    }
    hits
}
