//! Item-level parser: from token streams to the [`crate::ir`] view.
//!
//! This is *not* a Rust parser — it recognizes exactly the item shapes
//! the interprocedural rules need (impl blocks, struct field lists, fn
//! signatures and bodies) and, inside bodies, the call-like contexts,
//! panic-capable constructs, and statement boundaries. Everything else
//! is skipped token by token, so arbitrary (even syntactically broken)
//! input degrades to "fewer items found", never a crash — the fuzz test
//! in `tests/interproc.rs` pins that.

use crate::ir::{Ctx, CtxKind, FileIr, FnItem, PanicKind, PanicSite, Param, Unit, WorkspaceIr};
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeMap;

/// Reserved words that can precede `(` / `[` without forming a call or
/// an indexing expression.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// True for identifiers that are Rust keywords (never call/index bases).
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Build the workspace IR from `(path, vendor, source)` triples. Files
/// are processed in the given order; callers sort paths first so the IR
/// (and everything derived from it) is deterministic.
pub fn build_workspace(inputs: Vec<(String, bool, String)>) -> WorkspaceIr {
    build_workspace_tokens(
        inputs
            .into_iter()
            .map(|(path, vendor, src)| (path, vendor, crate::lexer::lex(&src)))
            .collect(),
    )
}

/// [`build_workspace`] over already-lexed token streams, so a driver
/// that also runs the token rules lexes each file exactly once.
pub fn build_workspace_tokens(inputs: Vec<(String, bool, Vec<Token>)>) -> WorkspaceIr {
    let mut ir = WorkspaceIr {
        files: Vec::new(),
        fns: Vec::new(),
        structs: BTreeMap::new(),
    };
    for (path, vendor, tokens) in inputs {
        let test_mask = crate::rules::test_mask(&tokens);
        let (waivers, _) = crate::rules::waivers(&tokens);
        let file_idx = ir.files.len();
        let raw = parse_items(&tokens, &test_mask);
        for s in raw.structs {
            ir.structs.entry(s.0).or_insert(s.1);
        }
        // Exclusion ranges: each fn's tokens minus any fn nested inside.
        let spans: Vec<(usize, usize)> = raw.fns.iter().map(|f| (f.fn_tok, f.item_end)).collect();
        for f in raw.fns {
            if f.item.is_test {
                continue;
            }
            let mut item = f.item;
            item.file = file_idx;
            if let Some((bs, be)) = item.body {
                let nested: Vec<(usize, usize)> = spans
                    .iter()
                    .copied()
                    .filter(|&(s, e)| s > bs && e <= be && (s, e) != (f.fn_tok, f.item_end))
                    .collect();
                let skip = |i: usize| test_mask[i] || nested.iter().any(|&(s, e)| s <= i && i <= e);
                item.ctxs = extract_ctxs(&tokens, bs, be, &skip);
                item.panics = extract_panics(&tokens, bs, be, &skip);
                item.units = compute_units(&tokens, bs, be, &skip);
            }
            ir.fns.push(item);
        }
        ir.files.push(FileIr {
            path,
            vendor,
            tokens,
            test_mask,
            waivers,
        });
    }
    crate::callgraph::annotate_locals(&mut ir);
    ir
}

/// A parsed fn plus the raw token extents needed for nesting exclusion.
struct RawFn {
    item: FnItem,
    /// Token index of the `fn` keyword.
    fn_tok: usize,
    /// Last token of the item (body `}` or the `;`).
    item_end: usize,
}

struct RawItems {
    fns: Vec<RawFn>,
    structs: Vec<(String, BTreeMap<String, Vec<String>>)>,
}

/// Index of the previous non-comment token before `i`, if any.
pub(crate) fn prev_nc(tokens: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&k| !tokens[k].is_comment())
}

/// Index of the next non-comment token at or after `i`, if any.
pub(crate) fn next_nc(tokens: &[Token], i: usize) -> Option<usize> {
    (i..tokens.len()).find(|&k| !tokens[k].is_comment())
}

/// Matching close bracket for the opener at `open` (raw indices),
/// saturating to the last token when unbalanced.
pub(crate) fn close_of(tokens: &[Token], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(oc) {
            depth += 1;
        } else if t.is_punct(cc) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Skip a balanced `<…>` group opening at `open`, tolerating `->`
/// (whose `>` closes nothing). Returns the index after the final `>`.
fn skip_angles_raw(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            let arrow = prev_nc(tokens, k).is_some_and(|p| tokens[p].is_punct('-'));
            if !arrow {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k + 1;
                }
            }
        }
        k += 1;
    }
    tokens.len()
}

/// First pass: find impl/trait scopes, struct layouts, and fn items.
fn parse_items(tokens: &[Token], test_mask: &[bool]) -> RawItems {
    let mut out = RawItems {
        fns: Vec::new(),
        structs: Vec::new(),
    };
    // (type name, scope close index)
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        while let Some(&(_, close)) = impl_stack.last() {
            if i > close {
                impl_stack.pop();
            } else {
                break;
            }
        }
        if t.is_ident("impl") && is_item_position(tokens, i) {
            if let Some((ty, open)) = parse_impl_header(tokens, i) {
                let close = close_of(tokens, open, '{', '}');
                impl_stack.push((ty, close));
                i = open + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_ident("trait") {
            // Treat a trait block like an impl scope named after the
            // trait, so default method bodies get a home.
            if let Some(name_i) = next_nc(tokens, i + 1) {
                if tokens[name_i].kind == TokenKind::Ident {
                    let name = tokens[name_i].text.clone();
                    let mut j = name_i + 1;
                    while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                        j += 1;
                    }
                    if j < tokens.len() && tokens[j].is_punct('{') {
                        let close = close_of(tokens, j, '{', '}');
                        impl_stack.push((name, close));
                        i = j + 1;
                        continue;
                    }
                }
            }
            i += 1;
            continue;
        }
        if t.is_ident("struct") {
            if let Some((name, fields, end)) = parse_struct(tokens, i) {
                out.structs.push((name, fields));
                i = end + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            if let Some(raw) = parse_fn(tokens, i, test_mask, impl_stack.last().map(|s| &s.0)) {
                let resume = match raw.item.body {
                    Some((bs, _)) => bs, // descend into the body: nested fns
                    None => raw.item_end + 1,
                };
                out.fns.push(raw);
                i = resume;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// `impl` in item position (not `-> impl Trait` / `&impl Trait`).
fn is_item_position(tokens: &[Token], i: usize) -> bool {
    match prev_nc(tokens, i) {
        None => true,
        Some(p) => {
            let t = &tokens[p];
            t.is_punct('}')
                || t.is_punct(';')
                || t.is_punct(']')
                || t.is_ident("unsafe")
                || t.is_ident("pub")
        }
    }
}

/// Parse `impl [<…>] Path [for Path] {` → (implementing type, `{` idx).
fn parse_impl_header(tokens: &[Token], impl_tok: usize) -> Option<(String, usize)> {
    let mut j = next_nc(tokens, impl_tok + 1)?;
    if tokens[j].is_punct('<') {
        j = skip_angles_raw(tokens, j);
    }
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut angle = 0usize;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_comment() {
            j += 1;
            continue;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = angle.saturating_sub(1);
        } else if t.is_punct('{') {
            let ty = if saw_for { after_for } else { last_ident };
            return ty.map(|ty| (ty, j));
        } else if t.is_punct(';') {
            return None;
        } else if angle == 0 && t.is_ident("for") {
            saw_for = true;
        } else if angle == 0 && t.is_ident("where") {
            // Type already collected; scan on to the `{`.
        } else if angle == 0 && t.kind == TokenKind::Ident && !is_keyword(&t.text) {
            if saw_for {
                if after_for.is_none()
                    || prev_nc(tokens, j).is_some_and(|p| tokens[p].is_punct(':'))
                {
                    after_for = Some(t.text.clone());
                }
            } else {
                last_ident = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Parse `struct Name …` → (name, field → type idents, item end idx).
fn parse_struct(
    tokens: &[Token],
    struct_tok: usize,
) -> Option<(String, BTreeMap<String, Vec<String>>, usize)> {
    let name_i = next_nc(tokens, struct_tok + 1)?;
    if tokens[name_i].kind != TokenKind::Ident {
        return None;
    }
    let name = tokens[name_i].text.clone();
    let mut j = next_nc(tokens, name_i + 1)?;
    if tokens[j].is_punct('<') {
        j = skip_angles_raw(tokens, j);
        j = next_nc(tokens, j)?;
    }
    let mut fields = BTreeMap::new();
    if tokens[j].is_punct(';') || tokens[j].is_punct('(') {
        // Unit or tuple struct: no named fields; skip to the `;`.
        let mut k = j;
        while k < tokens.len() && !tokens[k].is_punct(';') {
            k += 1;
        }
        return Some((name, fields, k));
    }
    if tokens[j].is_ident("where") {
        while j < tokens.len() && !tokens[j].is_punct('{') {
            j += 1;
        }
    }
    if !tokens.get(j)?.is_punct('{') {
        return None;
    }
    let close = close_of(tokens, j, '{', '}');
    // Fields: `[attrs] [pub[(…)]] name : Type ,`
    let mut k = j + 1;
    while k < close {
        let t = &tokens[k];
        if t.is_comment() || t.is_punct(',') {
            k += 1;
            continue;
        }
        if t.is_punct('#') {
            if let Some(open) = next_nc(tokens, k + 1) {
                if tokens[open].is_punct('[') {
                    k = close_of(tokens, open, '[', ']') + 1;
                    continue;
                }
            }
            k += 1;
            continue;
        }
        if t.is_ident("pub") {
            k += 1;
            if let Some(p) = next_nc(tokens, k) {
                if tokens[p].is_punct('(') {
                    k = close_of(tokens, p, '(', ')') + 1;
                }
            }
            continue;
        }
        if t.kind == TokenKind::Ident {
            let field = t.text.clone();
            let colon = next_nc(tokens, k + 1);
            if colon.is_some_and(|c| tokens[c].is_punct(':')) {
                // Type tokens up to the field-separating comma.
                let mut ty = Vec::new();
                let mut d_par = 0i32;
                let mut d_ang = 0i32;
                let mut m = colon.unwrap_or(k) + 1;
                while m < close {
                    let tt = &tokens[m];
                    if tt.is_punct('(') || tt.is_punct('[') {
                        d_par += 1;
                    } else if tt.is_punct(')') || tt.is_punct(']') {
                        d_par -= 1;
                    } else if tt.is_punct('<') {
                        d_ang += 1;
                    } else if tt.is_punct('>') {
                        d_ang -= 1;
                    } else if tt.is_punct(',') && d_par == 0 && d_ang <= 0 {
                        break;
                    } else if tt.kind == TokenKind::Ident && !is_keyword(&tt.text) {
                        ty.push(tt.text.clone());
                    }
                    m += 1;
                }
                fields.insert(field, ty);
                k = m;
                continue;
            }
        }
        k += 1;
    }
    Some((name, fields, close))
}

/// Parse one fn item starting at the `fn` keyword.
fn parse_fn(
    tokens: &[Token],
    fn_tok: usize,
    test_mask: &[bool],
    impl_type: Option<&String>,
) -> Option<RawFn> {
    let name_i = next_nc(tokens, fn_tok + 1)?;
    if tokens[name_i].kind != TokenKind::Ident {
        return None; // `fn(…)` pointer type, not an item
    }
    let name = tokens[name_i].text.clone();
    let mut j = next_nc(tokens, name_i + 1)?;
    if tokens[j].is_punct('<') {
        j = skip_angles_raw(tokens, j);
        j = next_nc(tokens, j)?;
    }
    if !tokens[j].is_punct('(') {
        return None;
    }
    let params_close = close_of(tokens, j, '(', ')');
    let params = parse_params(tokens, j + 1, params_close, impl_type);

    // Return type + where clause: scan to the body `{` or decl `;`.
    let mut ret = Vec::new();
    let mut k = params_close + 1;
    let mut in_ret = false;
    let mut body = None;
    let mut item_end = tokens.len().saturating_sub(1);
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_comment() {
            k += 1;
            continue;
        }
        if t.is_punct('{') {
            let close = close_of(tokens, k, '{', '}');
            body = Some((k + 1, close.saturating_sub(1)));
            item_end = close;
            break;
        }
        if t.is_punct(';') {
            item_end = k;
            break;
        }
        if t.is_ident("where") {
            in_ret = false;
        } else if t.is_punct('>') && prev_nc(tokens, k).is_some_and(|p| tokens[p].is_punct('-')) {
            in_ret = true;
        } else if in_ret && t.kind == TokenKind::Ident && !is_keyword(&t.text) {
            ret.push(t.text.clone());
        }
        k += 1;
    }

    Some(RawFn {
        item: FnItem {
            file: 0,
            name,
            impl_type: impl_type.cloned(),
            is_pub: fn_visibility_is_pub(tokens, fn_tok),
            is_test: test_mask.get(fn_tok).copied().unwrap_or(false),
            line: tokens[fn_tok].line,
            params,
            ret,
            body,
            ctxs: Vec::new(),
            panics: Vec::new(),
            units: Vec::new(),
            locals: BTreeMap::new(),
        },
        fn_tok,
        item_end,
    })
}

/// True when the `fn` item carries a `pub` qualifier (any form).
fn fn_visibility_is_pub(tokens: &[Token], fn_tok: usize) -> bool {
    let mut k = fn_tok;
    loop {
        let Some(p) = prev_nc(tokens, k) else {
            return false;
        };
        let t = &tokens[p];
        if t.is_ident("const")
            || t.is_ident("unsafe")
            || t.is_ident("async")
            || t.is_ident("extern")
            || t.kind == TokenKind::Literal
        {
            k = p;
        } else if t.is_punct(')') {
            // Possibly the close of `pub(crate)`; walk to its `(`.
            let mut depth = 0usize;
            let mut m = p;
            loop {
                if tokens[m].is_punct(')') {
                    depth += 1;
                } else if tokens[m].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if m == 0 {
                    return false;
                }
                m -= 1;
            }
            k = m;
        } else {
            return t.is_ident("pub");
        }
    }
}

/// Parse the parameter list between `(` and `)` (exclusive indices).
fn parse_params(
    tokens: &[Token],
    start: usize,
    end: usize,
    impl_type: Option<&String>,
) -> Vec<Param> {
    let mut params = Vec::new();
    let mut piece: Vec<usize> = Vec::new();
    let mut d_par = 0i32;
    let mut d_ang = 0i32;
    let mut flush = |piece: &mut Vec<usize>| {
        if piece.is_empty() {
            return;
        }
        params.push(param_from(tokens, piece, impl_type));
        piece.clear();
    };
    let mut k = start;
    while k < end {
        let t = &tokens[k];
        if t.is_comment() {
            k += 1;
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            d_par += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            d_par -= 1;
        } else if t.is_punct('<') {
            d_ang += 1;
        } else if t.is_punct('>') {
            if !prev_nc(tokens, k).is_some_and(|p| tokens[p].is_punct('-')) {
                d_ang -= 1;
            }
        } else if t.is_punct(',') && d_par == 0 && d_ang <= 0 {
            flush(&mut piece);
            k += 1;
            continue;
        }
        piece.push(k);
        k += 1;
    }
    flush(&mut piece);
    params
}

/// One parameter from its token indices.
fn param_from(tokens: &[Token], piece: &[usize], impl_type: Option<&String>) -> Param {
    // Attributes (`#[…]`) are rare on params; strip a leading group.
    let mut idx = 0usize;
    if piece.first().is_some_and(|&i| tokens[i].is_punct('#')) {
        let mut depth = 0usize;
        for (n, &i) in piece.iter().enumerate() {
            if tokens[i].is_punct('[') {
                depth += 1;
            } else if tokens[i].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    idx = n + 1;
                    break;
                }
            }
        }
    }
    let rest = &piece[idx.min(piece.len())..];
    let colon = rest.iter().position(|&i| {
        tokens[i].is_punct(':') && !tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
    });
    let (pat, ty_toks) = match colon {
        Some(c) => (&rest[..c], &rest[c + 1..]),
        None => (rest, &rest[rest.len()..]),
    };
    let is_self = pat.iter().any(|&i| tokens[i].is_ident("self"));
    let name = if is_self {
        "self".to_string()
    } else {
        pat.iter()
            .map(|&i| &tokens[i])
            .find(|t| {
                t.kind == TokenKind::Ident
                    && !t.is_ident("mut")
                    && !t.is_ident("ref")
                    && !is_keyword(&t.text)
            })
            .map(|t| t.text.clone())
            .unwrap_or_else(|| "_".to_string())
    };
    let mut ty: Vec<String> = ty_toks
        .iter()
        .map(|&i| &tokens[i])
        .filter(|t| t.kind == TokenKind::Ident && !is_keyword(&t.text))
        .map(|t| t.text.clone())
        .collect();
    if is_self {
        if let Some(t) = impl_type {
            ty.push(t.clone());
        }
    }
    Param { name, ty }
}

/// Second pass over a body: call-like contexts.
fn extract_ctxs(
    tokens: &[Token],
    start: usize,
    end: usize,
    skip: &dyn Fn(usize) -> bool,
) -> Vec<Ctx> {
    let mut out = Vec::new();
    let mut i = start;
    while i <= end && i < tokens.len() {
        if tokens[i].is_comment() || skip(i) || tokens[i].kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = &tokens[i].text;
        let Some(j) = next_nc(tokens, i + 1) else {
            break;
        };
        // Macro call: `name!(…)` / `name![…]` / `name!{…}`.
        if tokens[j].is_punct('!') && name != "macro_rules" {
            if let Some(open) = next_nc(tokens, j + 1) {
                let (oc, cc) = match tokens[open].text.chars().next() {
                    Some('(') => ('(', ')'),
                    Some('[') => ('[', ']'),
                    Some('{') => ('{', '}'),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let close = close_of(tokens, open, oc, cc);
                out.push(Ctx {
                    kind: CtxKind::MacroCall,
                    callee: name.clone(),
                    path: Vec::new(),
                    recv: Vec::new(),
                    method: false,
                    line: tokens[i].line,
                    name_tok: i,
                    args_start: open + 1,
                    args_end: close,
                });
                i += 1;
                continue;
            }
        }
        // Function / method call: `name(…)`.
        if tokens[j].is_punct('(') && !is_keyword(name) {
            let is_def = prev_nc(tokens, i).is_some_and(|p| tokens[p].is_ident("fn"));
            if !is_def {
                let close = close_of(tokens, j, '(', ')');
                let (path, recv, method) = callee_context(tokens, i);
                out.push(Ctx {
                    kind: CtxKind::Call,
                    callee: name.clone(),
                    path,
                    recv,
                    method,
                    line: tokens[i].line,
                    name_tok: i,
                    args_start: j + 1,
                    args_end: close,
                });
            }
            i += 1;
            continue;
        }
        // Struct literal: `Type { … }` (uppercase head only, and not a
        // `match`/`for`/`if`/`while` scrutinee or loop body).
        if tokens[j].is_punct('{') && name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            let (path, _, _) = callee_context(tokens, i);
            let blocked = head_precedent(tokens, i, &path);
            if !blocked {
                let close = close_of(tokens, j, '{', '}');
                out.push(Ctx {
                    kind: CtxKind::StructLit,
                    callee: name.clone(),
                    path,
                    recv: Vec::new(),
                    method: false,
                    line: tokens[i].line,
                    name_tok: i,
                    args_start: j + 1,
                    args_end: close,
                });
            }
        }
        i += 1;
    }
    out
}

/// True when the path starting before name token `i` follows a keyword
/// that makes `Ident {` a block, not a struct literal.
fn head_precedent(tokens: &[Token], name_tok: usize, path: &[String]) -> bool {
    // Walk back over the `::` path to its first segment.
    let mut k = name_tok;
    for _ in 0..path.len() {
        let Some(c2) = prev_nc(tokens, k) else {
            return false;
        };
        let Some(c1) = prev_nc(tokens, c2) else {
            return false;
        };
        if !(tokens[c2].is_punct(':') && tokens[c1].is_punct(':')) {
            break;
        }
        let Some(seg) = prev_nc(tokens, c1) else {
            return false;
        };
        k = seg;
    }
    match prev_nc(tokens, k) {
        Some(p) => {
            let t = &tokens[p];
            t.is_ident("match")
                || t.is_ident("in")
                || t.is_ident("if")
                || t.is_ident("while")
                || t.is_ident("return")
                || t.is_ident("else")
        }
        None => false,
    }
}

/// Leading path segments, receiver chain, and method-ness of the call
/// whose name token is at `i`.
fn callee_context(tokens: &[Token], i: usize) -> (Vec<String>, Vec<String>, bool) {
    let mut path: Vec<String> = Vec::new();
    let mut k = i;
    // Collect `Seg::Seg::name` backwards.
    loop {
        let Some(c2) = prev_nc(tokens, k) else {
            return (path, Vec::new(), false);
        };
        if !tokens[c2].is_punct(':') {
            break;
        }
        let Some(c1) = prev_nc(tokens, c2) else {
            break;
        };
        if !tokens[c1].is_punct(':') {
            break;
        }
        let Some(seg) = prev_nc(tokens, c1) else {
            break;
        };
        if tokens[seg].kind == TokenKind::Ident {
            path.insert(0, tokens[seg].text.clone());
            k = seg;
        } else if tokens[seg].is_punct('>') {
            // `Type::<T>::name` turbofish on the path — give up on
            // segments but keep what we have.
            break;
        } else {
            break;
        }
    }
    // Method call: a `.` directly before the (path-less) name.
    if path.is_empty() {
        if let Some(p) = prev_nc(tokens, i) {
            if tokens[p].is_punct('.') {
                let mut recv: Vec<String> = Vec::new();
                let mut m = p;
                while let Some(r) = prev_nc(tokens, m) {
                    let t = &tokens[r];
                    if t.kind == TokenKind::Ident || t.kind == TokenKind::Number {
                        recv.insert(0, t.text.clone());
                        let Some(d) = prev_nc(tokens, r) else { break };
                        if tokens[d].is_punct('.') {
                            m = d;
                            continue;
                        }
                        break;
                    }
                    // `foo().bar(…)`, `x?[i].bar(…)`, … — complex base.
                    recv.insert(0, "<expr>".to_string());
                    break;
                }
                return (path, recv, true);
            }
        }
    }
    (path, Vec::new(), false)
}

/// Second pass over a body: panic-capable constructs for P3.
fn extract_panics(
    tokens: &[Token],
    start: usize,
    end: usize,
    skip: &dyn Fn(usize) -> bool,
) -> Vec<PanicSite> {
    let mut out = Vec::new();
    let mut i = start;
    while i <= end && i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() || skip(i) {
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Ident && (t.text == "unwrap" || t.text == "expect") {
            let is_method = prev_nc(tokens, i).is_some_and(|p| tokens[p].is_punct('.'))
                && next_nc(tokens, i + 1).is_some_and(|n| tokens[n].is_punct('('));
            if is_method {
                out.push(PanicSite {
                    kind: if t.text == "unwrap" {
                        PanicKind::Unwrap
                    } else {
                        PanicKind::Expect
                    },
                    line: t.line,
                    tok: i,
                });
            }
        } else if t.is_punct('[') {
            if let Some(p) = prev_nc(tokens, i) {
                let prev = &tokens[p];
                let base = match prev.kind {
                    TokenKind::Ident => !is_keyword(&prev.text),
                    TokenKind::Number => true,
                    TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                    _ => false,
                };
                if base && !full_range_index(tokens, i) {
                    out.push(PanicSite {
                        kind: PanicKind::Index,
                        line: t.line,
                        tok: i,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// `x[..]` — a full-range slice never panics; skip it.
fn full_range_index(tokens: &[Token], open: usize) -> bool {
    let close = close_of(tokens, open, '[', ']');
    let inner: Vec<&Token> = tokens[open + 1..close]
        .iter()
        .filter(|t| !t.is_comment())
        .collect();
    inner.len() == 2 && inner.iter().all(|t| t.is_punct('.'))
}

/// Statement-ish segmentation of a body (see [`Unit`]).
fn compute_units(
    tokens: &[Token],
    start: usize,
    end: usize,
    skip: &dyn Fn(usize) -> bool,
) -> Vec<Unit> {
    struct Level {
        is_match: bool,
        paren: i32,
    }
    let mut units = Vec::new();
    let mut levels: Vec<Level> = vec![Level {
        is_match: false,
        paren: 0,
    }];
    let mut cur: Option<(usize, u32)> = None; // (start tok, depth)
    let mut cur_has_match = false;
    let mut i = start;
    let finish = |units: &mut Vec<Unit>, cur: &mut Option<(usize, u32)>, last: usize| {
        if let Some((s, d)) = cur.take() {
            if last >= s {
                units.push(make_unit(tokens, s, last, d));
            }
        }
    };
    while i <= end && i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() || skip(i) {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            finish(&mut units, &mut cur, i.saturating_sub(1));
            levels.push(Level {
                is_match: cur_has_match,
                paren: 0,
            });
            cur_has_match = false;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            finish(&mut units, &mut cur, i.saturating_sub(1));
            if levels.len() > 1 {
                levels.pop();
            }
            cur_has_match = false;
            i += 1;
            continue;
        }
        let top = levels.last_mut().map(|l| (l.is_match, &mut l.paren));
        if let Some((is_match, paren)) = top {
            if t.is_punct('(') || t.is_punct('[') {
                *paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                *paren -= 1;
            } else if t.is_punct(';') && *paren == 0 {
                finish(&mut units, &mut cur, i);
                cur_has_match = false;
                i += 1;
                continue;
            } else if t.is_punct(',') && *paren == 0 && is_match {
                finish(&mut units, &mut cur, i.saturating_sub(1));
                cur_has_match = false;
                i += 1;
                continue;
            } else if t.is_punct('=')
                && *paren == 0
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('>'))
            {
                // Match-arm `=>`: the pattern is its own unit.
                finish(&mut units, &mut cur, i.saturating_sub(1));
                cur_has_match = false;
                i += 2;
                continue;
            }
        }
        if cur.is_none() {
            cur = Some((i, levels.len() as u32 - 1));
            cur_has_match = false;
        }
        if t.is_ident("match") {
            cur_has_match = true;
        }
        i += 1;
    }
    finish(
        &mut units,
        &mut cur,
        end.min(tokens.len().saturating_sub(1)),
    );
    units
}

/// Build one [`Unit`], detecting `let` bindings and deref-copy RHSes.
fn make_unit(tokens: &[Token], start: usize, end: usize, depth: u32) -> Unit {
    let nc: Vec<usize> = (start..=end).filter(|&i| !tokens[i].is_comment()).collect();
    let mut let_name = None;
    let mut pat_name = None;
    let mut let_ty = Vec::new();
    let mut rhs_start = None;
    let mut deref_rhs = false;
    // `let …` either opens the unit or follows a leading `if`/`while`
    // (a refutable-pattern binding: `if let Some(x) = …`).
    let mut k = 0usize;
    let refutable = nc
        .first()
        .is_some_and(|&i| tokens[i].is_ident("if") || tokens[i].is_ident("while"));
    if refutable {
        k += 1;
    }
    if nc.get(k).is_some_and(|&i| tokens[i].is_ident("let")) {
        k += 1;
        if nc.get(k).is_some_and(|&i| tokens[i].is_ident("mut")) {
            k += 1;
        }
        let name_at = |ix: usize| -> Option<String> {
            let &i = nc.get(ix)?;
            (tokens[i].kind == TokenKind::Ident && !is_keyword(&tokens[i].text))
                .then(|| tokens[i].text.clone())
        };
        // `Wrapper([mut] name)` — a one-ident refutable pattern
        // (`Some(x)`, `Ok(mut x)`); deeper patterns (`(a, b)`,
        // `Struct { .. }`) stay unnamed and are treated as temporaries.
        if nc.get(k + 1).is_some_and(|&i| tokens[i].is_punct('(')) {
            let mut m = k + 2;
            if nc.get(m).is_some_and(|&i| tokens[i].is_ident("mut")) {
                m += 1;
            }
            if nc.get(m + 1).is_some_and(|&i| tokens[i].is_punct(')')) {
                pat_name = name_at(m);
            }
        } else if let Some(name) = name_at(k) {
            if refutable {
                pat_name = Some(name);
            } else {
                let_name = Some(name);
                // Explicit `let name: Type = …` annotation (a lone `:`,
                // not a `::` path): collect idents up to the `=`.
                if nc.get(k + 1).is_some_and(|&i| {
                    tokens[i].is_punct(':')
                        && !nc.get(k + 2).is_some_and(|&n| tokens[n].is_punct(':'))
                }) {
                    for &i in &nc[k + 2..] {
                        let t = &tokens[i];
                        if t.is_punct('=') {
                            break;
                        }
                        if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
                            let_ty.push(t.text.clone());
                        }
                    }
                }
            }
        }
        // First top-level `=` that is not `==`, `=>`, `<=`, `>=`, `!=`.
        let mut d = 0i32;
        for (n, &i) in nc.iter().enumerate() {
            let t = &tokens[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                d += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                d -= 1;
            } else if d == 0 && t.is_punct('=') {
                let prev_bad = n > 0
                    && matches!(
                        tokens[nc[n - 1]].text.chars().next(),
                        Some('=' | '!' | '<' | '>')
                    );
                let next_bad = nc
                    .get(n + 1)
                    .is_some_and(|&x| tokens[x].is_punct('=') || tokens[x].is_punct('>'));
                if !prev_bad && !next_bad {
                    if let Some(&r) = nc.get(n + 1) {
                        rhs_start = Some(r);
                        deref_rhs = tokens[r].is_punct('*');
                    }
                    break;
                }
            }
        }
    }
    Unit {
        start,
        end,
        depth,
        let_name,
        pat_name,
        let_ty,
        rhs_start,
        deref_rhs,
    }
}
