//! CLI entry point: `dasp-lint [--root DIR] [--deny-all] [--quiet]`.
//!
//! Prints every unwaived finding as `path:line: RULE: message`. With
//! `--deny-all` (the CI gate) the process exits 1 when any unwaived
//! finding exists; without it the run is report-only and always exits 0
//! (unless the tree cannot be read).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("dasp-lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--deny-all" => deny_all = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "dasp-lint: secrecy-hygiene and panic-safety analyzer\n\n\
                     USAGE: dasp-lint [--root DIR] [--deny-all] [--quiet]\n\n\
                     --root DIR   workspace root to scan (default: .)\n\
                     --deny-all   exit 1 on any unwaived finding (CI gate)\n\
                     --quiet      suppress the summary line\n\n\
                     Rules: S1 S2 P1 P2 D1 U1 (see DESIGN.md §8).\n\
                     Waive a line with: // dasp::allow(RULE): reason"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dasp-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match dasp_lint::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dasp-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut violations = 0usize;
    for f in report.violations() {
        println!("{f}");
        violations += 1;
    }
    if !quiet {
        println!(
            "dasp-lint: {} files scanned, {} violation(s), {} waived",
            report.files_scanned,
            violations,
            report.waived_count()
        );
    }
    if deny_all && violations > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
