//! CLI entry point.
//!
//! ```text
//! dasp-lint [--root DIR] [--format text|json] [--baseline FILE]
//!           [--deny-all | --deny-new | --explain-new]
//!           [--write-baseline FILE] [--quiet] [--timing]
//! ```
//!
//! Text mode prints every unwaived finding as `path:line: RULE:
//! message`. JSON mode prints the full report (waived findings
//! included) to stdout and the human summary to stderr, so the report
//! can be piped or uploaded as a CI artifact. Findings are sorted by
//! (file, line, rule, message) in both modes.
//!
//! Gates: `--deny-all` exits 1 on any unwaived finding; `--deny-new`
//! exits 1 only on unwaived findings absent from the baseline file
//! (`--baseline`, default `lint-baseline.json` under the root);
//! `--explain-new` is `--deny-new` plus, on failure, a unified diff of
//! current findings against the baseline — new entries prefixed `+`,
//! stale ones `-` — so a red CI run explains itself.
//! `--write-baseline` records the current unwaived findings and exits.
//! `--timing` prints the per-phase wall-clock breakdown (lex, token
//! rules, parse, interprocedural, total) to stderr; CI asserts the
//! total stays under its budget.

use dasp_lint::report::Baseline;
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut deny_new = false;
    let mut explain_new = false;
    let mut quiet = false;
    let mut timing = false;
    let mut format = Format::Text;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root needs a directory argument"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage_error("--format needs `text` or `json`"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage_error("--baseline needs a file argument"),
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => return usage_error("--write-baseline needs a file argument"),
            },
            "--deny-all" => deny_all = true,
            "--deny-new" => deny_new = true,
            "--explain-new" => {
                deny_new = true;
                explain_new = true;
            }
            "--quiet" => quiet = true,
            "--timing" => timing = true,
            "--help" | "-h" => {
                println!(
                    "dasp-lint: secrecy-hygiene, lock-discipline and panic-safety analyzer\n\n\
                     USAGE: dasp-lint [--root DIR] [--format text|json] [--baseline FILE]\n\
                     \x20                [--deny-all | --deny-new] [--write-baseline FILE]\n\
                     \x20                [--quiet] [--timing]\n\n\
                     --root DIR             workspace root to scan (default: .)\n\
                     --format text|json     output format (default: text; json goes to stdout)\n\
                     --baseline FILE        known-findings file (default: <root>/lint-baseline.json)\n\
                     --deny-all             exit 1 on any unwaived finding\n\
                     --deny-new             exit 1 on unwaived findings not in the baseline\n\
                     --explain-new          --deny-new, plus a unified diff of findings vs\n\
                     \x20                      baseline on failure (new and stale entries)\n\
                     --write-baseline FILE  record current unwaived findings and exit\n\
                     --quiet                suppress the summary line\n\
                     --timing               print the per-phase wall-clock breakdown to stderr\n\n\
                     Token rules: S1 S2 P1 P2 D1 U1 E1; interprocedural: T1 L1 P3 B1 W1 C1 C2\n\
                     (DESIGN.md §8).\n\
                     vendor/ is scanned with the relaxed set (U1 + P3).\n\
                     Waive a line with: // dasp::allow(RULE): reason"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dasp-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let (report, phases) = match dasp_lint::analyze_workspace_timed(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dasp-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if timing {
        eprintln!(
            "dasp-lint timing: lex {:.1?}, token rules {:.1?}, parse {:.1?}, interproc {:.1?}, total {:.1?}",
            phases.lex, phases.token_rules, phases.parse, phases.interproc, phases.total
        );
    }

    if let Some(path) = write_baseline {
        let baseline = Baseline::from_report(&report);
        if let Err(e) = std::fs::write(&path, baseline.to_json()) {
            eprintln!("dasp-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "dasp-lint: wrote {} baseline entr{} to {}",
            baseline.len(),
            if baseline.len() == 1 { "y" } else { "ies" },
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if deny_new {
        let path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));
        match std::fs::read_to_string(&path) {
            Ok(src) => match Baseline::parse(&src) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("dasp-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("dasp-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    match format {
        Format::Text => {
            for f in report.violations() {
                println!("{f}");
            }
        }
        Format::Json => {
            print!("{}", dasp_lint::report::to_json(&report));
        }
    }

    let violations = report.violations().count();
    if !quiet {
        eprintln!(
            "dasp-lint: {} files scanned, {} violation(s), {} waived",
            report.files_scanned,
            violations,
            report.waived_count()
        );
    }

    if let Some(baseline) = &baseline {
        let new = baseline.new_findings(&report);
        if !new.is_empty() {
            eprintln!(
                "dasp-lint: {} new finding(s) not in the baseline ({} known):",
                new.len(),
                baseline.len()
            );
            for f in &new {
                eprintln!("  {f}");
            }
            if explain_new {
                eprint!("{}", baseline.explain_new(&report));
            }
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!(
                "dasp-lint: no new findings ({} known in baseline)",
                baseline.len()
            );
        }
    }
    if deny_all && violations > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("dasp-lint: {msg}");
    ExitCode::from(2)
}
