//! A hand-rolled token-level lexer for Rust source.
//!
//! The analyzer does not need a parse tree: every rule in [`crate::rules`]
//! is expressible over a flat token stream, provided the lexer gets the
//! hard lexical cases right — nested block comments, raw and byte string
//! literals, and the `'a` lifetime vs `'a'` char-literal ambiguity.
//! Getting those wrong would make rules fire inside string literals
//! (every mention of `unwrap` in a doc string would become a finding),
//! so the lexer is the load-bearing half of the tool.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `EvalPoints`, …).
    Ident,
    /// Lifetime such as `'a` (not a char literal).
    Lifetime,
    /// String, raw-string, byte-string or char literal.
    Literal,
    /// Numeric literal.
    Number,
    /// Single punctuation character (`.`, `!`, `{`, …).
    Punct,
    /// `// …` comment, text includes the slashes.
    LineComment,
    /// `/* … */` comment (possibly nested), text includes delimiters.
    BlockComment,
}

/// One lexeme with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// Raw text of the lexeme.
    pub text: String,
    /// 1-based line where the lexeme starts.
    pub line: u32,
}

impl Token {
    /// True for a punctuation token equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }

    /// True for an identifier token equal to `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenize `src`. Unterminated constructs are closed at end of input
/// rather than reported: the analyzer lints code that already compiles,
/// so graceful recovery beats diagnostics here.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' => match self.peek(1) {
                    Some('/') => self.line_comment(),
                    Some('*') => self.block_comment(),
                    _ => self.punct(),
                },
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                'r' | 'b' if self.starts_raw_or_byte() => self.raw_or_byte_literal(),
                c if c.is_ascii_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, start_line: u32) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.push(Token {
            kind,
            text,
            line: start_line,
        });
    }

    fn punct(&mut self) {
        let start = self.pos;
        self.pos += 1;
        self.push(TokenKind::Punct, start, self.line);
    }

    fn line_comment(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, start, start_line);
    }

    fn block_comment(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        self.pos += 2;
        let mut depth = 1usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.pos += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        self.push(TokenKind::BlockComment, start, start_line);
    }

    fn string_literal(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.pos += 2,
                '"' => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    if c == '\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
            }
        }
        self.push(TokenKind::Literal, start, start_line);
    }

    /// Disambiguate `'a'` / `'\n'` (char literals) from `'a` / `'static`
    /// (lifetimes): after `'ident`, a closing quote makes it a char.
    fn char_or_lifetime(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        if self.peek(1) == Some('\\') {
            // Escaped char literal: '\n', '\'', '\u{…}'.
            self.pos += 2;
            while let Some(c) = self.peek(0) {
                self.pos += 1;
                if c == '\'' {
                    break;
                }
            }
            self.push(TokenKind::Literal, start, start_line);
            return;
        }
        // Scan the identifier-ish run after the quote.
        let mut ahead = 1;
        while let Some(c) = self.peek(ahead) {
            if c.is_ascii_alphanumeric() || c == '_' {
                ahead += 1;
            } else {
                break;
            }
        }
        if self.peek(ahead) == Some('\'') && ahead >= 2 {
            // 'x' with x a single char is also handled here (ahead == 2).
            self.pos += ahead + 1;
            self.push(TokenKind::Literal, start, start_line);
        } else if self.peek(ahead) == Some('\'') && ahead == 1 {
            // '' — empty char literal; treat as literal to stay lossless.
            self.pos += 2;
            self.push(TokenKind::Literal, start, start_line);
        } else if ahead == 2 && self.peek(2) == Some('\'') {
            self.pos += 3;
            self.push(TokenKind::Literal, start, start_line);
        } else {
            // Lifetime: consume 'ident with no closing quote.
            self.pos += ahead.max(1);
            self.push(TokenKind::Lifetime, start, start_line);
        }
    }

    /// True when the current `r`/`b` starts a raw string (`r"`, `r#"`),
    /// byte string (`b"`, `br"`, `br#"`) or byte char (`b'`).
    fn starts_raw_or_byte(&self) -> bool {
        let mut i = 1;
        match self.peek(0) {
            Some('b') => {
                if self.peek(1) == Some('\'') {
                    return true;
                }
                if self.peek(1) == Some('r') {
                    i = 2;
                }
            }
            Some('r') => {}
            _ => return false,
        }
        loop {
            match self.peek(i) {
                Some('#') => i += 1,
                Some('"') => return true,
                _ => return false,
            }
        }
    }

    fn raw_or_byte_literal(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        if self.peek(0) == Some('b') && self.peek(1) == Some('\'') {
            self.pos += 1;
            // Reuse char handling for b'x'.
            if self.peek(1) == Some('\\') {
                self.pos += 2;
                while let Some(c) = self.peek(0) {
                    self.pos += 1;
                    if c == '\'' {
                        break;
                    }
                }
            } else {
                self.pos += 3; // b, 'x, '
            }
            self.push(TokenKind::Literal, start, start_line);
            return;
        }
        // Skip the r/b/br prefix.
        while matches!(self.peek(0), Some('r') | Some('b')) {
            self.pos += 1;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some('"') {
            // `r#ident` raw identifier: rewind over the hashes and emit
            // the whole thing as an identifier.
            self.pos = start;
            self.ident_raw();
            return;
        }
        self.pos += 1;
        if hashes == 0 {
            // r"…" — plain raw string, no escapes, ends at first quote.
            while let Some(c) = self.peek(0) {
                if c == '\n' {
                    self.line += 1;
                }
                self.pos += 1;
                if c == '"' {
                    break;
                }
            }
        } else {
            // r#"…"# — ends at `"` followed by `hashes` hash marks.
            while let Some(c) = self.peek(0) {
                if c == '"' && (1..=hashes).all(|k| self.peek(k) == Some('#')) {
                    self.pos += 1 + hashes;
                    break;
                }
                if c == '\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        self.push(TokenKind::Literal, start, start_line);
    }

    fn ident(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        // `r#type`-style raw identifier: absorb the `r#` prefix.
        if self.peek(0) == Some('r')
            && self.peek(1) == Some('#')
            && self
                .peek(2)
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        {
            self.pos += 2;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, start, start_line);
    }

    /// `r#type`-style raw identifier (lexed when `r#…` is not a string).
    fn ident_raw(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        self.pos += 1; // r or b
        while self.peek(0) == Some('#') {
            self.pos += 1;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, start, start_line);
    }

    fn number(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        while let Some(c) = self.peek(0) {
            // Deliberately excludes `.` so ranges (`0..n`) lex as
            // number-punct-punct-ident; the rules never inspect floats.
            if c.is_ascii_alphanumeric() || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, start, start_line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn main() { x.unwrap(); }");
        assert!(toks.contains(&(TokenKind::Ident, "unwrap".into())));
        assert!(toks.contains(&(TokenKind::Punct, ".".into())));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = lex(r#"let s = "call .unwrap() here";"#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r###"let s = r#"quote " inside"#; x"###);
        assert!(toks.iter().any(|t| t.is_ident("x")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            1
        );
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = lex(r#"let a = b"bytes"; let c = b'x';"#);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            2
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still comment */ real");
        assert!(toks.iter().any(|t| t.is_ident("real")));
        assert_eq!(
            toks.iter().filter(|t| t.is_comment()).count(),
            1,
            "nested block comment lexes as one token"
        );
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; }");
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'a'"));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = lex(r"let c = '\n'; let q = '\''; ident");
        assert!(toks.iter().any(|t| t.is_ident("ident")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            2
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multiline_string_advances_line_counter() {
        let toks = lex("let s = \"one\ntwo\";\nafter");
        let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn raw_identifier() {
        let toks = lex("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "r#type"));
    }
}
