//! Intermediate representation for the workspace analyzer.
//!
//! The token-level rules (S1–U1) see one file at a time; the
//! interprocedural rules (T1, L1, P3) need a workspace-wide view: which
//! functions exist, what they call, which locks they take, where their
//! bodies start and end. [`crate::parser`] extracts that view from the
//! lexed token streams into the types here — deliberately *syntactic*
//! (names and token spans, no type inference) so the analyzer stays
//! dependency-free and never executes anything.

use crate::lexer::Token;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Index of a [`FnItem`] within [`WorkspaceIr::fns`].
pub type FnId = usize;

/// One analyzed source file: its tokens plus the per-line waiver map.
pub struct FileIr {
    /// `/`-separated path relative to the analysis root.
    pub path: String,
    /// True for files under `vendor/` (relaxed ruleset: U1 + P3 only).
    pub vendor: bool,
    /// The lexed token stream (comments included; rules skip them).
    pub tokens: Vec<Token>,
    /// True for tokens under `#[cfg(test)]` / `#[test]` items.
    pub test_mask: Vec<bool>,
    /// line → rule names waived by `dasp::allow(RULE)` on/above it.
    pub waivers: HashMap<u32, BTreeSet<String>>,
}

/// One function parameter: its binding name and the identifiers
/// appearing in its type (`points: &EvalPoints` → name `points`, type
/// idents `["EvalPoints"]`).
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name; `self` for receivers, `_` for complex patterns.
    pub name: String,
    /// Identifiers in the declared type, in order.
    pub ty: Vec<String>,
}

/// What a [`Ctx`] is: a function/method call, a macro invocation, or a
/// struct-literal expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtxKind {
    /// `foo(…)`, `Type::foo(…)`, `recv.foo(…)`.
    Call,
    /// `foo!(…)` (any delimiter).
    MacroCall,
    /// `Type { … }` / `Enum::Variant { … }`.
    StructLit,
}

/// A call-like context inside a function body. Spans are token indices
/// into the owning file's token stream.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Context kind.
    pub kind: CtxKind,
    /// Callee / macro / struct name (last path segment).
    pub callee: String,
    /// Leading `::` path segments (`Request::Insert` → `["Request"]`).
    pub path: Vec<String>,
    /// Receiver chain for method calls (`self.pool.get(…)` →
    /// `["self", "pool"]`); `["<expr>"]` when the receiver is not a
    /// simple field chain; empty for non-method calls.
    pub recv: Vec<String>,
    /// True for `recv.name(…)` method-call syntax.
    pub method: bool,
    /// 1-based line of the callee name token.
    pub line: u32,
    /// Token index of the callee name.
    pub name_tok: usize,
    /// Token range of the arguments, *exclusive* of the delimiters:
    /// `(args_start..args_end)` indexes the tokens between `(` and `)`.
    pub args_start: usize,
    /// End of the argument span (index of the closing delimiter).
    pub args_end: usize,
}

impl Ctx {
    /// True when token index `i` lies inside this context's argument
    /// (or struct-literal body) span.
    pub fn contains(&self, i: usize) -> bool {
        self.args_start <= i && i < self.args_end
    }
}

/// Why a token can panic (rule P3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// `x[i]` indexing without `get`.
    Index,
}

impl PanicKind {
    /// Human-readable construct name for messages.
    pub fn describe(self) -> &'static str {
        match self {
            PanicKind::Unwrap => ".unwrap()",
            PanicKind::Expect => ".expect(…)",
            PanicKind::Index => "indexing without get",
        }
    }
}

/// One panic-capable construct inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Construct kind.
    pub kind: PanicKind,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the construct.
    pub tok: usize,
}

/// A statement-ish unit of a function body: split at `;`, braces, and
/// match-arm commas, so guard lifetimes and `let` bindings can be
/// reasoned about without a full expression tree.
#[derive(Debug, Clone)]
pub struct Unit {
    /// First token index (inclusive).
    pub start: usize,
    /// Last token index (inclusive).
    pub end: usize,
    /// Brace depth at `start`, relative to the body's opening brace.
    pub depth: u32,
    /// `Some(name)` for `let name = …;` / `let mut name = …;` units.
    pub let_name: Option<String>,
    /// Binding introduced by a refutable-pattern `let`: `if let
    /// Some(x) = …`, `while let Ok(x) = …`, `let Some(x) = … else`.
    /// Kept separate from [`Unit::let_name`] so the L1 guard-promotion
    /// logic (which models plain `let g = x.lock();` only) is
    /// unaffected.
    pub pat_name: Option<String>,
    /// Identifiers of an explicit `let name: Type = …` annotation.
    pub let_ty: Vec<String>,
    /// Token index just after the `=` of a `let`, when present.
    pub rhs_start: Option<usize>,
    /// True when the `let` RHS begins with `*` (a deref copy: the
    /// temporary guard dies at the end of the statement).
    pub deref_rhs: bool,
}

/// One function (or method) item.
pub struct FnItem {
    /// Index of the owning file in [`WorkspaceIr::files`].
    pub file: usize,
    /// Function name.
    pub name: String,
    /// `Some(Type)` for methods in an `impl Type` / `impl Trait for
    /// Type` block.
    pub impl_type: Option<String>,
    /// True for `pub fn` (any visibility qualifier).
    pub is_pub: bool,
    /// True when the item sits under `#[cfg(test)]` / `#[test]`.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared parameters in order.
    pub params: Vec<Param>,
    /// Identifiers appearing in the return type.
    pub ret: Vec<String>,
    /// Body token span `(after `{`, before `}`)`; `None` for
    /// declarations without a body.
    pub body: Option<(usize, usize)>,
    /// Call-like contexts in the body, ordered by start token.
    pub ctxs: Vec<Ctx>,
    /// Panic-capable constructs in the body.
    pub panics: Vec<PanicSite>,
    /// Statement-ish units of the body.
    pub units: Vec<Unit>,
    /// Local binding name → type identifiers, from `let` statements
    /// whose RHS (or explicit annotation) could be typed syntactically.
    /// Filled by [`crate::callgraph::annotate_locals`] after the whole
    /// workspace is parsed (typing needs the struct table and other
    /// fns' return types).
    pub locals: BTreeMap<String, Vec<String>>,
}

impl FnItem {
    /// `Type::name` for methods, `name` otherwise.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The whole-workspace view: every file, function, and struct layout.
pub struct WorkspaceIr {
    /// All analyzed files.
    pub files: Vec<FileIr>,
    /// All non-test functions, in file order.
    pub fns: Vec<FnItem>,
    /// struct name → field name → type identifiers. Used to resolve
    /// `self.field.method(…)` receivers to the field's declared type.
    pub structs: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

impl WorkspaceIr {
    /// Functions defined in `impl ty` blocks with the given name.
    pub fn method(&self, ty: &str, name: &str) -> Option<FnId> {
        self.fns
            .iter()
            .position(|f| f.name == name && f.impl_type.as_deref() == Some(ty))
    }

    /// All `FnId`s whose function has the given name (any impl type).
    pub fn by_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = FnId> + 'a {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.name == name)
            .map(|(i, _)| i)
    }

    /// A short `file:line`-free label for path messages: `Type::name`
    /// or `name`, stable across edits.
    pub fn label(&self, id: FnId) -> String {
        self.fns[id].qualified()
    }
}
