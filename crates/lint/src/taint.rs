//! Rule **T1** — interprocedural secret taint.
//!
//! The lattice is deliberately small (§III of the paper: the evaluation
//! points and per-domain keys are the only secret):
//!
//! * **Sources** — `.expose()` / `.expose_mut()` / `.expose_points()`
//!   method calls, any `reconstruct*` call (its output is plaintext),
//!   and calls to workspace fns whose return value is secret-derived
//!   (computed as a fixpoint summary).
//! * **Sanitizers** — the sanctioned share-encoding and basis
//!   functions in dasp-sss / dasp-client / dasp-crypto
//!   ([`SANITIZERS`]), re-wrapping constructors of secret types, and
//!   value-free consumers (`len`, `is_empty`, `count`).
//! * **Sinks** — format/log macros, `WireWriter` `write_*` methods,
//!   `Request` construction, and provider RPC (`call*`, `send*`).
//!
//! Propagation is per-statement inside a fn (through `let` bindings and
//! assignments) and per-parameter across fns: each fn gets a fixpoint
//! summary of which parameters flow to a sink or to the return value,
//! so a taint can be traced through helper layers; findings carry the
//! full chain.

use crate::callgraph::resolve_call;
use crate::ir::{Ctx, CtxKind, FnId, FnItem, WorkspaceIr};
use std::collections::BTreeMap;

/// Sanctioned share-encoding / key-derivation / basis functions: a
/// secret value passed into (or chained through) one of these has been
/// converted to shares or digests and stops being secret.
const SANITIZERS: &[&str] = &[
    "basis_for",
    "deterministic_poly",
    "deterministic_poly_with",
    "deterministic_share",
    "derive",
    "encode_chunk",
    "encode_plan",
    "encode_rows",
    "hash_u64",
    "hmac_sha256",
    "interpolation_basis",
    "range_for",
    "share",
    "share_batch",
    "share_for",
    "split_deterministic",
    "split_deterministic_batch",
    "split_predicate",
    "split_random",
    "split_random_batch",
];

/// Value-free chain consumers: `secret.expose().len()` leaks a length,
/// not the secret.
const CONSUMERS: &[&str] = &["count", "is_empty", "len"];

/// One T1 result, pre-waiver.
pub struct T1Hit {
    /// Fn the leak occurs in.
    pub fn_id: FnId,
    /// 1-based line of the sink.
    pub line: u32,
    /// Line-free message with origin, sink, and call chain.
    pub message: String,
}

/// A sink reached during one fn walk.
struct SinkReach {
    line: u32,
    /// Where the tainted value came from ("expose()", "parameter `x`").
    origin: String,
    /// What it reached ("println! macro", ".write_u64() wire write").
    sink: String,
    /// Intermediate fn labels (callee-side) for interprocedural flows.
    via: Vec<String>,
}

/// A parameter-to-sink summary entry: the sink description and the
/// callee-side chain that reaches it.
type ParamSink = Option<(String, Vec<String>)>;

/// Per-fn interprocedural summaries, fixpointed over the call graph.
struct Summaries {
    /// `param_sink[f][k]` — parameter `k` of `f` flows to a sink.
    param_sink: Vec<Vec<ParamSink>>,
    /// `param_ret[f][k]` — parameter `k` taints the return value.
    param_ret: Vec<Vec<bool>>,
    /// `fresh_ret[f]` — `f` returns a secret-derived value.
    fresh_ret: Vec<bool>,
}

/// `Some(desc)` when the context is a taint source.
fn source_desc(ctx: &Ctx) -> Option<String> {
    if ctx.kind != CtxKind::Call {
        return None;
    }
    let c = ctx.callee.as_str();
    if ctx.method && (c == "expose" || c == "expose_mut" || c == "expose_points") {
        return Some(format!("{c}()"));
    }
    if c.starts_with("reconstruct") {
        return Some(format!("{c}()"));
    }
    None
}

/// True when the context consumes (sanitizes) values passed to it.
fn is_sanitizer(ctx: &Ctx, secret_types: &[&str]) -> bool {
    match ctx.kind {
        CtxKind::Call => {
            let c = ctx.callee.as_str();
            SANITIZERS.contains(&c)
                || CONSUMERS.contains(&c)
                || (c == "new"
                    && ctx
                        .path
                        .last()
                        .is_some_and(|t| secret_types.contains(&t.as_str())))
        }
        _ => false,
    }
}

/// `Some(desc)` when the context is a sink.
fn sink_desc(ctx: &Ctx) -> Option<String> {
    match ctx.kind {
        CtxKind::MacroCall => {
            if crate::rules::FMT_MACROS.contains(&ctx.callee.as_str()) {
                Some(format!("{}! macro", ctx.callee))
            } else {
                None
            }
        }
        CtxKind::StructLit => {
            let head = ctx.path.first().map(String::as_str).unwrap_or("");
            if head == "Request" || ctx.callee == "Request" {
                Some("Request construction".to_string())
            } else {
                None
            }
        }
        CtxKind::Call => {
            let c = ctx.callee.as_str();
            if ctx.method && c.starts_with("write_") {
                Some(format!(".{c}() wire write"))
            } else if ctx.path.first().is_some_and(|p| p == "Request") {
                Some("Request construction".to_string())
            } else if ctx.method
                && (c == "call" || c.starts_with("call_") || c == "send" || c == "send_timeout")
            {
                Some(format!(".{c}() provider rpc"))
            } else {
                None
            }
        }
    }
}

/// Top-level argument slices of a call/struct-literal span.
fn arg_slices(ws: &WorkspaceIr, f: &FnItem, ctx: &Ctx) -> Vec<(usize, usize)> {
    let tokens = &ws.files[f.file].tokens;
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = ctx.args_start;
    let mut i = ctx.args_start;
    while i < ctx.args_end {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            out.push((start, i));
            start = i + 1;
        }
        i += 1;
    }
    if start < ctx.args_end {
        out.push((start, ctx.args_end));
    }
    out
}

/// Walk one fn body; `pre_taint` optionally seeds a parameter name
/// (summary mode). Returns sinks reached and whether the return value
/// is tainted.
fn walk(
    ws: &WorkspaceIr,
    f: &FnItem,
    pre_taint: Option<&str>,
    sums: &Summaries,
    secret_types: &[&str],
) -> (Vec<SinkReach>, bool) {
    let tokens = &ws.files[f.file].tokens;
    let mut tainted: BTreeMap<String, String> = BTreeMap::new();
    if let Some(p) = pre_taint {
        tainted.insert(p.to_string(), format!("parameter `{p}`"));
    }
    let mut sinks = Vec::new();
    let mut ret_tainted = false;
    let n_units = f.units.len();
    for (ui, u) in f.units.iter().enumerate() {
        let ctxs: Vec<&Ctx> = f
            .ctxs
            .iter()
            .filter(|c| u.start <= c.name_tok && c.name_tok <= u.end)
            .collect();
        let sanitizers: Vec<&&Ctx> = ctxs
            .iter()
            .filter(|c| is_sanitizer(c, secret_types))
            .collect();
        let consumed = |tok: usize, var: Option<&str>| -> bool {
            sanitizers.iter().any(|s| {
                s.contains(tok)
                    || (s.method && var.is_some_and(|v| s.recv.iter().any(|r| r == v)))
                    || (s.method
                        && var.is_none()
                        && s.recv.first().is_some_and(|r| r == "<expr>")
                        && tok < s.name_tok)
            })
        };
        // Unconsumed tainted occurrences in this unit: (token, origin).
        let mut occ: Vec<(usize, String)> = Vec::new();
        for i in u.start..=u.end.min(tokens.len().saturating_sub(1)) {
            let t = &tokens[i];
            if t.is_comment() || t.kind != crate::lexer::TokenKind::Ident {
                continue;
            }
            if let Some(origin) = tainted.get(&t.text) {
                let field_pos =
                    crate::parser::prev_nc(tokens, i).is_some_and(|p| tokens[p].is_punct('.'));
                if !field_pos && !consumed(i, Some(&t.text)) {
                    occ.push((i, origin.clone()));
                }
            }
        }
        for ctx in &ctxs {
            if let Some(desc) = source_desc(ctx) {
                if !consumed(ctx.name_tok, None) {
                    occ.push((ctx.name_tok, desc));
                }
            } else if ctx.kind == CtxKind::Call && !is_sanitizer(ctx, secret_types) {
                // Calls returning secret-derived values are sources too.
                for callee in resolve_call(ws, f, ctx) {
                    if sums.fresh_ret[callee] && !consumed(ctx.name_tok, None) {
                        occ.push((
                            ctx.name_tok,
                            format!("{}() (secret-derived return)", ws.label(callee)),
                        ));
                        break;
                    }
                }
            }
        }
        occ.sort_by_key(|&(i, _)| i);
        // Direct sinks.
        for ctx in &ctxs {
            if let Some(sink) = sink_desc(ctx) {
                if let Some((_, origin)) = occ.iter().find(|&&(tok, _)| ctx.contains(tok)) {
                    sinks.push(SinkReach {
                        line: ctx.line,
                        origin: origin.clone(),
                        sink,
                        via: Vec::new(),
                    });
                }
            }
        }
        // Interprocedural arg passing.
        for ctx in &ctxs {
            if ctx.kind != CtxKind::Call
                || is_sanitizer(ctx, secret_types)
                || sink_desc(ctx).is_some()
            {
                continue;
            }
            let slices = arg_slices(ws, f, ctx);
            let mut call_ret_tainted: Option<String> = None;
            for callee in resolve_call(ws, f, ctx) {
                let g = &ws.fns[callee];
                let self_offset =
                    usize::from(ctx.method && g.params.first().is_some_and(|p| p.name == "self"));
                for (slot, &(s, e)) in slices.iter().enumerate() {
                    let hit = occ.iter().find(|&&(tok, _)| s <= tok && tok < e);
                    let Some((_, origin)) = hit else { continue };
                    let k = slot + self_offset;
                    if let Some(Some((sink, via))) =
                        sums.param_sink.get(callee).and_then(|v| v.get(k))
                    {
                        let mut chain = vec![ws.label(callee)];
                        chain.extend(via.iter().cloned());
                        sinks.push(SinkReach {
                            line: ctx.line,
                            origin: origin.clone(),
                            sink: sink.clone(),
                            via: chain,
                        });
                    }
                    if sums.param_ret.get(callee).and_then(|v| v.get(k)) == Some(&true)
                        && call_ret_tainted.is_none()
                    {
                        call_ret_tainted = Some(origin.clone());
                    }
                }
            }
            if let Some(origin) = call_ret_tainted {
                occ.push((ctx.name_tok, origin));
            }
        }
        // Propagation into bindings.
        if let Some(first) = occ.first() {
            if let Some(name) = &u.let_name {
                tainted
                    .entry(name.clone())
                    .or_insert_with(|| first.1.clone());
            } else {
                // Plain assignment `x = …;`.
                let nc: Vec<usize> = (u.start..=u.end.min(tokens.len().saturating_sub(1)))
                    .filter(|&i| !tokens[i].is_comment())
                    .collect();
                if nc.len() >= 2
                    && tokens[nc[0]].kind == crate::lexer::TokenKind::Ident
                    && tokens[nc[1]].is_punct('=')
                    && !tokens.get(nc[1] + 1).is_some_and(|t| t.is_punct('='))
                {
                    tainted
                        .entry(tokens[nc[0]].text.clone())
                        .or_insert_with(|| first.1.clone());
                }
            }
            // Return-value taint: explicit `return` or trailing expr.
            let is_return = tokens
                .get(u.start)
                .is_some_and(|t| t.is_ident("return") || t.is_ident("Ok") || t.is_ident("Some"))
                && u.let_name.is_none();
            let is_tail = ui + 1 == n_units
                && u.depth == 0
                && !tokens.get(u.end).is_some_and(|t| t.is_punct(';'));
            if is_return || is_tail {
                ret_tainted = true;
            }
        }
    }
    (sinks, ret_tainted)
}

/// Run T1 over every first-party fn, returning hits in fn order.
pub fn run_t1(ws: &WorkspaceIr, secret_types: &[&str]) -> Vec<T1Hit> {
    // Fixpoint the summaries (bounded; the lattice is finite and small).
    let mut sums = Summaries {
        param_sink: ws.fns.iter().map(|f| vec![None; f.params.len()]).collect(),
        param_ret: ws.fns.iter().map(|f| vec![false; f.params.len()]).collect(),
        fresh_ret: vec![false; ws.fns.len()],
    };
    for _ in 0..6 {
        let mut changed = false;
        for (id, f) in ws.fns.iter().enumerate() {
            if f.body.is_none() || ws.files[f.file].vendor {
                continue;
            }
            let (_, fresh) = walk(ws, f, None, &sums, secret_types);
            if fresh && !sums.fresh_ret[id] {
                sums.fresh_ret[id] = true;
                changed = true;
            }
            for k in 0..f.params.len() {
                let name = f.params[k].name.clone();
                if name == "self" || name == "_" {
                    continue;
                }
                let (sinks, ret) = walk(ws, f, Some(&name), &sums, secret_types);
                if let Some(first) = sinks.first() {
                    if sums.param_sink[id][k].is_none() {
                        sums.param_sink[id][k] = Some((first.sink.clone(), first.via.clone()));
                        changed = true;
                    }
                }
                if ret && !sums.param_ret[id][k] {
                    sums.param_ret[id][k] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Reporting pass: sources only.
    let mut hits = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if f.body.is_none() || ws.files[f.file].vendor {
            continue;
        }
        let (sinks, _) = walk(ws, f, None, &sums, secret_types);
        for s in sinks {
            let via = if s.via.is_empty() {
                String::new()
            } else {
                format!(" via {}", s.via.join(" -> "))
            };
            hits.push(T1Hit {
                fn_id: id,
                line: s.line,
                message: format!(
                    "T1 secret taint: value from {} reaches {} in {}{}",
                    s.origin,
                    s.sink,
                    ws.label(id),
                    via
                ),
            });
        }
    }
    hits
}
