//! `dasp` — Database-as-a-Service with secret sharing.
//!
//! The top-level API of the workspace: deploy a simulated multi-provider
//! outsourced database, speak SQL to it, and get plaintext answers while
//! every provider stores only information-theoretic (or order-leaking,
//! your choice per column) shares.
//!
//! ```
//! use dasp_core::{OutsourcedDatabase, QueryOutput};
//!
//! let mut db = OutsourcedDatabase::deploy_seeded(2, 3, 42).unwrap();
//! db.execute(
//!     "CREATE TABLE employees (name VARCHAR(8) MODE DETERMINISTIC, \
//!      salary INT(1048576) MODE ORDERED)",
//! )
//! .unwrap();
//! db.execute("INSERT INTO employees VALUES ('JOHN', 10000), ('MARY', 20000)")
//!     .unwrap();
//! let out = db
//!     .execute("SELECT * FROM employees WHERE salary BETWEEN 5000 AND 15000")
//!     .unwrap();
//! let QueryOutput::Rows { rows, .. } = out else { panic!() };
//! assert_eq!(rows.len(), 1);
//! ```
//!
//! Lower-level building blocks are re-exported: `client` (the data
//! source), `server` (the provider), `net` (the simulated cluster),
//! `sss` (the share algebra), `verify` (trust mechanisms).

pub use dasp_client as client;
pub use dasp_net as net;
pub use dasp_server as server;
pub use dasp_sql as sql;
pub use dasp_sss as sss;
pub use dasp_verify as verify;

/// Redacting wrapper for client-secret state (defined in `dasp-field`,
/// the workspace's dependency root, so every layer can use it).
pub use dasp_field::Secret;

use dasp_client::{
    AggResult, ClientError, ClientKeys, ColumnSpec, ColumnType, DataSource, ExplainReport,
    GroupRow, Predicate, QueryOptions, TableSchema, Value,
};
use dasp_net::Cluster;
use dasp_server::service::provider_fleet;
use dasp_sql::{
    Aggregate, ColumnMode, ColumnTypeDef, Condition, Literal, ParseError, Projection, Statement,
};
use dasp_sss::ShareMode;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Top-level errors.
#[derive(Debug)]
pub enum DbError {
    /// SQL syntax error.
    Parse(ParseError),
    /// Execution error from the client/provider stack.
    Client(ClientError),
    /// The statement is syntactically valid but not executable here.
    Unsupported(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "{e}"),
            DbError::Client(e) => write!(f, "{e}"),
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError::Parse(e)
    }
}

impl From<ClientError> for DbError {
    fn from(e: ClientError) -> Self {
        DbError::Client(e)
    }
}

/// A decoded row: id plus values.
pub type OutRow = (u64, Vec<Value>);

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// DDL or other side-effect-only statement.
    None,
    /// Row ids assigned by an INSERT.
    Inserted(Vec<u64>),
    /// SELECT result: column names plus decoded rows.
    Rows {
        /// Projected column names.
        columns: Vec<String>,
        /// `(row id, values)` pairs.
        rows: Vec<OutRow>,
    },
    /// Joined SELECT result.
    Joined {
        /// Pairs of (left row, right row).
        pairs: Vec<(OutRow, OutRow)>,
    },
    /// Aggregate result.
    Aggregate(AggResult),
    /// GROUP BY result rows.
    Groups(Vec<GroupRow>),
    /// Rows affected by UPDATE/DELETE.
    Affected(usize),
    /// An EXPLAIN plan.
    Plan(ExplainReport),
}

/// A deployed outsourced database: one data source, n provider threads.
pub struct OutsourcedDatabase {
    ds: DataSource,
    /// Verify every SELECT via majority reconstruction when true.
    pub verify_reads: bool,
}

impl OutsourcedDatabase {
    /// Deploy with threshold `k` of `n` providers (fresh random keys).
    pub fn deploy(k: usize, n: usize) -> Result<Self, DbError> {
        let mut rng = StdRng::from_entropy();
        Self::deploy_with_rng(k, n, &mut rng, None)
    }

    /// Deterministic deployment for tests and benchmarks.
    pub fn deploy_seeded(k: usize, n: usize, seed: u64) -> Result<Self, DbError> {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::deploy_with_rng(k, n, &mut rng, Some(seed ^ 0x5a5a))
    }

    fn deploy_with_rng(
        k: usize,
        n: usize,
        rng: &mut StdRng,
        ds_seed: Option<u64>,
    ) -> Result<Self, DbError> {
        let keys = ClientKeys::generate(k, n, rng)?;
        let cluster = Cluster::spawn(provider_fleet(n), Duration::from_secs(2));
        let ds = match ds_seed {
            Some(seed) => DataSource::with_seed(keys, cluster, seed)?,
            None => DataSource::new(keys, cluster)?,
        };
        Ok(OutsourcedDatabase {
            ds,
            verify_reads: false,
        })
    }

    /// The underlying data source (typed API, ringers, lazy updates…).
    pub fn source(&mut self) -> &mut DataSource {
        &mut self.ds
    }

    /// The cluster (failure injection, traffic statistics).
    pub fn cluster(&self) -> &Cluster {
        self.ds.cluster()
    }

    /// Parse and execute one SQL statement.
    pub fn execute(&mut self, sql_text: &str) -> Result<QueryOutput, DbError> {
        let stmt = dasp_sql::parse(sql_text)?;
        self.run(stmt)
    }

    fn run(&mut self, stmt: Statement) -> Result<QueryOutput, DbError> {
        match stmt {
            Statement::Explain(inner) => {
                let Statement::Select {
                    table, conditions, ..
                } = *inner
                else {
                    return Err(DbError::Unsupported("EXPLAIN supports only SELECT".into()));
                };
                let preds = lower_conditions(&conditions);
                Ok(QueryOutput::Plan(self.ds.explain(&table, &preds)?))
            }
            Statement::CreateTable { name, columns } => {
                let specs = columns
                    .into_iter()
                    .map(lower_column)
                    .collect::<Result<Vec<_>, DbError>>()?;
                self.ds.create_table(TableSchema::new(&name, specs)?)?;
                Ok(QueryOutput::None)
            }
            Statement::Insert { table, rows } => {
                let rows: Vec<Vec<Value>> = rows
                    .into_iter()
                    .map(|row| row.into_iter().map(lower_literal).collect())
                    .collect();
                let ids = self.ds.insert(&table, &rows)?;
                Ok(QueryOutput::Inserted(ids))
            }
            Statement::Select {
                projection,
                table,
                join,
                conditions,
                group_by,
                order_by,
                limit,
            } => self.run_select(
                projection, table, join, conditions, group_by, order_by, limit,
            ),
            Statement::Update {
                table,
                assignments,
                conditions,
            } => {
                let preds = lower_conditions(&conditions);
                let assigns: Vec<(&str, Value)> = assignments
                    .iter()
                    .map(|(c, l)| (c.as_str(), lower_literal(l.clone())))
                    .collect();
                let n = self.ds.update_where(&table, &preds, &assigns)?;
                Ok(QueryOutput::Affected(n))
            }
            Statement::Delete { table, conditions } => {
                let preds = lower_conditions(&conditions);
                let n = self.ds.delete_where(&table, &preds)?;
                Ok(QueryOutput::Affected(n))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_select(
        &mut self,
        projection: Projection,
        table: String,
        join: Option<dasp_sql::ast::JoinClause>,
        conditions: Vec<Condition>,
        group_by: Option<String>,
        order_by: Option<(String, bool)>,
        limit: Option<u64>,
    ) -> Result<QueryOutput, DbError> {
        let preds = lower_conditions(&conditions);
        if let Some(group_col) = group_by {
            if join.is_some() || order_by.is_some() || limit.is_some() {
                return Err(DbError::Unsupported(
                    "GROUP BY cannot combine with JOIN/ORDER BY/LIMIT".into(),
                ));
            }
            let sum_col = match &projection {
                Projection::Aggregate(Aggregate::Count) => None,
                Projection::Aggregate(Aggregate::Sum(col)) => Some(col.clone()),
                _ => {
                    return Err(DbError::Unsupported(
                        "GROUP BY needs SELECT COUNT(*) or SELECT SUM(col)".into(),
                    ))
                }
            };
            let groups = self
                .ds
                .group_by(&table, &group_col, sum_col.as_deref(), &preds)?;
            return Ok(QueryOutput::Groups(groups));
        }
        if let Some((order_col, desc)) = order_by {
            if join.is_some() {
                return Err(DbError::Unsupported("ORDER BY with JOIN".into()));
            }
            if !matches!(projection, Projection::All) {
                return Err(DbError::Unsupported(
                    "ORDER BY supports only SELECT *".into(),
                ));
            }
            let rows =
                self.ds
                    .select_top(&table, &order_col, desc, limit.unwrap_or(u64::MAX), &preds)?;
            let columns = self
                .ds
                .schema_columns(&table)?
                .iter()
                .map(|c| c.name.clone())
                .collect();
            return Ok(QueryOutput::Rows { columns, rows });
        }
        if let Some(n) = limit {
            // LIMIT without ORDER BY: plain select then truncate.
            let opts = QueryOptions {
                verify: self.verify_reads,
            };
            let mut rows = self.ds.select_opts(&table, &preds, opts)?;
            rows.truncate(n as usize);
            let columns = self
                .ds
                .schema_columns(&table)?
                .iter()
                .map(|c| c.name.clone())
                .collect();
            return Ok(QueryOutput::Rows { columns, rows });
        }
        if let Some(join) = join {
            if !conditions.is_empty() {
                return Err(DbError::Unsupported(
                    "JOIN with WHERE is not supported; filter after joining".into(),
                ));
            }
            if !matches!(projection, Projection::All) {
                return Err(DbError::Unsupported("JOIN supports only SELECT *".into()));
            }
            let pairs = self
                .ds
                .join(&table, &join.left_col, &join.table, &join.right_col)?;
            return Ok(QueryOutput::Joined { pairs });
        }
        match projection {
            Projection::All | Projection::Columns(_) => {
                let opts = QueryOptions {
                    verify: self.verify_reads,
                };
                let mut rows = self.ds.select_opts(&table, &preds, opts)?;
                let schema_cols: Vec<String> = {
                    // Resolve the projection against the schema.
                    let all: Vec<String> = self
                        .ds
                        .schema_columns(&table)?
                        .iter()
                        .map(|c| c.name.clone())
                        .collect();
                    match &projection {
                        Projection::All => all,
                        Projection::Columns(cols) => {
                            let idxs: Vec<usize> = cols
                                .iter()
                                .map(|c| {
                                    all.iter().position(|a| a == c).ok_or_else(|| {
                                        DbError::Unsupported(format!("no column {c:?}"))
                                    })
                                })
                                .collect::<Result<_, DbError>>()?;
                            for (_, values) in rows.iter_mut() {
                                *values = idxs.iter().map(|&i| values[i].clone()).collect();
                            }
                            cols.clone()
                        }
                        Projection::Aggregate(_) => unreachable!(),
                    }
                };
                Ok(QueryOutput::Rows {
                    columns: schema_cols,
                    rows,
                })
            }
            Projection::Aggregate(agg) => {
                let result = match agg {
                    Aggregate::Count => AggResult {
                        value: None,
                        count: self.ds.count(&table, &preds)?,
                    },
                    Aggregate::Sum(col) => self.ds.sum(&table, &col, &preds)?,
                    Aggregate::Avg(col) => self.ds.avg(&table, &col, &preds)?,
                    Aggregate::Min(col) => self.ds.min(&table, &col, &preds)?,
                    Aggregate::Max(col) => self.ds.max(&table, &col, &preds)?,
                    Aggregate::Median(col) => self.ds.median(&table, &col, &preds)?,
                };
                Ok(QueryOutput::Aggregate(result))
            }
        }
    }
}

fn lower_column(def: dasp_sql::ColumnDef) -> Result<ColumnSpec, DbError> {
    let mode = match def.mode {
        ColumnMode::Random => ShareMode::Random,
        ColumnMode::Deterministic => ShareMode::Deterministic,
        ColumnMode::Ordered => ShareMode::OrderPreserving,
    };
    let ctype = match def.ctype {
        ColumnTypeDef::Int { domain_size } => ColumnType::Numeric { domain_size },
        ColumnTypeDef::Varchar { width } => ColumnType::Text {
            width: width as usize,
        },
    };
    let mut spec = ColumnSpec {
        name: def.name.clone(),
        ctype,
        mode,
        domain: def.name,
    };
    if let Some(domain) = def.domain {
        spec.domain = domain;
    }
    Ok(spec)
}

fn lower_literal(lit: Literal) -> Value {
    match lit {
        Literal::Int(v) => Value::Int(v),
        Literal::Str(s) => Value::Str(s),
    }
}

fn lower_conditions(conditions: &[Condition]) -> Vec<Predicate> {
    conditions
        .iter()
        .map(|c| match c {
            Condition::Eq { col, value } => Predicate::Eq {
                col: col.clone(),
                value: lower_literal(value.clone()),
            },
            Condition::Between { col, lo, hi } => Predicate::Between {
                col: col.clone(),
                lo: lower_literal(lo.clone()),
                hi: lower_literal(hi.clone()),
            },
            Condition::Prefix { col, prefix } => Predicate::Prefix {
                col: col.clone(),
                prefix: prefix.clone(),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> OutsourcedDatabase {
        let mut db = OutsourcedDatabase::deploy_seeded(2, 3, 1).unwrap();
        db.execute(
            "CREATE TABLE employees (name VARCHAR(8) MODE DETERMINISTIC, \
             salary INT(1048576) MODE ORDERED, ssn INT(1048576) MODE RANDOM)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO employees VALUES \
             ('JOHN', 10000, 111), ('MARY', 20000, 222), ('JOHN', 40000, 333), \
             ('ALICE', 60000, 444), ('BOB', 80000, 555)",
        )
        .unwrap();
        db
    }

    #[test]
    fn full_sql_lifecycle() {
        let mut db = db();
        // The paper's §III range query, in SQL.
        let out = db
            .execute("SELECT * FROM employees WHERE salary BETWEEN 10000 AND 40000")
            .unwrap();
        let QueryOutput::Rows { columns, rows } = out else {
            panic!()
        };
        assert_eq!(columns, vec!["name", "salary", "ssn"]);
        assert_eq!(rows.len(), 3);

        // Aggregate over exact match (the §V-A example).
        let out = db
            .execute("SELECT AVG(salary) FROM employees WHERE name = 'JOHN'")
            .unwrap();
        let QueryOutput::Aggregate(agg) = out else {
            panic!()
        };
        assert_eq!(agg.value, Some(Value::Int(25000)));
        assert_eq!(agg.count, 2);

        // Update + verify.
        let out = db
            .execute("UPDATE employees SET salary = 99000 WHERE name = 'BOB'")
            .unwrap();
        assert_eq!(out, QueryOutput::Affected(1));
        let out = db.execute("SELECT MAX(salary) FROM employees").unwrap();
        let QueryOutput::Aggregate(agg) = out else {
            panic!()
        };
        assert_eq!(agg.value, Some(Value::Int(99000)));

        // Delete.
        let out = db
            .execute("DELETE FROM employees WHERE name = 'JOHN'")
            .unwrap();
        assert_eq!(out, QueryOutput::Affected(2));
        let out = db.execute("SELECT COUNT(*) FROM employees").unwrap();
        let QueryOutput::Aggregate(agg) = out else {
            panic!()
        };
        assert_eq!(agg.count, 3);
    }

    #[test]
    fn projection_subsets_columns() {
        let mut db = db();
        let out = db
            .execute("SELECT salary, name FROM employees WHERE name = 'MARY'")
            .unwrap();
        let QueryOutput::Rows { columns, rows } = out else {
            panic!()
        };
        assert_eq!(columns, vec!["salary", "name"]);
        assert_eq!(rows[0].1, vec![Value::Int(20000), Value::from("MARY")]);
    }

    #[test]
    fn random_mode_predicate_via_sql() {
        let mut db = db();
        let out = db
            .execute("SELECT * FROM employees WHERE ssn = 444")
            .unwrap();
        let QueryOutput::Rows { rows, .. } = out else {
            panic!()
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[0], Value::from("ALICE"));
    }

    #[test]
    fn join_via_sql() {
        let mut db = db();
        db.execute(
            "CREATE TABLE managers (name VARCHAR(8) MODE DETERMINISTIC DOMAIN 'name', level INT(16) MODE RANDOM)",
        )
        .unwrap();
        db.execute("INSERT INTO managers VALUES ('ALICE', 3), ('JOHN', 2)")
            .unwrap();
        let out = db
            .execute("SELECT * FROM employees JOIN managers ON employees.name = managers.name")
            .unwrap();
        let QueryOutput::Joined { pairs } = out else {
            panic!()
        };
        assert_eq!(pairs.len(), 3); // JOHN×2, ALICE×1
    }

    #[test]
    fn unknown_projection_column_fails() {
        let mut db = db();
        assert!(db.execute("SELECT bogus FROM employees").is_err());
    }

    #[test]
    fn join_with_where_unsupported() {
        let mut db = db();
        db.execute("CREATE TABLE m (name VARCHAR(8) DOMAIN 'name')")
            .unwrap();
        let err = db
            .execute("SELECT * FROM employees JOIN m ON employees.name = m.name WHERE salary = 1")
            .unwrap_err();
        assert!(matches!(err, DbError::Unsupported(_)));
    }

    #[test]
    fn parse_errors_surface() {
        let mut db = db();
        assert!(matches!(
            db.execute("SELEKT * FROM employees"),
            Err(DbError::Parse(_))
        ));
    }

    #[test]
    fn group_by_via_sql() {
        let mut db = db();
        let out = db
            .execute("SELECT SUM(salary) FROM employees GROUP BY name")
            .unwrap();
        let QueryOutput::Groups(groups) = out else {
            panic!("{out:?}")
        };
        assert_eq!(groups.len(), 4);
        let john = groups
            .iter()
            .find(|g| g.group == Value::from("JOHN"))
            .unwrap();
        assert_eq!(john.sum, Some(Value::Int(50_000)));
        assert_eq!(john.count, 2);

        let out = db
            .execute(
                "SELECT COUNT(*) FROM employees WHERE salary BETWEEN 0 AND 45000 GROUP BY name",
            )
            .unwrap();
        let QueryOutput::Groups(groups) = out else {
            panic!()
        };
        assert_eq!(groups.len(), 2);

        // GROUP BY needs an aggregate projection.
        assert!(db.execute("SELECT * FROM employees GROUP BY name").is_err());
    }

    #[test]
    fn order_by_limit_via_sql() {
        let mut db = db();
        let out = db
            .execute("SELECT * FROM employees ORDER BY salary DESC LIMIT 2")
            .unwrap();
        let QueryOutput::Rows { rows, .. } = out else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1[1], Value::Int(80_000));
        assert_eq!(rows[1].1[1], Value::Int(60_000));

        let out = db
            .execute("SELECT * FROM employees ORDER BY salary LIMIT 1")
            .unwrap();
        let QueryOutput::Rows { rows, .. } = out else {
            panic!()
        };
        assert_eq!(rows[0].1[1], Value::Int(10_000));

        // Plain LIMIT truncates.
        let out = db.execute("SELECT * FROM employees LIMIT 3").unwrap();
        let QueryOutput::Rows { rows, .. } = out else {
            panic!()
        };
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn explain_via_sql() {
        let mut db = db();
        let out = db
            .execute(
                "EXPLAIN SELECT * FROM employees WHERE name = 'JOHN'                  AND salary BETWEEN 10000 AND 40000 AND ssn = 111",
            )
            .unwrap();
        let QueryOutput::Plan(plan) = out else {
            panic!("{out:?}")
        };
        assert_eq!(plan.table, "employees");
        assert_eq!(plan.conjuncts.len(), 3);
        let server: Vec<bool> = plan.conjuncts.iter().map(|c| c.server_side).collect();
        assert_eq!(server, vec![true, true, false], "ssn is residual");
        // The rewritten atoms expose shares, never plaintext values.
        for c in &plan.conjuncts {
            if let Some(r) = &c.rewritten {
                assert!(!r.contains("10000") || r.contains("share("), "{r}");
            }
        }
        let rendered = plan.to_string();
        assert!(rendered.contains("RESIDUAL"));
        assert!(rendered.contains("strategy:"));
    }

    #[test]
    fn like_prefix_via_sql() {
        let mut db = db();
        let out = db
            .execute("SELECT * FROM employees WHERE name LIKE 'JO%'")
            .unwrap();
        let QueryOutput::Rows { rows, .. } = out else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
    }
}
