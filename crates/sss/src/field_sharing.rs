//! Shamir sharing over GF(2⁶¹−1): random and deterministic modes.
//!
//! The sharing polynomial has degree k−1 and the secret as constant term
//! (§III). Evaluation points X = {x₁…xₙ} are part of the client's secret:
//! providers never learn at which x their share was evaluated, which is
//! what makes even k colluding providers unable to interpolate without X.

use crate::{DomainKey, SssError};
use dasp_field::{lagrange_at_zero, Fp, Poly};
use rand::Rng;

/// One provider's share of a field-mode value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldShare {
    /// Index of the provider (position in the client's X vector).
    pub provider: usize,
    /// The share value q(xᵢ).
    pub y: Fp,
}

/// A (k, n) Shamir configuration over GF(p) with client-secret points X.
#[derive(Debug, Clone)]
pub struct FieldSharing {
    k: usize,
    points: Vec<Fp>,
}

impl FieldSharing {
    /// Create a configuration with threshold `k` and the given evaluation
    /// points (one per provider, all distinct and non-zero).
    pub fn new(k: usize, points: Vec<Fp>) -> Result<Self, SssError> {
        let n = points.len();
        if k == 0 || k > n {
            return Err(SssError::BadParameters(format!("k={k} must be in 1..={n}")));
        }
        for (i, a) in points.iter().enumerate() {
            if a.is_zero() {
                return Err(SssError::BadParameters("x point must be non-zero".into()));
            }
            if points[..i].contains(a) {
                return Err(SssError::BadParameters("duplicate x point".into()));
            }
        }
        Ok(FieldSharing { k, points })
    }

    /// Sample `n` fresh random distinct points and build a configuration.
    pub fn generate<R: Rng + ?Sized>(k: usize, n: usize, rng: &mut R) -> Result<Self, SssError> {
        let mut points = Vec::with_capacity(n);
        while points.len() < n {
            let x = Fp::random_nonzero(rng);
            if !points.contains(&x) {
                points.push(x);
            }
        }
        Self::new(k, points)
    }

    /// Threshold k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of providers n.
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// The secret evaluation point of provider `i`.
    pub fn point(&self, i: usize) -> Result<Fp, SssError> {
        self.points
            .get(i)
            .copied()
            .ok_or(SssError::BadProviderIndex(i))
    }

    /// Split `secret` with a *fresh random* polynomial ([`crate::ShareMode::Random`]).
    pub fn split_random<R: Rng + ?Sized>(&self, secret: Fp, rng: &mut R) -> Vec<FieldShare> {
        let poly = Poly::random_with_secret(secret, self.k - 1, rng);
        self.eval_all(&poly)
    }

    /// Split `secret` with the *deterministic* PRF-derived polynomial for
    /// its domain ([`crate::ShareMode::Deterministic`]): the same (key,
    /// value) pair always produces the same shares, so the client can
    /// recompute a share to rewrite an exact-match query (§V-A).
    pub fn split_deterministic(&self, secret: u64, key: &DomainKey) -> Vec<FieldShare> {
        let poly = self.deterministic_poly(secret, key);
        self.eval_all(&poly)
    }

    /// The share provider `i` would hold for `secret` under deterministic
    /// mode — used for query rewriting without touching stored data.
    pub fn deterministic_share(
        &self,
        secret: u64,
        key: &DomainKey,
        provider: usize,
    ) -> Result<Fp, SssError> {
        let x = self.point(provider)?;
        Ok(self.deterministic_poly(secret, key).eval(x))
    }

    fn deterministic_poly(&self, secret: u64, key: &DomainKey) -> Poly {
        let mut coeffs = Vec::with_capacity(self.k);
        coeffs.push(Fp::from_u64(secret));
        for j in 1..self.k {
            let prf = key.coeff_prf(j);
            // Two PRF outputs folded to cover the 61-bit field closely; the
            // tiny bias is irrelevant for a deterministic index.
            let raw = prf.hash_u64(secret);
            let mut c = Fp::from_u64(raw);
            if j == self.k - 1 && c.is_zero() {
                c = Fp::ONE; // keep the polynomial at full degree
            }
            coeffs.push(c);
        }
        Poly::new(coeffs)
    }

    fn eval_all(&self, poly: &Poly) -> Vec<FieldShare> {
        self.points
            .iter()
            .enumerate()
            .map(|(provider, &x)| FieldShare {
                provider,
                y: poly.eval(x),
            })
            .collect()
    }

    /// Reconstruct the secret from at least `k` shares.
    pub fn reconstruct(&self, shares: &[FieldShare]) -> Result<Fp, SssError> {
        if shares.len() < self.k {
            return Err(SssError::NotEnoughShares {
                needed: self.k,
                got: shares.len(),
            });
        }
        let mut pts = Vec::with_capacity(self.k);
        for s in &shares[..self.k] {
            let x = self.point(s.provider)?;
            if pts.iter().any(|&(px, _)| px == x) {
                return Err(SssError::BadProviderIndex(s.provider));
            }
            pts.push((x, s.y));
        }
        lagrange_at_zero(&pts).map_err(|e| SssError::Arithmetic(e.to_string()))
    }

    /// Reconstruct and cross-check: uses *all* provided shares, verifying
    /// every k-subset agrees. Detects a corrupted share (Byzantine
    /// provider) whenever at least k honest shares are present.
    pub fn reconstruct_checked(&self, shares: &[FieldShare]) -> Result<Fp, SssError> {
        let first = self.reconstruct(shares)?;
        // Verify each extra share lies on the interpolated polynomial by
        // re-reconstructing with it swapped in.
        for i in self.k..shares.len() {
            let mut subset: Vec<FieldShare> = shares[..self.k - 1].to_vec();
            subset.push(shares[i]);
            if self.reconstruct(&subset)? != first {
                return Err(SssError::InconsistentShares);
            }
        }
        Ok(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig1_sharing() -> FieldSharing {
        // Figure 1: n = 3, k = 2, X = {2, 4, 1}.
        FieldSharing::new(2, vec![Fp::from_u64(2), Fp::from_u64(4), Fp::from_u64(1)]).unwrap()
    }

    /// Reproduces the paper's Figure 1 exactly: salaries {10,20,40,60,80}
    /// shared with q10(x)=100x+10 … q80(x)=4x+80 yield the share columns
    /// shown in the figure, and any 2 providers reconstruct.
    #[test]
    fn figure1_share_table() {
        let sharing = fig1_sharing();
        // The paper fixes the random coefficients; we emulate by evaluating
        // the same polynomials directly.
        let polys: &[(u64, u64)] = &[(10, 100), (20, 5), (40, 1), (60, 2), (80, 4)];
        let expected_das1 = [210u64, 30, 42, 64, 88]; // x = 2
        let expected_das2 = [410u64, 40, 44, 68, 96]; // x = 4
        let expected_das3 = [110u64, 25, 41, 62, 84]; // x = 1
        for (row, &(salary, slope)) in polys.iter().enumerate() {
            let poly = dasp_field::Poly::new(vec![Fp::from_u64(salary), Fp::from_u64(slope)]);
            let s1 = poly.eval(Fp::from_u64(2)).to_u64();
            let s2 = poly.eval(Fp::from_u64(4)).to_u64();
            let s3 = poly.eval(Fp::from_u64(1)).to_u64();
            assert_eq!(s1, expected_das1[row]);
            assert_eq!(s2, expected_das2[row]);
            assert_eq!(s3, expected_das3[row]);
            // Any 2 of 3 shares reconstruct the salary.
            for pair in [(0usize, 1usize), (0, 2), (1, 2)] {
                let shares = [
                    FieldShare {
                        provider: pair.0,
                        y: Fp::from_u64([s1, s2, s3][pair.0]),
                    },
                    FieldShare {
                        provider: pair.1,
                        y: Fp::from_u64([s1, s2, s3][pair.1]),
                    },
                ];
                assert_eq!(sharing.reconstruct(&shares).unwrap(), Fp::from_u64(salary));
            }
        }
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(FieldSharing::new(0, vec![Fp::from_u64(1)]).is_err());
        assert!(FieldSharing::new(2, vec![Fp::from_u64(1)]).is_err());
        assert!(FieldSharing::new(1, vec![Fp::ZERO]).is_err());
        assert!(
            FieldSharing::new(1, vec![Fp::from_u64(3), Fp::from_u64(3)]).is_err(),
            "duplicate points"
        );
    }

    #[test]
    fn random_split_reconstructs_with_any_k_subset() {
        let mut rng = StdRng::seed_from_u64(11);
        let sharing = FieldSharing::generate(3, 5, &mut rng).unwrap();
        let secret = Fp::from_u64(123_456);
        let shares = sharing.split_random(secret, &mut rng);
        for a in 0..5 {
            for b in (a + 1)..5 {
                for c in (b + 1)..5 {
                    let subset = [shares[a], shares[b], shares[c]];
                    assert_eq!(sharing.reconstruct(&subset).unwrap(), secret);
                }
            }
        }
    }

    #[test]
    fn too_few_shares_fail() {
        let mut rng = StdRng::seed_from_u64(12);
        let sharing = FieldSharing::generate(3, 5, &mut rng).unwrap();
        let shares = sharing.split_random(Fp::from_u64(9), &mut rng);
        assert!(matches!(
            sharing.reconstruct(&shares[..2]),
            Err(SssError::NotEnoughShares { needed: 3, got: 2 })
        ));
    }

    #[test]
    fn duplicate_provider_rejected() {
        let mut rng = StdRng::seed_from_u64(13);
        let sharing = FieldSharing::generate(2, 3, &mut rng).unwrap();
        let shares = sharing.split_random(Fp::from_u64(9), &mut rng);
        let dup = [shares[0], shares[0]];
        assert!(sharing.reconstruct(&dup).is_err());
    }

    #[test]
    fn deterministic_shares_are_stable_and_equality_preserving() {
        let mut rng = StdRng::seed_from_u64(14);
        let sharing = FieldSharing::generate(2, 3, &mut rng).unwrap();
        let key = DomainKey::derive(b"master", "salary");
        let a = sharing.split_deterministic(20, &key);
        let b = sharing.split_deterministic(20, &key);
        let c = sharing.split_deterministic(30, &key);
        assert_eq!(a, b, "same value, same shares");
        for (i, (sa, sc)) in a.iter().zip(&c).enumerate() {
            assert_ne!(sa.y, sc.y, "different values differ at provider {i}");
        }
        // Query rewriting path matches stored shares.
        for (i, share) in a.iter().enumerate() {
            assert_eq!(sharing.deterministic_share(20, &key, i).unwrap(), share.y);
        }
        // And it reconstructs.
        assert_eq!(sharing.reconstruct(&a).unwrap(), Fp::from_u64(20));
    }

    #[test]
    fn reconstruct_checked_detects_corruption() {
        let mut rng = StdRng::seed_from_u64(15);
        let sharing = FieldSharing::generate(2, 4, &mut rng).unwrap();
        let mut shares = sharing.split_random(Fp::from_u64(555), &mut rng);
        assert_eq!(
            sharing.reconstruct_checked(&shares).unwrap(),
            Fp::from_u64(555)
        );
        shares[3].y += Fp::ONE; // corrupt one share
        assert_eq!(
            sharing.reconstruct_checked(&shares),
            Err(SssError::InconsistentShares)
        );
    }

    #[test]
    fn additive_homomorphism_of_shares() {
        // Provider-side SUM: add shares componentwise, reconstruct the sum.
        let mut rng = StdRng::seed_from_u64(16);
        let sharing = FieldSharing::generate(2, 3, &mut rng).unwrap();
        let key = DomainKey::derive(b"master", "salary");
        let values = [10u64, 20, 40, 60, 80];
        let mut sums = [Fp::ZERO; 3];
        for &v in &values {
            for s in sharing.split_deterministic(v, &key) {
                sums[s.provider] += s.y;
            }
        }
        let shares: Vec<FieldShare> = sums
            .iter()
            .enumerate()
            .map(|(provider, &y)| FieldShare { provider, y })
            .collect();
        assert_eq!(
            sharing.reconstruct(&shares).unwrap(),
            Fp::from_u64(values.iter().sum())
        );
    }

    proptest! {
        #[test]
        fn prop_random_roundtrip(secret in 0u64..1 << 60, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let sharing = FieldSharing::generate(2, 3, &mut rng).unwrap();
            let shares = sharing.split_random(Fp::from_u64(secret), &mut rng);
            prop_assert_eq!(sharing.reconstruct(&shares).unwrap(), Fp::from_u64(secret));
        }

        #[test]
        fn prop_k_minus_1_shares_insufficient_by_construction(
            secret in 0u64..1000, seed in any::<u64>(),
        ) {
            // With k-1 shares, every candidate secret is consistent with
            // SOME polynomial — verify by constructing one explicitly for a
            // different secret (perfect secrecy witness).
            let mut rng = StdRng::seed_from_u64(seed);
            let sharing = FieldSharing::generate(2, 2, &mut rng).unwrap();
            let shares = sharing.split_random(Fp::from_u64(secret), &mut rng);
            // One share (x1, y1): for any other secret s', the line through
            // (0, s') and (x1, y1) is a valid sharing polynomial.
            let x1 = sharing.point(shares[0].provider).unwrap();
            let y1 = shares[0].y;
            let other = Fp::from_u64(secret + 1);
            let slope = (y1 - other) * x1.inv().unwrap();
            let poly = dasp_field::Poly::new(vec![other, slope]);
            prop_assert_eq!(poly.eval(x1), y1);
        }
    }
}
