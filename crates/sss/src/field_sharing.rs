//! Shamir sharing over GF(2⁶¹−1): random and deterministic modes.
//!
//! The sharing polynomial has degree k−1 and the secret as constant term
//! (§III). Evaluation points X = {x₁…xₙ} are part of the client's secret:
//! providers never learn at which x their share was evaluated, which is
//! what makes even k colluding providers unable to interpolate without X.

use crate::{DomainKey, SssError};
use dasp_crypto::siphash::SipHash24;
use dasp_field::{lagrange_apply, lagrange_at_zero, lagrange_basis_at_zero, Fp, Poly, Secret};
use rand::Rng;

/// The client-secret evaluation points X = {x₁…xₙ} (§III), one per
/// provider.
///
/// X is the linchpin of the scheme's secrecy: providers never learn at
/// which x their share was evaluated, so even k colluding providers cannot
/// interpolate without it. The vector is therefore held behind [`Secret`]
/// — it cannot leak through `Debug`, `Display`, or a log line, and the few
/// client-side sites that need raw coordinates go through the explicit,
/// greppable [`EvalPoints::expose`].
#[derive(Clone)]
pub struct EvalPoints(Secret<Vec<Fp>>);

impl EvalPoints {
    /// Wrap a point vector (validation is the caller's job —
    /// [`FieldSharing::new`] checks distinctness and non-zeroness).
    pub fn new(points: Vec<Fp>) -> Self {
        EvalPoints(Secret::new(points))
    }

    /// Number of providers n.
    pub fn len(&self) -> usize {
        self.0.expose().len()
    }

    /// True iff no points are held.
    pub fn is_empty(&self) -> bool {
        self.0.expose().is_empty()
    }

    /// The evaluation point of provider `i`, if in range.
    pub fn get(&self, i: usize) -> Option<Fp> {
        self.0.expose().get(i).copied()
    }

    /// Borrow the raw coordinates. Client-side use only: the result must
    /// never be logged or serialized onto the wire.
    pub fn expose(&self) -> &[Fp] {
        self.0.expose()
    }
}

// dasp::allow(S1): sanctioned redacting impl — only the count is shown.
impl std::fmt::Debug for EvalPoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EvalPoints(n={}, X=<redacted>)", self.len())
    }
}

/// One provider's share of a field-mode value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldShare {
    /// Index of the provider (position in the client's X vector).
    pub provider: usize,
    /// The share value q(xᵢ).
    pub y: Fp,
}

/// A (k, n) Shamir configuration over GF(p) with client-secret points X.
#[derive(Clone)]
pub struct FieldSharing {
    k: usize,
    points: EvalPoints,
}

// dasp::allow(S1): sanctioned redacting impl — the points X stay hidden.
impl std::fmt::Debug for FieldSharing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FieldSharing(k={}, n={}, X=<redacted>)",
            self.k,
            self.n()
        )
    }
}

impl FieldSharing {
    /// Create a configuration with threshold `k` and the given evaluation
    /// points (one per provider, all distinct and non-zero).
    pub fn new(k: usize, points: Vec<Fp>) -> Result<Self, SssError> {
        let n = points.len();
        if k == 0 || k > n {
            return Err(SssError::BadParameters(format!("k={k} must be in 1..={n}")));
        }
        for (i, a) in points.iter().enumerate() {
            if a.is_zero() {
                return Err(SssError::BadParameters("x point must be non-zero".into()));
            }
            if points[..i].contains(a) {
                return Err(SssError::BadParameters("duplicate x point".into()));
            }
        }
        Ok(FieldSharing {
            k,
            points: EvalPoints::new(points),
        })
    }

    /// Sample `n` fresh random distinct points and build a configuration.
    pub fn generate<R: Rng + ?Sized>(k: usize, n: usize, rng: &mut R) -> Result<Self, SssError> {
        let mut points = Vec::with_capacity(n);
        while points.len() < n {
            let x = Fp::random_nonzero(rng);
            if !points.contains(&x) {
                points.push(x);
            }
        }
        Self::new(k, points)
    }

    /// Threshold k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of providers n.
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// The secret evaluation point of provider `i`.
    pub fn point(&self, i: usize) -> Result<Fp, SssError> {
        self.points.get(i).ok_or(SssError::BadProviderIndex(i))
    }

    /// Split `secret` with a *fresh random* polynomial ([`crate::ShareMode::Random`]).
    pub fn split_random<R: Rng + ?Sized>(&self, secret: Fp, rng: &mut R) -> Vec<FieldShare> {
        let poly = Poly::random_with_secret(secret, self.k - 1, rng);
        self.eval_all(&poly)
    }

    /// Split `secret` with the *deterministic* PRF-derived polynomial for
    /// its domain ([`crate::ShareMode::Deterministic`]): the same (key,
    /// value) pair always produces the same shares, so the client can
    /// recompute a share to rewrite an exact-match query (§V-A).
    pub fn split_deterministic(&self, secret: u64, key: &DomainKey) -> Vec<FieldShare> {
        let poly = self.deterministic_poly(secret, key);
        self.eval_all(&poly)
    }

    /// The share provider `i` would hold for `secret` under deterministic
    /// mode — used for query rewriting without touching stored data.
    pub fn deterministic_share(
        &self,
        secret: u64,
        key: &DomainKey,
        provider: usize,
    ) -> Result<Fp, SssError> {
        let x = self.point(provider)?;
        Ok(self.deterministic_poly(secret, key).eval(x))
    }

    fn deterministic_poly(&self, secret: u64, key: &DomainKey) -> Poly {
        let prfs = self.coeff_prfs(key);
        self.deterministic_poly_with(secret, &prfs)
    }

    /// The per-coefficient PRFs for `key`, derived once. Each derivation
    /// is an HMAC-SHA256, which dominates the per-row deterministic-share
    /// cost — batch paths hoist this out of the row loop.
    fn coeff_prfs(&self, key: &DomainKey) -> Vec<SipHash24> {
        (1..self.k).map(|j| key.coeff_prf(j)).collect()
    }

    fn deterministic_poly_with(&self, secret: u64, prfs: &[SipHash24]) -> Poly {
        let mut coeffs = Vec::with_capacity(self.k);
        coeffs.push(Fp::from_u64(secret));
        for (j, prf) in prfs.iter().enumerate() {
            // Two PRF outputs folded to cover the 61-bit field closely; the
            // tiny bias is irrelevant for a deterministic index.
            let raw = prf.hash_u64(secret);
            let mut c = Fp::from_u64(raw);
            if j + 1 == self.k - 1 && c.is_zero() {
                c = Fp::ONE; // keep the polynomial at full degree
            }
            coeffs.push(c);
        }
        Poly::new(coeffs)
    }

    fn eval_all(&self, poly: &Poly) -> Vec<FieldShare> {
        self.points
            .expose()
            .iter()
            .enumerate()
            .map(|(provider, &x)| FieldShare {
                provider,
                y: poly.eval(x),
            })
            .collect()
    }

    /// Reconstruct the secret from at least `k` shares.
    pub fn reconstruct(&self, shares: &[FieldShare]) -> Result<Fp, SssError> {
        if shares.len() < self.k {
            return Err(SssError::NotEnoughShares {
                needed: self.k,
                got: shares.len(),
            });
        }
        let mut pts = Vec::with_capacity(self.k);
        for s in &shares[..self.k] {
            let x = self.point(s.provider)?;
            if pts.iter().any(|&(px, _)| px == x) {
                return Err(SssError::BadProviderIndex(s.provider));
            }
            pts.push((x, s.y));
        }
        lagrange_at_zero(&pts).map_err(|e| SssError::Arithmetic(e.to_string()))
    }

    /// Reconstruct and cross-check: uses *all* provided shares, verifying
    /// every k-subset agrees. Detects a corrupted share (Byzantine
    /// provider) whenever at least k honest shares are present.
    pub fn reconstruct_checked(&self, shares: &[FieldShare]) -> Result<Fp, SssError> {
        let first = self.reconstruct(shares)?;
        // Verify each extra share lies on the interpolated polynomial by
        // re-reconstructing with it swapped in.
        for i in self.k..shares.len() {
            let mut subset: Vec<FieldShare> = shares[..self.k - 1].to_vec();
            subset.push(shares[i]);
            if self.reconstruct(&subset)? != first {
                return Err(SssError::InconsistentShares);
            }
        }
        Ok(first)
    }

    // ---- batch codec ----

    /// Split a batch of secrets with fresh random polynomials
    /// ([`crate::ShareMode::Random`]). Consumes the RNG in the same order
    /// as the scalar loop, so the output is bit-identical to calling
    /// [`FieldSharing::split_random`] per secret.
    pub fn split_random_batch<R: Rng + ?Sized>(
        &self,
        secrets: &[Fp],
        rng: &mut R,
    ) -> Vec<Vec<FieldShare>> {
        secrets.iter().map(|&s| self.split_random(s, rng)).collect()
    }

    /// Split a batch of secrets in deterministic mode. Bit-identical to
    /// calling [`FieldSharing::split_deterministic`] per secret, but the
    /// per-coefficient PRFs (one HMAC-SHA256 derivation each) are derived
    /// once for the whole batch instead of once per row.
    pub fn split_deterministic_batch(
        &self,
        secrets: &[u64],
        key: &DomainKey,
    ) -> Vec<Vec<FieldShare>> {
        let prfs = self.coeff_prfs(key);
        secrets
            .iter()
            .map(|&s| self.eval_all(&self.deterministic_poly_with(s, &prfs)))
            .collect()
    }

    /// Precompute reconstruction weights for a fixed provider subset.
    ///
    /// `providers` must hold at least k distinct indices; providers beyond
    /// the first k become cross-checks, exactly as in
    /// [`FieldSharing::reconstruct_checked`].
    pub fn basis_for(&self, providers: &[usize]) -> Result<FieldBasis, SssError> {
        if providers.len() < self.k {
            return Err(SssError::NotEnoughShares {
                needed: self.k,
                got: providers.len(),
            });
        }
        let mut xs = Vec::with_capacity(providers.len());
        for &p in providers {
            let x = self.point(p)?;
            if xs.contains(&x) {
                return Err(SssError::BadProviderIndex(p));
            }
            xs.push(x);
        }
        let primary = lagrange_basis_at_zero(&xs[..self.k])
            .map_err(|e| SssError::Arithmetic(e.to_string()))?;
        let mut swaps = Vec::with_capacity(providers.len() - self.k);
        for extra in &xs[self.k..] {
            let mut sub: Vec<Fp> = xs[..self.k - 1].to_vec();
            sub.push(*extra);
            swaps.push(
                lagrange_basis_at_zero(&sub).map_err(|e| SssError::Arithmetic(e.to_string()))?,
            );
        }
        Ok(FieldBasis {
            k: self.k,
            primary,
            swaps,
        })
    }

    /// Reconstruct a batch of rows all shared by the same provider subset:
    /// one basis solve plus one dot product per row, with any shares
    /// beyond k cross-checked per row. Semantically equivalent to calling
    /// [`FieldSharing::reconstruct_checked`] on each row with the shares
    /// ordered like `providers`.
    ///
    /// `rows[r][i]` is the share provider `providers[i]` holds for row `r`.
    pub fn reconstruct_batch(
        &self,
        providers: &[usize],
        rows: &[Vec<Fp>],
    ) -> Result<Vec<Fp>, SssError> {
        let basis = self.basis_for(providers)?;
        rows.iter().map(|ys| basis.reconstruct_row(ys)).collect()
    }
}

/// Precomputed Lagrange-at-zero weights for one provider subset (built by
/// [`FieldSharing::basis_for`]), including swap bases for cross-checking
/// shares beyond the threshold. Reusing one basis across a whole batch —
/// or across queries hitting the same provider subset — replaces the
/// per-row O(k²) interpolation with a k-term dot product.
#[derive(Debug, Clone)]
pub struct FieldBasis {
    k: usize,
    /// Weights for the first k providers of the subset.
    primary: Vec<Fp>,
    /// For each extra provider `i` (subset position k+j): weights for the
    /// subset {first k−1 providers, provider i}, used to verify the extra
    /// share lies on the same polynomial.
    swaps: Vec<Vec<Fp>>,
}

impl FieldBasis {
    /// Number of providers this basis covers (k + extras).
    pub fn len(&self) -> usize {
        self.k + self.swaps.len()
    }

    /// A basis always covers at least one provider.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Reconstruct one row from shares ordered like the subset the basis
    /// was built from. Shares beyond k are cross-checked; a disagreement
    /// is [`SssError::InconsistentShares`].
    pub fn reconstruct_row(&self, ys: &[Fp]) -> Result<Fp, SssError> {
        if ys.len() < self.len() {
            return Err(SssError::NotEnoughShares {
                needed: self.len(),
                got: ys.len(),
            });
        }
        let first = lagrange_apply(&self.primary, &ys[..self.k]);
        for (swap, &extra) in self.swaps.iter().zip(&ys[self.k..]) {
            let head = lagrange_apply(&swap[..self.k - 1], &ys[..self.k - 1]);
            if head + extra * swap[self.k - 1] != first {
                return Err(SssError::InconsistentShares);
            }
        }
        Ok(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn fig1_sharing() -> FieldSharing {
        // Figure 1: n = 3, k = 2, X = {2, 4, 1}.
        FieldSharing::new(2, vec![Fp::from_u64(2), Fp::from_u64(4), Fp::from_u64(1)]).unwrap()
    }

    /// Reproduces the paper's Figure 1 exactly: salaries {10,20,40,60,80}
    /// shared with q10(x)=100x+10 … q80(x)=4x+80 yield the share columns
    /// shown in the figure, and any 2 providers reconstruct.
    #[test]
    fn figure1_share_table() {
        let sharing = fig1_sharing();
        // The paper fixes the random coefficients; we emulate by evaluating
        // the same polynomials directly.
        let polys: &[(u64, u64)] = &[(10, 100), (20, 5), (40, 1), (60, 2), (80, 4)];
        let expected_das1 = [210u64, 30, 42, 64, 88]; // x = 2
        let expected_das2 = [410u64, 40, 44, 68, 96]; // x = 4
        let expected_das3 = [110u64, 25, 41, 62, 84]; // x = 1
        for (row, &(salary, slope)) in polys.iter().enumerate() {
            let poly = dasp_field::Poly::new(vec![Fp::from_u64(salary), Fp::from_u64(slope)]);
            let s1 = poly.eval(Fp::from_u64(2)).to_u64();
            let s2 = poly.eval(Fp::from_u64(4)).to_u64();
            let s3 = poly.eval(Fp::from_u64(1)).to_u64();
            assert_eq!(s1, expected_das1[row]);
            assert_eq!(s2, expected_das2[row]);
            assert_eq!(s3, expected_das3[row]);
            // Any 2 of 3 shares reconstruct the salary.
            for pair in [(0usize, 1usize), (0, 2), (1, 2)] {
                let shares = [
                    FieldShare {
                        provider: pair.0,
                        y: Fp::from_u64([s1, s2, s3][pair.0]),
                    },
                    FieldShare {
                        provider: pair.1,
                        y: Fp::from_u64([s1, s2, s3][pair.1]),
                    },
                ];
                assert_eq!(sharing.reconstruct(&shares).unwrap(), Fp::from_u64(salary));
            }
        }
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(FieldSharing::new(0, vec![Fp::from_u64(1)]).is_err());
        assert!(FieldSharing::new(2, vec![Fp::from_u64(1)]).is_err());
        assert!(FieldSharing::new(1, vec![Fp::ZERO]).is_err());
        assert!(
            FieldSharing::new(1, vec![Fp::from_u64(3), Fp::from_u64(3)]).is_err(),
            "duplicate points"
        );
    }

    #[test]
    fn random_split_reconstructs_with_any_k_subset() {
        let mut rng = StdRng::seed_from_u64(11);
        let sharing = FieldSharing::generate(3, 5, &mut rng).unwrap();
        let secret = Fp::from_u64(123_456);
        let shares = sharing.split_random(secret, &mut rng);
        for a in 0..5 {
            for b in (a + 1)..5 {
                for c in (b + 1)..5 {
                    let subset = [shares[a], shares[b], shares[c]];
                    assert_eq!(sharing.reconstruct(&subset).unwrap(), secret);
                }
            }
        }
    }

    #[test]
    fn too_few_shares_fail() {
        let mut rng = StdRng::seed_from_u64(12);
        let sharing = FieldSharing::generate(3, 5, &mut rng).unwrap();
        let shares = sharing.split_random(Fp::from_u64(9), &mut rng);
        assert!(matches!(
            sharing.reconstruct(&shares[..2]),
            Err(SssError::NotEnoughShares { needed: 3, got: 2 })
        ));
    }

    #[test]
    fn duplicate_provider_rejected() {
        let mut rng = StdRng::seed_from_u64(13);
        let sharing = FieldSharing::generate(2, 3, &mut rng).unwrap();
        let shares = sharing.split_random(Fp::from_u64(9), &mut rng);
        let dup = [shares[0], shares[0]];
        assert!(sharing.reconstruct(&dup).is_err());
    }

    #[test]
    fn deterministic_shares_are_stable_and_equality_preserving() {
        let mut rng = StdRng::seed_from_u64(14);
        let sharing = FieldSharing::generate(2, 3, &mut rng).unwrap();
        let key = DomainKey::derive(b"master", "salary");
        let a = sharing.split_deterministic(20, &key);
        let b = sharing.split_deterministic(20, &key);
        let c = sharing.split_deterministic(30, &key);
        assert_eq!(a, b, "same value, same shares");
        for (i, (sa, sc)) in a.iter().zip(&c).enumerate() {
            assert_ne!(sa.y, sc.y, "different values differ at provider {i}");
        }
        // Query rewriting path matches stored shares.
        for (i, share) in a.iter().enumerate() {
            assert_eq!(sharing.deterministic_share(20, &key, i).unwrap(), share.y);
        }
        // And it reconstructs.
        assert_eq!(sharing.reconstruct(&a).unwrap(), Fp::from_u64(20));
    }

    #[test]
    fn reconstruct_checked_detects_corruption() {
        let mut rng = StdRng::seed_from_u64(15);
        let sharing = FieldSharing::generate(2, 4, &mut rng).unwrap();
        let mut shares = sharing.split_random(Fp::from_u64(555), &mut rng);
        assert_eq!(
            sharing.reconstruct_checked(&shares).unwrap(),
            Fp::from_u64(555)
        );
        shares[3].y += Fp::ONE; // corrupt one share
        assert_eq!(
            sharing.reconstruct_checked(&shares),
            Err(SssError::InconsistentShares)
        );
    }

    #[test]
    fn additive_homomorphism_of_shares() {
        // Provider-side SUM: add shares componentwise, reconstruct the sum.
        let mut rng = StdRng::seed_from_u64(16);
        let sharing = FieldSharing::generate(2, 3, &mut rng).unwrap();
        let key = DomainKey::derive(b"master", "salary");
        let values = [10u64, 20, 40, 60, 80];
        let mut sums = [Fp::ZERO; 3];
        for &v in &values {
            for s in sharing.split_deterministic(v, &key) {
                sums[s.provider] += s.y;
            }
        }
        let shares: Vec<FieldShare> = sums
            .iter()
            .enumerate()
            .map(|(provider, &y)| FieldShare { provider, y })
            .collect();
        assert_eq!(
            sharing.reconstruct(&shares).unwrap(),
            Fp::from_u64(values.iter().sum())
        );
    }

    #[test]
    fn basis_for_validates_subsets() {
        let mut rng = StdRng::seed_from_u64(21);
        let sharing = FieldSharing::generate(3, 5, &mut rng).unwrap();
        assert!(matches!(
            sharing.basis_for(&[0, 1]),
            Err(SssError::NotEnoughShares { needed: 3, got: 2 })
        ));
        assert!(matches!(
            sharing.basis_for(&[0, 1, 1]),
            Err(SssError::BadProviderIndex(1))
        ));
        assert!(matches!(
            sharing.basis_for(&[0, 1, 9]),
            Err(SssError::BadProviderIndex(9))
        ));
        let basis = sharing.basis_for(&[4, 2, 0, 1]).unwrap();
        assert_eq!(basis.len(), 4);
    }

    #[test]
    fn reconstruct_batch_detects_corruption_like_scalar() {
        let mut rng = StdRng::seed_from_u64(22);
        let sharing = FieldSharing::generate(2, 4, &mut rng).unwrap();
        let shares = sharing.split_random(Fp::from_u64(9999), &mut rng);
        let providers = [0usize, 2, 3];
        let good: Vec<Fp> = providers.iter().map(|&p| shares[p].y).collect();
        assert_eq!(
            sharing
                .reconstruct_batch(&providers, std::slice::from_ref(&good))
                .unwrap(),
            vec![Fp::from_u64(9999)]
        );
        let mut bad = good;
        bad[2] += Fp::ONE; // corrupt the cross-check share
        assert_eq!(
            sharing.reconstruct_batch(&providers, &[bad]),
            Err(SssError::InconsistentShares)
        );
    }

    proptest! {
        #[test]
        fn prop_split_batch_bit_identical_to_scalar(
            secrets in proptest::collection::vec(0u64..1 << 60, 1..40),
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let sharing = FieldSharing::generate(2, 4, &mut rng).unwrap();
            // Random mode: batch must consume the RNG exactly like the
            // scalar loop (clone the stream to compare).
            let fps: Vec<Fp> = secrets.iter().map(|&s| Fp::from_u64(s)).collect();
            let mut rng_scalar = rng.clone();
            let batch = sharing.split_random_batch(&fps, &mut rng);
            let scalar: Vec<Vec<FieldShare>> = fps
                .iter()
                .map(|&s| sharing.split_random(s, &mut rng_scalar))
                .collect();
            prop_assert_eq!(batch, scalar);
            // Deterministic mode: pure function of (key, value).
            let key = DomainKey::derive(b"master", "salary");
            let det_batch = sharing.split_deterministic_batch(&secrets, &key);
            let det_scalar: Vec<Vec<FieldShare>> = secrets
                .iter()
                .map(|&s| sharing.split_deterministic(s, &key))
                .collect();
            prop_assert_eq!(det_batch, det_scalar);
        }

        #[test]
        fn prop_reconstruct_batch_matches_checked_on_any_subset(
            secrets in proptest::collection::vec(0u64..1 << 60, 1..20),
            seed in any::<u64>(),
            subset_seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let sharing = FieldSharing::generate(3, 6, &mut rng).unwrap();
            // Pick a random ordered subset of 3..=6 providers.
            let mut subset_rng = StdRng::seed_from_u64(subset_seed);
            let mut providers: Vec<usize> = (0..6).collect();
            providers.shuffle(&mut subset_rng);
            let m = 3 + (subset_seed % 4) as usize;
            providers.truncate(m);
            let rows: Vec<Vec<FieldShare>> = secrets
                .iter()
                .map(|&s| sharing.split_random(Fp::from_u64(s), &mut rng))
                .collect();
            let ys: Vec<Vec<Fp>> = rows
                .iter()
                .map(|shares| providers.iter().map(|&p| shares[p].y).collect())
                .collect();
            let batch = sharing.reconstruct_batch(&providers, &ys).unwrap();
            for (row, (got, shares)) in batch.iter().zip(&rows).enumerate() {
                let subset: Vec<FieldShare> =
                    providers.iter().map(|&p| shares[p]).collect();
                prop_assert_eq!(
                    *got,
                    sharing.reconstruct_checked(&subset).unwrap(),
                    "row {}", row
                );
            }
        }

        #[test]
        fn prop_random_roundtrip(secret in 0u64..1 << 60, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let sharing = FieldSharing::generate(2, 3, &mut rng).unwrap();
            let shares = sharing.split_random(Fp::from_u64(secret), &mut rng);
            prop_assert_eq!(sharing.reconstruct(&shares).unwrap(), Fp::from_u64(secret));
        }

        #[test]
        fn prop_k_minus_1_shares_insufficient_by_construction(
            secret in 0u64..1000, seed in any::<u64>(),
        ) {
            // With k-1 shares, every candidate secret is consistent with
            // SOME polynomial — verify by constructing one explicitly for a
            // different secret (perfect secrecy witness).
            let mut rng = StdRng::seed_from_u64(seed);
            let sharing = FieldSharing::generate(2, 2, &mut rng).unwrap();
            let shares = sharing.split_random(Fp::from_u64(secret), &mut rng);
            // One share (x1, y1): for any other secret s', the line through
            // (0, s') and (x1, y1) is a valid sharing polynomial.
            let x1 = sharing.point(shares[0].provider).unwrap();
            let y1 = shares[0].y;
            let other = Fp::from_u64(secret + 1);
            let slope = (y1 - other) * x1.inv().unwrap();
            let poly = dasp_field::Poly::new(vec![other, slope]);
            prop_assert_eq!(poly.eval(x1), y1);
        }
    }
}
