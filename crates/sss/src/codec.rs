//! Non-numeric attribute encoding (paper §V-B).
//!
//! Bounded-length strings are padded with `*` (blank) and read as numbers
//! in base |alphabet|+1, so lexicographic order on padded strings equals
//! numeric order on codes. Exact-match, prefix, and string-range queries
//! thereby become numeric exact-match/range queries that the
//! order-preserving sharing of [`crate::opss`] executes server-side.
//!
//! The paper's example alphabet is `* A B … Z` (base 27); a general
//! constructor accepts any ordered alphabet.

use crate::SssError;

/// The paper's alphabet: blank + uppercase A–Z (base 27).
pub const UPPERCASE_ALPHABET: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// A fixed-width string-to-number codec over an ordered alphabet.
#[derive(Debug, Clone)]
pub struct StringCodec {
    alphabet: Vec<char>,
    width: usize,
}

impl StringCodec {
    /// Build a codec for strings of up to `width` characters over
    /// `alphabet` (blank/pad is implicit digit 0 and must not appear in
    /// the alphabet).
    pub fn new(alphabet: &str, width: usize) -> Result<Self, SssError> {
        let chars: Vec<char> = alphabet.chars().collect();
        if chars.is_empty() {
            return Err(SssError::BadParameters("empty alphabet".into()));
        }
        if width == 0 {
            return Err(SssError::BadParameters("width must be positive".into()));
        }
        // Codes must fit u64: (base)^width - 1 <= u64::MAX.
        let base = chars.len() as u128 + 1;
        let mut max = 0u128;
        for _ in 0..width {
            max = max * base + (base - 1);
            if max > u64::MAX as u128 {
                return Err(SssError::BadParameters(format!(
                    "alphabet size {} with width {width} overflows u64",
                    chars.len()
                )));
            }
        }
        for (i, c) in chars.iter().enumerate() {
            if chars[..i].contains(c) {
                return Err(SssError::BadParameters(format!("duplicate char {c:?}")));
            }
        }
        Ok(StringCodec {
            alphabet: chars,
            width,
        })
    }

    /// The paper's VARCHAR(w) codec: base 27 over `* A–Z`.
    pub fn uppercase(width: usize) -> Result<Self, SssError> {
        Self::new(UPPERCASE_ALPHABET, width)
    }

    /// Numeric base (alphabet size + 1 for the pad digit).
    pub fn base(&self) -> u64 {
        self.alphabet.len() as u64 + 1
    }

    /// Maximum encodable width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Exclusive upper bound of the code space (`base^width`).
    pub fn domain_size(&self) -> u64 {
        let mut n = 1u64;
        for _ in 0..self.width {
            n *= self.base();
        }
        n
    }

    fn digit(&self, c: char) -> Option<u64> {
        self.alphabet
            .iter()
            .position(|&a| a == c)
            .map(|i| i as u64 + 1)
    }

    /// Encode `s` (length ≤ width), padding on the right with the implicit
    /// blank. `"ABC"` with width 5 encodes as the digits `A B C * *`.
    pub fn encode(&self, s: &str) -> Result<u64, SssError> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() > self.width {
            return Err(SssError::BadParameters(format!(
                "string {s:?} longer than width {}",
                self.width
            )));
        }
        let mut code = 0u64;
        for pos in 0..self.width {
            let d = match chars.get(pos) {
                Some(&c) => self.digit(c).ok_or_else(|| {
                    SssError::BadParameters(format!("char {c:?} not in alphabet"))
                })?,
                None => 0,
            };
            code = code * self.base() + d;
        }
        Ok(code)
    }

    /// Decode a code back to a (right-trimmed) string. Returns `None` for
    /// codes containing a pad digit before a non-pad digit (not produced
    /// by [`StringCodec::encode`]).
    pub fn decode(&self, mut code: u64) -> Option<String> {
        if code >= self.domain_size() {
            return None;
        }
        let mut digits = vec![0u64; self.width];
        for pos in (0..self.width).rev() {
            digits[pos] = code % self.base();
            code /= self.base();
        }
        let mut out = String::with_capacity(self.width);
        let mut seen_pad = false;
        for d in digits {
            if d == 0 {
                seen_pad = true;
            } else {
                if seen_pad {
                    return None; // pad in the middle: not a valid encoding
                }
                out.push(self.alphabet[d as usize - 1]);
            }
        }
        Some(out)
    }

    /// The inclusive code range covering every string with prefix
    /// `prefix` — turns `name LIKE 'AB%'` into a numeric range (§V-B).
    pub fn prefix_range(&self, prefix: &str) -> Result<(u64, u64), SssError> {
        let chars: Vec<char> = prefix.chars().collect();
        if chars.len() > self.width {
            return Err(SssError::BadParameters("prefix longer than width".into()));
        }
        let lo = self.encode(prefix)?;
        // hi: prefix followed by the maximal digit everywhere.
        let mut hi = 0u64;
        for pos in 0..self.width {
            let d = match chars.get(pos) {
                Some(&c) => self.digit(c).ok_or_else(|| {
                    SssError::BadParameters(format!("char {c:?} not in alphabet"))
                })?,
                None => self.base() - 1,
            };
            hi = hi * self.base() + d;
        }
        Ok((lo, hi))
    }

    /// The inclusive code range for the string interval `[lo, hi]` — turns
    /// `name BETWEEN 'ALBERT' AND 'JACK'` into a numeric range.
    pub fn string_range(&self, lo: &str, hi: &str) -> Result<(u64, u64), SssError> {
        let lo_code = self.encode(lo)?;
        // hi bound covers all strings that start with `hi` too.
        let (_, hi_code) = self.prefix_range(hi)?;
        if lo_code > hi_code {
            return Err(SssError::BadParameters("empty string range".into()));
        }
        Ok((lo_code, hi_code))
    }
}

/// A client-side dictionary codec for *arbitrary* strings (any alphabet,
/// any length) — the paper's §V-B nod to "potentially compressed data".
///
/// Values are mapped to dense integer codes in insertion order. The
/// dictionary lives at the client (it is part of the secret state, like
/// the evaluation points): the provider sees only shares of opaque codes.
/// Because codes carry no order, dictionary columns pair with
/// [`crate::ShareMode::Random`] or [`crate::ShareMode::Deterministic`] —
/// equality and joins work; ranges do not (use [`StringCodec`] for
/// order-dependent text).
#[derive(Debug, Clone, Default)]
pub struct DictionaryCodec {
    forward: std::collections::HashMap<String, u64>,
    reverse: Vec<String>,
}

impl DictionaryCodec {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// True iff nothing interned yet.
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }

    /// Intern `s` (idempotent), returning its code. Codes start at 0 and
    /// are dense, so a `Numeric {{ domain_size }}` column sized to the
    /// expected cardinality holds them.
    pub fn intern(&mut self, s: &str) -> u64 {
        if let Some(&code) = self.forward.get(s) {
            return code;
        }
        let code = self.reverse.len() as u64;
        self.forward.insert(s.to_string(), code);
        self.reverse.push(s.to_string());
        code
    }

    /// Code of an already-interned string — for query rewriting. `None`
    /// means the value cannot exist in the outsourced data (the query can
    /// short-circuit to an empty result without touching a provider).
    pub fn lookup(&self, s: &str) -> Option<u64> {
        self.forward.get(s).copied()
    }

    /// The string behind a code.
    pub fn resolve(&self, code: u64) -> Option<&str> {
        self.reverse.get(code as usize).map(|s| s.as_str())
    }

    /// Serialize for escrow alongside the client keys (strings are
    /// length-prefixed; order encodes the codes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.reverse.len() as u64).to_le_bytes());
        for s in &self.reverse {
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        out
    }

    /// Inverse of [`DictionaryCodec::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut dict = Self::new();
        let mut at = 0usize;
        let take8 = |at: &mut usize| -> Option<u64> {
            let v = u64::from_le_bytes(bytes.get(*at..*at + 8)?.try_into().ok()?);
            *at += 8;
            Some(v)
        };
        let n = take8(&mut at)?;
        for _ in 0..n {
            let len = take8(&mut at)? as usize;
            let s = std::str::from_utf8(bytes.get(at..at + len)?).ok()?;
            at += len;
            dict.intern(s);
        }
        if at == bytes.len() {
            Some(dict)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn codec() -> StringCodec {
        StringCodec::uppercase(5).unwrap()
    }

    #[test]
    fn paper_example_abc() {
        // "ABC**" reads as digits (1,2,3,0,0) in base 27.
        let c = codec();
        let expect = ((27 + 2) * 27 + 3) * 27 * 27;
        assert_eq!(c.encode("ABC").unwrap(), expect);
    }

    #[test]
    fn paper_example_fatih() {
        // "FATIH" uses all five positions: F=6, A=1, T=20, I=9, H=8.
        let c = codec();
        let expect = (((6u64 * 27 + 1) * 27 + 20) * 27 + 9) * 27 + 8;
        assert_eq!(c.encode("FATIH").unwrap(), expect);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = codec();
        for s in ["", "A", "Z", "AB", "HELLO", "JOHN"] {
            assert_eq!(c.decode(c.encode(s).unwrap()).as_deref(), Some(s));
        }
    }

    #[test]
    fn order_matches_lexicographic_on_padded_strings() {
        let c = codec();
        let names = ["ALBERT", "JACK"]; // too long for width 5? ALBERT is 6.
        assert!(c.encode(names[0]).is_err(), "width guard works");
        let names = ["ABE", "AL", "ALF", "BOB", "JACK", "JOHN", "ZZ"];
        let codes: Vec<u64> = names.iter().map(|n| c.encode(n).unwrap()).collect();
        for w in codes.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn prefix_range_covers_exactly_prefixed_strings() {
        let c = codec();
        let (lo, hi) = c.prefix_range("AB").unwrap();
        for s in ["AB", "ABA", "ABZ", "ABZZZ", "ABC"] {
            let code = c.encode(s).unwrap();
            assert!(code >= lo && code <= hi, "{s} should be in range");
        }
        for s in ["AA", "AC", "B", "A", ""] {
            let code = c.encode(s).unwrap();
            assert!(code < lo || code > hi, "{s} should be outside");
        }
    }

    #[test]
    fn string_range_inclusive_semantics() {
        let c = codec();
        let (lo, hi) = c.string_range("AL", "JACK").unwrap();
        for s in ["AL", "ALF", "BOB", "JACK", "JACKZ"] {
            let code = c.encode(s).unwrap();
            assert!(code >= lo && code <= hi, "{s}");
        }
        for s in ["AK", "JAD", "Z"] {
            let code = c.encode(s).unwrap();
            assert!(code < lo || code > hi, "{s}");
        }
        assert!(c.string_range("Z", "A").is_err());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let c = codec();
        assert!(c.encode("toolongname").is_err());
        assert!(c.encode("abc").is_err(), "lowercase not in alphabet");
        assert!(StringCodec::new("", 5).is_err());
        assert!(StringCodec::new("AB", 0).is_err());
        assert!(StringCodec::new("AA", 3).is_err(), "duplicate char");
        assert!(StringCodec::uppercase(14).is_err(), "27^14 > u64::MAX");
    }

    #[test]
    fn decode_rejects_interior_pads_and_out_of_range() {
        let c = codec();
        // Code with digits (1, 0, 1, 0, 0): pad before a non-pad.
        let bad = (27 * 27 + 1) * 27 * 27;
        assert_eq!(c.decode(bad), None);
        assert_eq!(c.decode(c.domain_size()), None);
    }

    #[test]
    fn domain_size_is_base_pow_width() {
        assert_eq!(
            StringCodec::uppercase(3).unwrap().domain_size(),
            27 * 27 * 27
        );
    }

    #[test]
    fn dictionary_intern_lookup_resolve() {
        let mut d = DictionaryCodec::new();
        let a = d.intern("müller, 株式会社");
        let b = d.intern("plain ascii");
        assert_eq!(d.intern("müller, 株式会社"), a, "idempotent");
        assert_ne!(a, b);
        assert_eq!(d.lookup("plain ascii"), Some(b));
        assert_eq!(d.lookup("never seen"), None);
        assert_eq!(d.resolve(a), Some("müller, 株式会社"));
        assert_eq!(d.resolve(99), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn dictionary_codes_are_dense_from_zero() {
        let mut d = DictionaryCodec::new();
        for i in 0..100u64 {
            assert_eq!(d.intern(&format!("s{i}")), i);
        }
    }

    #[test]
    fn dictionary_escrow_roundtrip() {
        let mut d = DictionaryCodec::new();
        for s in ["alpha", "", "β", "alpha again"] {
            d.intern(s);
        }
        let bytes = d.to_bytes();
        let back = DictionaryCodec::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), d.len());
        for s in ["alpha", "", "β", "alpha again"] {
            assert_eq!(back.lookup(s), d.lookup(s), "{s:?}");
        }
        // Truncated and padded inputs are rejected.
        assert!(DictionaryCodec::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(DictionaryCodec::from_bytes(&padded).is_none());
    }

    proptest! {
        #[test]
        fn prop_dictionary_roundtrip(strings in proptest::collection::vec(".{0,20}", 0..30)) {
            let mut d = DictionaryCodec::new();
            for s in &strings {
                d.intern(s);
            }
            let back = DictionaryCodec::from_bytes(&d.to_bytes()).unwrap();
            for s in &strings {
                prop_assert_eq!(back.lookup(s), d.lookup(s));
            }
        }

        #[test]
        fn prop_roundtrip(s in "[A-Z]{0,5}") {
            let c = codec();
            let decoded = c.decode(c.encode(&s).unwrap());
            prop_assert_eq!(decoded.as_deref(), Some(s.as_str()));
        }

        #[test]
        fn prop_order_preserved(a in "[A-Z]{0,5}", b in "[A-Z]{0,5}") {
            let c = codec();
            let ca = c.encode(&a).unwrap();
            let cb = c.encode(&b).unwrap();
            // Padded-string lexicographic order == code order. Right-pad
            // comparison: shorter string padded with a char below 'A'.
            let pad = |s: &str| {
                let mut v: Vec<u8> = s.bytes().collect();
                v.resize(5, 0);
                v
            };
            prop_assert_eq!(pad(&a).cmp(&pad(&b)), ca.cmp(&cb));
        }
    }
}
