//! Order-preserving polynomial secret sharing — the paper's §IV scheme.
//!
//! For a domain `DOM = [0, N)` each coefficient domain `DOM_j` is divided
//! into `N` equal slots; the coefficient for value `v` is drawn from slot
//! `v` by a keyed hash:
//!
//! ```text
//! coeff_j(v) = v · W + 1 + (h_j(v) mod W)        (W = slot width)
//! p_v(x)     = coeff_d(v)·x^d + … + coeff_1(v)·x + v
//! ```
//!
//! Because every `coeff_j` is strictly increasing in `v` and the secret
//! evaluation points are positive, `v₁ < v₂ ⇒ p_{v₁}(xᵢ) < p_{v₂}(xᵢ)` at
//! every provider — so providers can evaluate range predicates on shares
//! without learning values. Per the paper's security analysis, a provider
//! observes only the order (plus a loose upper bound on the sum of domain
//! sizes); the keyed jitter `h_j(v) mod W` breaks the affine relation that
//! sinks the straw-man monotone-function construction.
//!
//! Arithmetic is exact (`i128`); parameter bounds below guarantee no
//! overflow for shares or for provider-side sums of up to 2³⁰ shares.

use crate::{DomainKey, SssError};
use dasp_crypto::siphash::SipHash24;
use dasp_field::{
    rational_apply_at_zero, rational_basis_at_zero, rational_interpolate_at_zero, Rational, Secret,
};

/// Parameters of an order-preserving sharing.
///
/// Default bounds keep every share below 2⁶⁴ so i128 sums of a billion
/// shares cannot overflow: `domain_size ≤ 2³²`, `slot_bits ≤ 12`,
/// `x points ≤ 64`, `degree ≤ 3`.
#[derive(Clone)]
pub struct OpssParams {
    /// Polynomial degree d; threshold k = d + 1.
    pub degree: usize,
    /// log₂ of the slot width W.
    pub slot_bits: u32,
    /// Exclusive upper bound of the value domain.
    pub domain_size: u64,
    /// Secret evaluation points, one per provider (distinct, in [1, 64]).
    /// Client-secret exactly like field-mode X (§III): a provider that
    /// learns its point can binary-search the slotted construction.
    points: Secret<Vec<u32>>,
}

// dasp::allow(S1): sanctioned redacting impl — the points X stay hidden.
impl std::fmt::Debug for OpssParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OpssParams(degree={}, slot_bits={}, domain_size={}, n={}, X=<redacted>)",
            self.degree,
            self.slot_bits,
            self.domain_size,
            self.n()
        )
    }
}

impl OpssParams {
    /// Validate and build. See type docs for the bounds.
    pub fn new(
        degree: usize,
        slot_bits: u32,
        domain_size: u64,
        points: Vec<u32>,
    ) -> Result<Self, SssError> {
        if degree == 0 || degree > 3 {
            return Err(SssError::BadParameters("degree must be 1..=3".into()));
        }
        if slot_bits == 0 || slot_bits > 12 {
            return Err(SssError::BadParameters("slot_bits must be 1..=12".into()));
        }
        if domain_size == 0 || domain_size > 1 << 32 {
            return Err(SssError::BadParameters(
                "domain_size must be in 1..=2^32".into(),
            ));
        }
        if points.len() <= degree {
            return Err(SssError::BadParameters(format!(
                "need at least k = {} providers for degree {degree}",
                degree + 1
            )));
        }
        for (i, &x) in points.iter().enumerate() {
            if x == 0 || x > 64 {
                return Err(SssError::BadParameters("x points must be in 1..=64".into()));
            }
            if points[..i].contains(&x) {
                return Err(SssError::BadParameters("duplicate x point".into()));
            }
        }
        Ok(OpssParams {
            degree,
            slot_bits,
            domain_size,
            points: Secret::new(points),
        })
    }

    /// Convenience: degree-1 (k=2) sharing for `n` providers with points
    /// 1, 2, …, n and a 2³² domain.
    pub fn simple(n: usize) -> Result<Self, SssError> {
        Self::new(1, 12, 1 << 32, (1..=n as u32).collect())
    }

    /// Threshold k = degree + 1.
    pub fn k(&self) -> usize {
        self.degree + 1
    }

    /// Number of providers.
    pub fn n(&self) -> usize {
        self.points.expose().len()
    }

    /// The secret evaluation point of provider `i`, if in range.
    pub fn point(&self, i: usize) -> Option<u32> {
        self.points.expose().get(i).copied()
    }

    /// Borrow the raw evaluation points. Client-side use only: the result
    /// must never be logged or serialized onto the wire.
    pub fn expose_points(&self) -> &[u32] {
        self.points.expose()
    }
}

/// An order-preserving sharer for one value domain.
#[derive(Clone)]
pub struct OpSharing {
    params: OpssParams,
    /// The per-coefficient jitter PRFs, derived once at construction.
    /// Each derivation costs an HMAC-SHA256; deriving them lazily made a
    /// single share evaluation — and hence every binary-search probe —
    /// pay `degree` HMACs. Key-derived, so wrapped like the key itself.
    prfs: Secret<Vec<SipHash24>>,
}

// dasp::allow(S1): sanctioned redacting impl — PRF state never prints.
impl std::fmt::Debug for OpSharing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OpSharing(params={:?}, prfs=<redacted>)", self.params)
    }
}

impl OpSharing {
    /// Bind parameters to a domain key.
    pub fn new(params: OpssParams, key: DomainKey) -> Self {
        let prfs = Secret::new((1..=params.degree).map(|j| key.coeff_prf(j)).collect());
        OpSharing { params, prfs }
    }

    /// The parameters.
    pub fn params(&self) -> &OpssParams {
        &self.params
    }

    /// Coefficient of the degree-`j` term for value `v` (slotted + jittered).
    fn coeff(&self, j: usize, v: u64) -> i128 {
        let w = 1u64 << self.params.slot_bits;
        let jitter = self.prfs.expose()[j - 1].hash_u64(v) & (w - 1);
        (v as i128) * (w as i128) + 1 + jitter as i128
    }

    /// The share provider `i` holds for value `v`: p_v(xᵢ).
    pub fn share_for(&self, v: u64, provider: usize) -> Result<i128, SssError> {
        if v >= self.params.domain_size {
            return Err(SssError::OutOfDomain {
                value: v,
                domain_size: self.params.domain_size,
            });
        }
        let x = self
            .params
            .point(provider)
            .ok_or(SssError::BadProviderIndex(provider))?;
        let x = x as i128;
        // Horner over coefficients coeff_d … coeff_1, constant term v.
        let mut acc = 0i128;
        for j in (1..=self.params.degree).rev() {
            acc = (acc + self.coeff(j, v)) * x;
        }
        Ok(acc + v as i128)
    }

    /// All n shares of `v`.
    pub fn share(&self, v: u64) -> Result<Vec<i128>, SssError> {
        (0..self.params.n()).map(|i| self.share_for(v, i)).collect()
    }

    /// Reconstruct `v` from a single share by binary search over the
    /// deterministic monotone construction (requires the domain key — this
    /// is the client's fast path, O(log N) share evaluations).
    pub fn reconstruct_search(
        &self,
        provider: usize,
        share: i128,
    ) -> Result<Option<u64>, SssError> {
        if provider >= self.params.n() {
            return Err(SssError::BadProviderIndex(provider));
        }
        let (mut lo, mut hi) = (0u64, self.params.domain_size - 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.share_for(mid, provider)? < share {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(if self.share_for(lo, provider)? == share {
            Some(lo)
        } else {
            None
        })
    }

    /// Reconstruct from ≥ k shares by exact rational interpolation at 0
    /// (no domain key needed — also the path for reconstructing *sums* of
    /// shares, which have no slot structure). Returns `Ok(None)` when the
    /// interpolated constant term is not an integer, which signals share
    /// corruption.
    pub fn reconstruct_interpolate(
        &self,
        shares: &[(usize, i128)],
    ) -> Result<Option<i128>, SssError> {
        let k = self.params.k();
        if shares.len() < k {
            return Err(SssError::NotEnoughShares {
                needed: k,
                got: shares.len(),
            });
        }
        let mut pts = Vec::with_capacity(k);
        for &(provider, y) in &shares[..k] {
            let x = self
                .params
                .point(provider)
                .ok_or(SssError::BadProviderIndex(provider))?;
            if pts.iter().any(|&(px, _)| px == x as i128) {
                return Err(SssError::BadProviderIndex(provider));
            }
            pts.push((x as i128, y));
        }
        rational_interpolate_at_zero(&pts).map_err(|e| SssError::Arithmetic(e.to_string()))
    }

    /// Translate a client-side value range `[lo, hi]` into the share-space
    /// range provider `i` should scan — the §V-A range-query rewriting.
    pub fn range_for(&self, lo: u64, hi: u64, provider: usize) -> Result<(i128, i128), SssError> {
        if lo > hi {
            return Err(SssError::BadParameters("empty range".into()));
        }
        Ok((self.share_for(lo, provider)?, self.share_for(hi, provider)?))
    }

    // ---- batch codec ----

    /// All n shares for each value in a batch: `out[r] == self.share(vs[r])`,
    /// bit-identical. The coefficients of each value's polynomial are
    /// computed once and reused across providers; the scalar path
    /// recomputes every coefficient (one keyed hash each) per provider.
    pub fn share_batch(&self, vs: &[u64]) -> Result<Vec<Vec<i128>>, SssError> {
        let d = self.params.degree;
        let mut out = Vec::with_capacity(vs.len());
        let mut coeffs = vec![0i128; d];
        for &v in vs {
            if v >= self.params.domain_size {
                return Err(SssError::OutOfDomain {
                    value: v,
                    domain_size: self.params.domain_size,
                });
            }
            for j in 1..=d {
                coeffs[j - 1] = self.coeff(j, v);
            }
            let row: Vec<i128> = self
                .params
                .expose_points()
                .iter()
                .map(|&x| {
                    let x = x as i128;
                    let mut acc = 0i128;
                    for j in (1..=d).rev() {
                        acc = (acc + coeffs[j - 1]) * x;
                    }
                    acc + v as i128
                })
                .collect();
            out.push(row);
        }
        Ok(out)
    }

    /// Decode a batch of shares all held by the same provider. Equivalent
    /// to calling [`OpSharing::reconstruct_search`] per share, with two
    /// batch-only savings: shares are visited in sorted order so each
    /// binary search starts at the previous hit (order preservation makes
    /// the decoded values monotone in share order, so the search space
    /// only ever narrows), and exact duplicate shares are answered
    /// without searching at all. Probes are recomputed rather than
    /// memoized: a probe is one keyed hash plus a Horner step, cheaper
    /// than a hash-map round trip.
    pub fn reconstruct_search_batch(
        &self,
        provider: usize,
        shares: &[i128],
    ) -> Result<Vec<Option<u64>>, SssError> {
        if provider >= self.params.n() {
            return Err(SssError::BadProviderIndex(provider));
        }
        let mut order: Vec<usize> = (0..shares.len()).collect();
        order.sort_by_key(|&i| shares[i]);
        let mut out = vec![None; shares.len()];
        let probe = |v: u64| self.share_for(v, provider);
        let mut floor = 0u64;
        let mut last: Option<(i128, Option<u64>)> = None;
        for &i in &order {
            let target = shares[i];
            if let Some((s, hit)) = last {
                if s == target {
                    out[i] = hit; // duplicate share in the batch
                    continue;
                }
            }
            // Invariant: every value below `floor` has a share below any
            // share processed so far, so the search window shrinks as the
            // sorted batch advances.
            let (mut lo, mut hi) = (floor, self.params.domain_size - 1);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if probe(mid)? < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            let hit = (probe(lo)? == target).then_some(lo);
            out[i] = hit;
            floor = lo;
            last = Some((target, hit));
        }
        Ok(out)
    }

    /// Precompute the exact-rational interpolation weights for a provider
    /// subset of exactly k providers — reconstructing each row (or share
    /// sum) over the same subset is then k rational multiply-adds.
    pub fn interpolation_basis(&self, providers: &[usize]) -> Result<Vec<Rational>, SssError> {
        let k = self.params.k();
        if providers.len() < k {
            return Err(SssError::NotEnoughShares {
                needed: k,
                got: providers.len(),
            });
        }
        let mut xs = Vec::with_capacity(k);
        for &p in &providers[..k] {
            let x = self.params.point(p).ok_or(SssError::BadProviderIndex(p))?;
            if xs.contains(&(x as i128)) {
                return Err(SssError::BadProviderIndex(p));
            }
            xs.push(x as i128);
        }
        rational_basis_at_zero(&xs).map_err(|e| SssError::Arithmetic(e.to_string()))
    }

    /// Reconstruct a batch of rows all shared by the same k-provider
    /// subset via precomputed rational weights. `rows[r][i]` is the share
    /// provider `providers[i]` holds for row `r`; per-row results match
    /// [`OpSharing::reconstruct_interpolate`] (including `None` for
    /// corrupted rows).
    pub fn reconstruct_interpolate_batch(
        &self,
        providers: &[usize],
        rows: &[Vec<i128>],
    ) -> Result<Vec<Option<i128>>, SssError> {
        let k = self.params.k();
        let weights = self.interpolation_basis(providers)?;
        rows.iter()
            .map(|ys| {
                if ys.len() < k {
                    return Err(SssError::NotEnoughShares {
                        needed: k,
                        got: ys.len(),
                    });
                }
                rational_apply_at_zero(&weights, &ys[..k])
                    .map_err(|e| SssError::Arithmetic(e.to_string()))
            })
            .collect()
    }
}

/// The straw-man *monotone affine* construction the paper shows to be
/// insecure (coefficients are fixed affine functions of the secret, so one
/// cracked value reveals all). Kept for the E13 leakage ablation.
#[derive(Debug, Clone)]
pub struct AffineStrawman {
    /// Multipliers of the affine coefficient functions.
    pub slopes: [i128; 3],
    /// Offsets of the affine coefficient functions.
    pub offsets: [i128; 3],
}

impl AffineStrawman {
    /// The paper's example: f_a(v)=3v+10, f_b(v)=v+27, f_c(v)=5v+1.
    pub fn paper_example() -> Self {
        AffineStrawman {
            slopes: [5, 1, 3],
            offsets: [1, 27, 10],
        }
    }

    /// Share of value `v` at point `x` — reduces to `A·v + B` with
    /// constants A, B shared by *all* values, the paper's break.
    pub fn share_for(&self, v: u64, x: u32) -> i128 {
        let x = x as i128;
        let v = v as i128;
        let c1 = self.slopes[0] * v + self.offsets[0];
        let c2 = self.slopes[1] * v + self.offsets[1];
        let c3 = self.slopes[2] * v + self.offsets[2];
        c3 * x * x * x + c2 * x * x + c1 * x + v
    }

    /// The affine break: recover v₂ from one known (v₁, share₁) pair and
    /// share₂, using share = A·v + B.
    pub fn break_with_known_pair(&self, x: u32, v1: u64, share2: i128) -> i128 {
        let x = x as i128;
        let a = self.slopes[2] * x * x * x + self.slopes[1] * x * x + self.slopes[0] * x + 1;
        let b = self.offsets[2] * x * x * x + self.offsets[1] * x * x + self.offsets[0] * x;
        let _ = v1; // the pair is only needed to *confirm* A and B
        (share2 - b) / a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sharing(degree: usize) -> OpSharing {
        let params = OpssParams::new(degree, 12, 1 << 20, vec![2, 4, 1, 7, 11]).unwrap();
        OpSharing::new(params, DomainKey::derive(b"master", "salary"))
    }

    #[test]
    fn params_validation() {
        assert!(OpssParams::new(0, 12, 100, vec![1, 2]).is_err());
        assert!(OpssParams::new(4, 12, 100, vec![1, 2, 3, 4, 5]).is_err());
        assert!(OpssParams::new(1, 0, 100, vec![1, 2]).is_err());
        assert!(OpssParams::new(1, 13, 100, vec![1, 2]).is_err());
        assert!(OpssParams::new(1, 12, 0, vec![1, 2]).is_err());
        assert!(OpssParams::new(1, 12, 100, vec![1]).is_err(), "k > n");
        assert!(OpssParams::new(1, 12, 100, vec![1, 1]).is_err(), "dup x");
        assert!(OpssParams::new(1, 12, 100, vec![0, 1]).is_err(), "x = 0");
        assert!(OpssParams::new(1, 12, 100, vec![65, 1]).is_err(), "x > 64");
    }

    #[test]
    fn order_preserved_at_every_provider() {
        let s = sharing(3);
        for provider in 0..5 {
            let mut prev = None;
            for v in (0..5000u64).step_by(7) {
                let share = s.share_for(v, provider).unwrap();
                if let Some(p) = prev {
                    assert!(share > p, "provider={provider} v={v}");
                }
                prev = Some(share);
            }
        }
    }

    #[test]
    fn equal_values_equal_shares() {
        let s = sharing(2);
        assert_eq!(s.share(777).unwrap(), s.share(777).unwrap());
    }

    #[test]
    fn out_of_domain_rejected() {
        let s = sharing(1);
        assert!(matches!(
            s.share_for(1 << 20, 0),
            Err(SssError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn search_reconstruction_roundtrip() {
        let s = sharing(3);
        for v in [0u64, 1, 531, 99_999, (1 << 20) - 1] {
            for provider in 0..5 {
                let share = s.share_for(v, provider).unwrap();
                assert_eq!(s.reconstruct_search(provider, share).unwrap(), Some(v));
            }
        }
    }

    #[test]
    fn search_rejects_non_shares() {
        let s = sharing(2);
        let share = s.share_for(1000, 0).unwrap();
        assert_eq!(s.reconstruct_search(0, share + 1).unwrap(), None);
    }

    #[test]
    fn interpolation_reconstruction_roundtrip() {
        let s = sharing(3); // k = 4
        for v in [0u64, 42, 123_456] {
            let shares = s.share(v).unwrap();
            let pairs: Vec<(usize, i128)> =
                shares.iter().enumerate().map(|(i, &y)| (i, y)).collect();
            assert_eq!(s.reconstruct_interpolate(&pairs).unwrap(), Some(v as i128));
            // A different k-subset also works.
            let subset = [pairs[4], pairs[2], pairs[1], pairs[3]];
            assert_eq!(s.reconstruct_interpolate(&subset).unwrap(), Some(v as i128));
        }
    }

    #[test]
    fn interpolation_needs_k_shares() {
        let s = sharing(2); // k = 3
        let shares = s.share(5).unwrap();
        let pairs: Vec<(usize, i128)> = shares.iter().enumerate().map(|(i, &y)| (i, y)).collect();
        assert!(matches!(
            s.reconstruct_interpolate(&pairs[..2]),
            Err(SssError::NotEnoughShares { needed: 3, got: 2 })
        ));
    }

    #[test]
    fn corrupted_share_detected_as_non_integer_or_wrong() {
        let s = sharing(3);
        let mut shares = s.share(9999).unwrap();
        shares[0] += 1;
        let pairs: Vec<(usize, i128)> = shares.iter().enumerate().map(|(i, &y)| (i, y)).collect();
        let got = s.reconstruct_interpolate(&pairs).unwrap();
        assert_ne!(got, Some(9999), "corruption must not reconstruct cleanly");
    }

    #[test]
    fn additive_homomorphism_for_sums() {
        // Server-side SUM (§V-A): sum shares per provider, interpolate once.
        let s = sharing(3);
        let values = [10u64, 20, 40, 60, 80, 123, 999_983];
        let mut sums = vec![0i128; s.params().n()];
        for &v in &values {
            for (i, y) in s.share(v).unwrap().into_iter().enumerate() {
                sums[i] += y;
            }
        }
        let pairs: Vec<(usize, i128)> = sums.iter().enumerate().map(|(i, &y)| (i, y)).collect();
        let total: u64 = values.iter().sum();
        assert_eq!(
            s.reconstruct_interpolate(&pairs).unwrap(),
            Some(total as i128)
        );
    }

    #[test]
    fn range_rewriting_bounds_are_shares() {
        let s = sharing(1);
        let (lo, hi) = s.range_for(100, 500, 2).unwrap();
        assert_eq!(lo, s.share_for(100, 2).unwrap());
        assert_eq!(hi, s.share_for(500, 2).unwrap());
        assert!(s.range_for(500, 100, 2).is_err());
        // Every in-range value's share falls inside the rewritten bounds.
        for v in [100u64, 101, 250, 499, 500] {
            let y = s.share_for(v, 2).unwrap();
            assert!(y >= lo && y <= hi);
        }
        // And out-of-range values fall outside.
        for v in [0u64, 99, 501, 10_000] {
            let y = s.share_for(v, 2).unwrap();
            assert!(y < lo || y > hi);
        }
    }

    #[test]
    fn different_keys_give_unrelated_jitter() {
        let params = OpssParams::new(1, 12, 1 << 20, vec![3, 5]).unwrap();
        let a = OpSharing::new(params.clone(), DomainKey::derive(b"m", "a"));
        let b = OpSharing::new(params, DomainKey::derive(b"m", "b"));
        let diff = (0..200u64)
            .filter(|&v| a.share_for(v, 0).unwrap() != b.share_for(v, 0).unwrap())
            .count();
        assert!(diff > 150, "only {diff} of 200 differ");
    }

    #[test]
    fn strawman_break_recovers_all_secrets() {
        // The paper's §IV negative result: with affine coefficient
        // functions, cracking one (value, share) pair reveals every value.
        let straw = AffineStrawman::paper_example();
        let x = 9;
        let known_v = 1234u64;
        for target in [0u64, 7, 500, 99_999] {
            let share = straw.share_for(target, x);
            let recovered = straw.break_with_known_pair(x, known_v, share);
            assert_eq!(recovered, target as i128);
        }
    }

    #[test]
    fn slotted_scheme_resists_the_affine_break() {
        // Applying the same affine inversion to the slotted scheme fails:
        // shares are not an affine function of v.
        let s = sharing(3);
        let xs: Vec<i128> = (0..4).map(|v| s.share_for(v, 0).unwrap()).collect();
        let d1 = xs[1] - xs[0];
        let d2 = xs[2] - xs[1];
        let d3 = xs[3] - xs[2];
        assert!(
            !(d1 == d2 && d2 == d3),
            "consecutive share gaps must not be constant"
        );
    }

    #[test]
    fn share_batch_matches_scalar() {
        let s = sharing(2);
        let vs = [0u64, 1, 531, 531, 99_999, (1 << 20) - 1];
        let batch = s.share_batch(&vs).unwrap();
        for (r, &v) in vs.iter().enumerate() {
            assert_eq!(batch[r], s.share(v).unwrap(), "row {r}");
        }
        assert!(matches!(
            s.share_batch(&[5, 1 << 20]),
            Err(SssError::OutOfDomain { .. })
        ));
        assert!(s.share_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn search_batch_handles_boundaries_duplicates_and_non_shares() {
        let s = sharing(3);
        let max = (1 << 20) - 1;
        // Domain boundaries, duplicates in one batch, and out-of-order input.
        let vs = [max, 0u64, 777, 0, max, 777];
        for provider in 0..5 {
            let shares: Vec<i128> = vs
                .iter()
                .map(|&v| s.share_for(v, provider).unwrap())
                .collect();
            let got = s.reconstruct_search_batch(provider, &shares).unwrap();
            let want: Vec<Option<u64>> = vs.iter().map(|&v| Some(v)).collect();
            assert_eq!(got, want, "provider {provider}");
        }
        // Non-share inputs decode to None without disturbing neighbours,
        // exactly like the scalar search.
        let good = s.share_for(1000, 0).unwrap();
        let mixed = [good + 1, good, good - 1, i128::MAX / 2, 0];
        let got = s.reconstruct_search_batch(0, &mixed).unwrap();
        for (i, (&share, &hit)) in mixed.iter().zip(&got).enumerate() {
            assert_eq!(
                hit,
                s.reconstruct_search(0, share).unwrap(),
                "index {i} diverges from scalar search"
            );
        }
        assert_eq!(got[1], Some(1000));
        // Bad provider and empty batch.
        assert!(matches!(
            s.reconstruct_search_batch(9, &[0]),
            Err(SssError::BadProviderIndex(9))
        ));
        assert!(s.reconstruct_search_batch(0, &[]).unwrap().is_empty());
    }

    #[test]
    fn interpolation_basis_validates_subsets() {
        let s = sharing(2); // k = 3
        assert!(matches!(
            s.interpolation_basis(&[0, 1]),
            Err(SssError::NotEnoughShares { needed: 3, got: 2 })
        ));
        assert!(matches!(
            s.interpolation_basis(&[0, 1, 9]),
            Err(SssError::BadProviderIndex(9))
        ));
        assert!(matches!(
            s.interpolation_basis(&[0, 1, 1]),
            Err(SssError::BadProviderIndex(1))
        ));
        assert_eq!(s.interpolation_basis(&[0, 1, 2]).unwrap().len(), 3);
    }

    #[test]
    fn interpolate_batch_matches_scalar_and_flags_corruption() {
        let s = sharing(2); // k = 3
        let providers = [4usize, 1, 3];
        let vs = [0u64, 42, 123_456, (1 << 20) - 1];
        let mut rows: Vec<Vec<i128>> = vs
            .iter()
            .map(|&v| {
                providers
                    .iter()
                    .map(|&p| s.share_for(v, p).unwrap())
                    .collect()
            })
            .collect();
        rows[2][0] += 1; // corrupt one row
        let got = s.reconstruct_interpolate_batch(&providers, &rows).unwrap();
        for (r, (row, &v)) in rows.iter().zip(&vs).enumerate() {
            let pairs: Vec<(usize, i128)> =
                providers.iter().copied().zip(row.iter().copied()).collect();
            assert_eq!(
                got[r],
                s.reconstruct_interpolate(&pairs).unwrap(),
                "row {r}"
            );
            if r != 2 {
                assert_eq!(got[r], Some(v as i128));
            }
        }
        assert_ne!(got[2], Some(vs[2] as i128), "corruption must not decode");
        // A short row inside the batch is an error, as in the scalar path.
        assert!(matches!(
            s.reconstruct_interpolate_batch(&providers, &[vec![1, 2]]),
            Err(SssError::NotEnoughShares { needed: 3, got: 2 })
        ));
    }

    proptest! {
        #[test]
        fn prop_share_batch_bit_identical_to_scalar(
            vs in proptest::collection::vec(0u64..1 << 20, 0..40),
            degree in 1usize..=3,
        ) {
            let s = sharing(degree);
            let batch = s.share_batch(&vs).unwrap();
            for (row, &v) in batch.iter().zip(&vs) {
                prop_assert_eq!(row, &s.share(v).unwrap());
            }
        }

        #[test]
        fn prop_search_batch_matches_scalar_search(
            vs in proptest::collection::vec(0u64..1 << 20, 1..40),
            noise in proptest::collection::vec(-3i128..=3, 1..40),
            provider in 0usize..5,
        ) {
            let s = sharing(2);
            // Mix genuine shares with near-miss perturbations.
            let shares: Vec<i128> = vs
                .iter()
                .zip(noise.iter().cycle())
                .map(|(&v, &d)| s.share_for(v, provider).unwrap() + d)
                .collect();
            let batch = s.reconstruct_search_batch(provider, &shares).unwrap();
            for (&share, &hit) in shares.iter().zip(&batch) {
                prop_assert_eq!(hit, s.reconstruct_search(provider, share).unwrap());
            }
        }

        #[test]
        fn prop_interpolate_batch_matches_scalar_on_subsets(
            vs in proptest::collection::vec(0u64..1 << 20, 1..20),
            seed in any::<u64>(),
        ) {
            use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
            let s = sharing(2); // k = 3, n = 5
            let mut rng = StdRng::seed_from_u64(seed);
            let mut subset = vec![0usize, 1, 2, 3, 4];
            subset.shuffle(&mut rng);
            subset.truncate(3);
            let rows: Vec<Vec<i128>> = vs
                .iter()
                .map(|&v| subset.iter().map(|&p| s.share_for(v, p).unwrap()).collect())
                .collect();
            let got = s.reconstruct_interpolate_batch(&subset, &rows).unwrap();
            for (row, &v) in rows.iter().zip(&vs) {
                let pairs: Vec<(usize, i128)> =
                    subset.iter().copied().zip(row.iter().copied()).collect();
                prop_assert_eq!(
                    s.reconstruct_interpolate(&pairs).unwrap(),
                    Some(v as i128)
                );
            }
            prop_assert_eq!(got, vs.iter().map(|&v| Some(v as i128)).collect::<Vec<_>>());
        }
    }

    proptest! {
        #[test]
        fn prop_order_preservation(a in 0u64..1 << 20, b in 0u64..1 << 20) {
            let s = sharing(2);
            for provider in 0..3 {
                let sa = s.share_for(a, provider).unwrap();
                let sb = s.share_for(b, provider).unwrap();
                prop_assert_eq!(a.cmp(&b), sa.cmp(&sb));
            }
        }

        #[test]
        fn prop_search_and_interpolation_agree(v in 0u64..1 << 20) {
            let s = sharing(1); // k = 2
            let shares = s.share(v).unwrap();
            let by_search = s.reconstruct_search(0, shares[0]).unwrap();
            let pairs: Vec<(usize, i128)> =
                shares.iter().enumerate().map(|(i, &y)| (i, y)).collect();
            let by_interp = s.reconstruct_interpolate(&pairs).unwrap();
            prop_assert_eq!(by_search, Some(v));
            prop_assert_eq!(by_interp, Some(v as i128));
        }

        #[test]
        fn prop_shares_fit_u64_bound(v in 0u64..(1u64 << 32) - 1) {
            // The documented no-overflow bound: shares stay below 2^64.
            let params = OpssParams::new(3, 12, 1 << 32, vec![64, 63, 62, 61]).unwrap();
            let s = OpSharing::new(params, DomainKey::derive(b"m", "d"));
            for provider in 0..4 {
                let y = s.share_for(v, provider).unwrap();
                prop_assert!(y >= 0);
                prop_assert!(y < 1i128 << 64, "share {y} too large");
            }
        }
    }
}
