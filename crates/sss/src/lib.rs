//! Secret sharing for outsourced databases — the paper's core scheme.
//!
//! A data source D splits every attribute value into `n` shares, one per
//! database service provider (DAS), such that any `k ≤ n` shares plus the
//! client-held secret evaluation points `X = {x₁…xₙ}` reconstruct the
//! value (§III). Three share modes trade privacy against server-side
//! query capability — exactly the privacy/performance trade-off the paper
//! discusses:
//!
//! | mode | construction | provider learns | server-side ops |
//! |------|--------------|-----------------|-----------------|
//! | [`ShareMode::Random`] | fresh random polynomial per value, over GF(2⁶¹−1) | nothing (info-theoretic for < k colluders) | none — full retrieval |
//! | [`ShareMode::Deterministic`] | PRF-derived polynomial per value, over GF(2⁶¹−1) | equality pattern | exact match, equi-join, grouped aggregation |
//! | [`ShareMode::OrderPreserving`] | §IV slotted-coefficient integer polynomial | equality + order | the above plus range, MIN/MAX/MEDIAN, sort-merge join |
//!
//! All three are *additively homomorphic*: providers can sum the shares of
//! selected rows and the client reconstructs the sum — the basis of the
//! paper's server-side SUM/AVG (§V-A).

pub mod codec;
pub mod field_sharing;
pub mod opss;

pub use codec::{DictionaryCodec, StringCodec, UPPERCASE_ALPHABET};
pub use field_sharing::{EvalPoints, FieldBasis, FieldShare, FieldSharing};
pub use opss::{AffineStrawman, OpSharing, OpssParams};

use dasp_crypto::hmac_sha256;
use dasp_crypto::siphash::SipHash24;
use dasp_field::Secret;

/// How a column's values are shared across providers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShareMode {
    /// Fresh random polynomial per value: information-theoretically hiding,
    /// but the provider cannot filter — every query retrieves the column.
    Random,
    /// Deterministic polynomial per value (PRF-keyed): equal values produce
    /// equal shares, enabling server-side exact match and equi-joins.
    Deterministic,
    /// Order-preserving slotted polynomial (§IV): share order equals value
    /// order at every provider, enabling server-side ranges and order
    /// statistics.
    OrderPreserving,
}

impl ShareMode {
    /// Does this mode let a provider evaluate equality predicates?
    pub fn supports_equality(self) -> bool {
        !matches!(self, ShareMode::Random)
    }

    /// Does this mode let a provider evaluate range predicates?
    pub fn supports_range(self) -> bool {
        matches!(self, ShareMode::OrderPreserving)
    }
}

/// Client-held key material for one *domain* (not one attribute — the
/// paper constructs polynomials per domain so same-domain joins work,
/// §V-A "Join Operations").
///
/// Derives the per-coefficient SipHash PRFs used by deterministic and
/// order-preserving construction.
#[derive(Clone)]
pub struct DomainKey {
    key: Secret<[u8; 32]>,
}

impl DomainKey {
    /// Wrap a 32-byte master key for a domain.
    pub fn new(key: [u8; 32]) -> Self {
        DomainKey {
            key: Secret::new(key),
        }
    }

    /// Derive from a master secret and a domain name.
    pub fn derive(master: &[u8], domain: &str) -> Self {
        DomainKey {
            key: Secret::new(hmac_sha256(master, domain.as_bytes())),
        }
    }

    /// The PRF for coefficient index `j` (j = 1 is the linear term).
    pub fn coeff_prf(&self, j: usize) -> SipHash24 {
        let d = hmac_sha256(self.key.expose(), &(j as u64).to_le_bytes());
        let mut k = [0u8; 16];
        k.copy_from_slice(&d[..16]);
        SipHash24::new(&k)
    }
}

// dasp::allow(S1): sanctioned redacting impl — never prints key material.
impl std::fmt::Debug for DomainKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DomainKey(..)")
    }
}

/// Errors from share construction and reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SssError {
    /// Fewer than `k` shares supplied.
    NotEnoughShares { needed: usize, got: usize },
    /// A provider index was out of range or repeated.
    BadProviderIndex(usize),
    /// Shares were mutually inconsistent (corruption or mixed secrets).
    InconsistentShares,
    /// A value fell outside the configured domain.
    OutOfDomain { value: u64, domain_size: u64 },
    /// Parameters were invalid (e.g. k > n, duplicate points).
    BadParameters(String),
    /// Underlying exact arithmetic overflowed.
    Arithmetic(String),
}

impl std::fmt::Display for SssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SssError::NotEnoughShares { needed, got } => {
                write!(f, "need {needed} shares, got {got}")
            }
            SssError::BadProviderIndex(i) => write!(f, "bad provider index {i}"),
            SssError::InconsistentShares => write!(f, "shares are inconsistent"),
            SssError::OutOfDomain { value, domain_size } => {
                write!(f, "value {value} outside domain of size {domain_size}")
            }
            SssError::BadParameters(msg) => write!(f, "bad parameters: {msg}"),
            SssError::Arithmetic(msg) => write!(f, "arithmetic failure: {msg}"),
        }
    }
}

impl std::error::Error for SssError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_capabilities() {
        assert!(!ShareMode::Random.supports_equality());
        assert!(ShareMode::Deterministic.supports_equality());
        assert!(!ShareMode::Deterministic.supports_range());
        assert!(ShareMode::OrderPreserving.supports_equality());
        assert!(ShareMode::OrderPreserving.supports_range());
    }

    #[test]
    fn domain_keys_separate_domains() {
        let a = DomainKey::derive(b"master", "salary");
        let b = DomainKey::derive(b"master", "age");
        assert_ne!(a.coeff_prf(1).hash_u64(5), b.coeff_prf(1).hash_u64(5));
    }

    #[test]
    fn coeff_prfs_separate_indices() {
        let k = DomainKey::derive(b"master", "salary");
        assert_ne!(k.coeff_prf(1).hash_u64(5), k.coeff_prf(2).hash_u64(5));
    }

    #[test]
    fn same_domain_same_prf() {
        let a = DomainKey::derive(b"master", "salary");
        let b = DomainKey::derive(b"master", "salary");
        assert_eq!(a.coeff_prf(3).hash_u64(9), b.coeff_prf(3).hash_u64(9));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let k = DomainKey::new([7u8; 32]);
        assert_eq!(format!("{k:?}"), "DomainKey(..)");
    }
}
