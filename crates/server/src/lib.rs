//! The database service provider (DAS) — the server half of the paper.
//!
//! A provider stores *shares*, never values. It answers the client's
//! rewritten queries (§V-A): exact matches and ranges over share space,
//! server-side aggregation partials (share sums, order statistics over
//! order-preserving shares), and share-equality joins. It also hosts
//! *public* plaintext tables for the §V-D private/public mash-up.
//!
//! * [`proto`] — the request/response wire protocol.
//! * [`engine`] — the share-table engine over `dasp-storage` (heap files
//!   plus B+tree indexes on share values).
//! * [`service`] — the [`dasp_net::Service`] adapter gluing the engine to
//!   the RPC fabric.
//!
//! Nothing in this crate has access to evaluation points, domain keys, or
//! plaintext private values — by construction it *could not* decode what
//! it stores, which is the paper's security argument made literal in the
//! module structure.

pub mod engine;
pub mod proto;
pub mod service;

pub use engine::{DurableConfig, ProviderEngine, RecoveryReport};
pub use proto::{AggOp, PredAtom, Request, Response, Row};
pub use service::{
    durable_provider_factories, provider_fleet, serve_provider_tcp, shared_provider_fleet,
    tcp_provider_fleet, ProviderService,
};
