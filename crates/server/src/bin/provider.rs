//! Standalone TCP provider process.
//!
//! Runs one database service provider behind the dasp-net reactor so
//! clients (or a whole [`dasp_net::Cluster`]) connect over real
//! sockets. In-memory by default; `--data <dir>` makes it durable
//! (WAL + checkpoint recovery on restart).
//!
//! ```text
//! provider --listen 0.0.0.0:7171 --data /var/lib/dasp/p0 --workers 4
//! ```

use dasp_net::{ReactorConfig, TcpServer};
use dasp_server::engine::DurableConfig;
use dasp_server::service::ProviderService;
use std::sync::Arc;

struct Args {
    listen: String,
    data: Option<std::path::PathBuf>,
    shards: Option<usize>,
    workers: Option<usize>,
}

const USAGE: &str = "usage: provider [--listen ADDR] [--data DIR] [--shards N] [--workers N]

  --listen ADDR   address to bind (default 127.0.0.1:7171; port 0 = ephemeral)
  --data DIR      durable storage directory (default: in-memory)
  --shards N      reactor shard threads (default: min(cores, 4))
  --workers N     request worker threads (default: min(cores, 4))";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7171".to_string(),
        data: None,
        shards: None,
        workers: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--data" => args.data = Some(std::path::PathBuf::from(value("--data")?)),
            "--shards" => {
                args.shards = Some(
                    value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                )
            }
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let service = match &args.data {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
            let (service, report) = ProviderService::durable(dir, DurableConfig::default())
                .map_err(|e| format!("recover {}: {e}", dir.display()))?;
            eprintln!(
                "recovered durable provider from {} ({} checkpoint tables, {} wal records replayed)",
                dir.display(),
                report.checkpoint_tables,
                report.wal_records
            );
            service
        }
        None => ProviderService::new(),
    };
    let mut cfg = ReactorConfig::default();
    if let Some(shards) = args.shards {
        cfg.shards = shards.max(1);
    }
    if let Some(workers) = args.workers {
        cfg.workers = workers.max(1);
    }
    let server = TcpServer::serve(args.listen.as_str(), Arc::new(service), cfg)
        .map_err(|e| format!("bind {}: {e}", args.listen))?;
    // Stdout so scripts can scrape the bound (possibly ephemeral) port.
    println!("listening on {}", server.local_addr());
    // Serve until killed. The reactor threads own all the work; this
    // thread just sleeps and periodically logs load.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
        let s = server.stats();
        eprintln!(
            "open={} accepted={} frames_in={} frames_out={} protocol_errors={} backpressure={}",
            s.open, s.accepted, s.frames_in, s.frames_out, s.protocol_errors, s.backpressure_pauses
        );
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("{e}");
        std::process::exit(2);
    }
}
