//! The client ↔ provider wire protocol.
//!
//! All values on the wire are *shares* (`i128`) — the protocol has no
//! representation for plaintext private values at all. Public tables
//! (§V-D) reuse the same row shape with plaintext codes in the share
//! slots.

use dasp_net::{WireError, WireReader, WireWriter};

/// A stored row: client-assigned id plus one share per column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Client-assigned row id (consistent across providers, which is what
    /// lets the client zip shares of the same logical row back together).
    pub id: u64,
    /// One share per column, in schema order.
    pub shares: Vec<i128>,
}

/// One conjunct of a rewritten predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredAtom {
    /// `share(col) = s` — exact match on a deterministic/OP column.
    Eq {
        /// Column index.
        col: usize,
        /// The rewritten share value.
        share: i128,
    },
    /// `lo ≤ share(col) ≤ hi` — range on an order-preserving column.
    Range {
        /// Column index.
        col: usize,
        /// Inclusive lower bound (share space).
        lo: i128,
        /// Inclusive upper bound (share space).
        hi: i128,
    },
}

impl PredAtom {
    /// The column this atom constrains.
    pub fn col(&self) -> usize {
        match self {
            PredAtom::Eq { col, .. } | PredAtom::Range { col, .. } => *col,
        }
    }

    /// Evaluate against a row's shares.
    pub fn matches(&self, shares: &[i128]) -> bool {
        match *self {
            PredAtom::Eq { col, share } => shares.get(col).is_some_and(|&s| s == share),
            PredAtom::Range { col, lo, hi } => shares.get(col).is_some_and(|&s| s >= lo && s <= hi),
        }
    }
}

/// Server-side aggregation over the matching rows (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Count matching rows.
    Count,
    /// Sum the shares of a column (client reconstructs the value sum).
    Sum {
        /// Column to sum.
        col: usize,
    },
    /// Return the row whose share in `col` is minimal (OP columns only).
    Min {
        /// Column to order by.
        col: usize,
    },
    /// Return the row whose share in `col` is maximal (OP columns only).
    Max {
        /// Column to order by.
        col: usize,
    },
    /// Return the median row by share order in `col` (OP columns only).
    Median {
        /// Column to order by.
        col: usize,
    },
}

/// A request from the data source to one provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Create a table. `indexed[i]` marks columns to index (deterministic
    /// and order-preserving columns; random-mode shares are unindexable).
    CreateTable {
        /// Table name.
        name: String,
        /// Column names.
        columns: Vec<String>,
        /// Which columns get a B+tree index on their share values.
        indexed: Vec<bool>,
    },
    /// Insert rows (shares only).
    Insert {
        /// Target table.
        table: String,
        /// Rows to insert.
        rows: Vec<Row>,
    },
    /// Delete rows by id.
    Delete {
        /// Target table.
        table: String,
        /// Ids of rows to remove.
        ids: Vec<u64>,
    },
    /// Replace rows wholesale (the paper's eager update path, §V-C).
    Update {
        /// Target table.
        table: String,
        /// Replacement rows (matched by id).
        rows: Vec<Row>,
    },
    /// Filtered retrieval, optionally aggregated server-side.
    Query {
        /// Target table.
        table: String,
        /// Conjunctive predicate over share space (empty = all rows).
        predicate: Vec<PredAtom>,
        /// Optional server-side aggregate.
        agg: Option<AggOp>,
    },
    /// Filtered retrieval ordered by a column's shares (order-preserving
    /// columns only make this meaningful) with a row limit — server-side
    /// top-k.
    QueryOrdered {
        /// Target table.
        table: String,
        /// Conjunctive predicate over share space.
        predicate: Vec<PredAtom>,
        /// Column whose shares define the order.
        order_col: usize,
        /// Descending order when true.
        desc: bool,
        /// Maximum rows to return.
        limit: u64,
    },
    /// Grouped aggregation: partition matching rows by the share of
    /// `group_col` (equality-capable columns group identically at every
    /// provider) and aggregate within each group.
    GroupedAggregate {
        /// Target table.
        table: String,
        /// Conjunctive predicate over share space.
        predicate: Vec<PredAtom>,
        /// Grouping column.
        group_col: usize,
        /// Aggregate within groups (Count or Sum only).
        agg: AggOp,
    },
    /// Share-equality join (§V-A): both columns must come from the same
    /// value domain so equal values have equal shares.
    Join {
        /// Left table.
        left: String,
        /// Right table.
        right: String,
        /// Join column in the left table.
        left_col: usize,
        /// Join column in the right table.
        right_col: usize,
    },
    /// Build (or rebuild) a Merkle commitment over the table sorted by
    /// `col`'s shares, returning the root. The client cross-checks the
    /// root against its own computation before trusting it.
    Commit {
        /// Target table.
        table: String,
        /// Sort/commitment column.
        col: usize,
    },
    /// Range query answered with a completeness proof against the last
    /// commitment. Refused if the table changed since the commit.
    VerifiedRange {
        /// Target table.
        table: String,
        /// Committed column.
        col: usize,
        /// Inclusive share-space lower bound.
        lo: i128,
        /// Inclusive share-space upper bound.
        hi: i128,
    },
    /// Add a delta share to one column of specific rows — the paper's
    /// §V-C "incremental updating of values": because Shamir shares are
    /// additively homomorphic, the client can adjust a value by sharing
    /// only the *delta*, with no retrieval round trip. (Client-side logic
    /// restricts this to random-mode columns, where the result is again a
    /// fresh random sharing.)
    Increment {
        /// Target table.
        table: String,
        /// Column to adjust.
        col: usize,
        /// (row id, this provider's delta share) pairs.
        deltas: Vec<(u64, i128)>,
    },
    /// Wipe every table (admin: used when re-initializing a replaced or
    /// recovered provider before the client re-shares its data into it).
    DropAllTables,
    /// Provider health/statistics probe.
    Stats,
}

/// A provider's response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success without payload.
    Ack,
    /// Matching rows.
    Rows(Vec<Row>),
    /// Joined row pairs (left row, right row).
    Joined(Vec<(Row, Row)>),
    /// Aggregation partial: share-sum and count, or an extremal row.
    Agg {
        /// Sum of the aggregated column's shares over matching rows.
        sum: i128,
        /// Number of matching rows.
        count: u64,
        /// The extremal/median row for Min/Max/Median.
        row: Option<Row>,
    },
    /// Grouped-aggregation partials, one per group.
    Groups(Vec<GroupPartial>),
    /// Commitment root over the requested table/column.
    Committed {
        /// Merkle root of the share-sorted table.
        root: [u8; 32],
        /// Number of committed rows.
        total_rows: u64,
    },
    /// Range result with a Merkle completeness proof.
    ProvedRows {
        /// Committed table size (needed by the verifier).
        total_rows: u64,
        /// The serialized range proof.
        proof: WireRangeProof,
    },
    /// Table count / row count diagnostics.
    Stats {
        /// Number of tables.
        tables: u64,
        /// Total stored rows.
        rows: u64,
    },
    /// The request failed.
    Error(String),
}

/// One group's partial aggregate at one provider.
///
/// `rep_row` is the smallest row id in the group — identical at every
/// provider (groups are identical row sets), so the client zips group
/// partials across providers by it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPartial {
    /// Smallest row id in the group (cross-provider group key).
    pub rep_row: u64,
    /// This provider's share of the group value.
    pub group_share: i128,
    /// Sum of the aggregated column's shares over the group.
    pub sum: i128,
    /// Rows in the group.
    pub count: u64,
}

/// A wire-serializable Merkle range proof (mirrors
/// `dasp_verify::RangeProof` with rows as protocol [`Row`]s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRangeProof {
    /// Index of the first returned leaf in sorted order.
    pub start: u64,
    /// Matching rows, in sorted order.
    pub rows: Vec<Row>,
    /// One membership proof per row: (leaf index, sibling digests).
    pub proofs: Vec<WireMerkleProof>,
    /// Row + proof just below the range, if any.
    pub left_boundary: Option<(Row, WireMerkleProof)>,
    /// Row + proof just above the range, if any.
    pub right_boundary: Option<(Row, WireMerkleProof)>,
}

/// A wire-serializable Merkle membership proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMerkleProof {
    /// Leaf index.
    pub index: u64,
    /// Sibling digests bottom-up (`None` = promoted level).
    pub siblings: Vec<Option<[u8; 32]>>,
}

// ---- encoding ----

fn write_row(w: &mut WireWriter, row: &Row) {
    w.u64(row.id);
    w.seq(&row.shares, |w, s| {
        w.i128(*s);
    });
}

fn read_row(r: &mut WireReader) -> Result<Row, WireError> {
    let id = r.u64()?;
    let shares = r.seq(|r| r.i128())?;
    Ok(Row { id, shares })
}

fn write_preds(w: &mut WireWriter, predicate: &[PredAtom]) {
    w.seq(predicate, |w, atom| match *atom {
        PredAtom::Eq { col, share } => {
            w.u8(0).u64(col as u64).i128(share);
        }
        PredAtom::Range { col, lo, hi } => {
            w.u8(1).u64(col as u64).i128(lo).i128(hi);
        }
    });
}

fn read_preds(r: &mut WireReader) -> Result<Vec<PredAtom>, WireError> {
    r.seq(|r| {
        Ok(match r.u8()? {
            0 => PredAtom::Eq {
                col: r.u64()? as usize,
                share: r.i128()?,
            },
            1 => PredAtom::Range {
                col: r.u64()? as usize,
                lo: r.i128()?,
                hi: r.i128()?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    })
}

fn write_agg(w: &mut WireWriter, agg: &AggOp) {
    match *agg {
        AggOp::Count => w.u8(1),
        AggOp::Sum { col } => w.u8(2).u64(col as u64),
        AggOp::Min { col } => w.u8(3).u64(col as u64),
        AggOp::Max { col } => w.u8(4).u64(col as u64),
        AggOp::Median { col } => w.u8(5).u64(col as u64),
    };
}

fn read_agg(r: &mut WireReader) -> Result<AggOp, WireError> {
    Ok(match r.u8()? {
        1 => AggOp::Count,
        2 => AggOp::Sum {
            col: r.u64()? as usize,
        },
        3 => AggOp::Min {
            col: r.u64()? as usize,
        },
        4 => AggOp::Max {
            col: r.u64()? as usize,
        },
        5 => AggOp::Median {
            col: r.u64()? as usize,
        },
        t => return Err(WireError::BadTag(t)),
    })
}

fn write_merkle_proof(w: &mut WireWriter, p: &WireMerkleProof) {
    w.u64(p.index);
    w.seq(&p.siblings, |w, s| match s {
        None => {
            w.u8(0);
        }
        Some(d) => {
            w.u8(1);
            w.bytes(d);
        }
    });
}

fn read_merkle_proof(r: &mut WireReader) -> Result<WireMerkleProof, WireError> {
    let index = r.u64()?;
    let siblings = r.seq(|r| {
        Ok(match r.u8()? {
            0 => None,
            1 => {
                let b = r.bytes()?;
                let d: [u8; 32] = b.try_into().map_err(|_| WireError::Truncated {
                    wanted: 32,
                    left: b.len(),
                })?;
                Some(d)
            }
            t => return Err(WireError::BadTag(t)),
        })
    })?;
    Ok(WireMerkleProof { index, siblings })
}

fn write_boundary(w: &mut WireWriter, b: &Option<(Row, WireMerkleProof)>) {
    match b {
        None => {
            w.u8(0);
        }
        Some((row, proof)) => {
            w.u8(1);
            write_row(w, row);
            write_merkle_proof(w, proof);
        }
    }
}

fn read_boundary(r: &mut WireReader) -> Result<Option<(Row, WireMerkleProof)>, WireError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some((read_row(r)?, read_merkle_proof(r)?)),
        t => return Err(WireError::BadTag(t)),
    })
}

fn write_range_proof(w: &mut WireWriter, p: &WireRangeProof) {
    w.u64(p.start);
    w.seq(&p.rows, write_row);
    w.seq(&p.proofs, write_merkle_proof);
    write_boundary(w, &p.left_boundary);
    write_boundary(w, &p.right_boundary);
}

fn read_range_proof(r: &mut WireReader) -> Result<WireRangeProof, WireError> {
    Ok(WireRangeProof {
        start: r.u64()?,
        rows: r.seq(read_row)?,
        proofs: r.seq(read_merkle_proof)?,
        left_boundary: read_boundary(r)?,
        right_boundary: read_boundary(r)?,
    })
}

impl Request {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Request::CreateTable {
                name,
                columns,
                indexed,
            } => {
                w.u8(0).string(name);
                w.seq(columns, |w, c| {
                    w.string(c);
                });
                w.seq(indexed, |w, b| {
                    w.bool(*b);
                });
            }
            Request::Insert { table, rows } => {
                w.u8(1).string(table);
                w.seq(rows, write_row);
            }
            Request::Delete { table, ids } => {
                w.u8(2).string(table);
                w.seq(ids, |w, id| {
                    w.u64(*id);
                });
            }
            Request::Update { table, rows } => {
                w.u8(3).string(table);
                w.seq(rows, write_row);
            }
            Request::Query {
                table,
                predicate,
                agg,
            } => {
                w.u8(4).string(table);
                write_preds(&mut w, predicate);
                match agg {
                    None => {
                        w.u8(0);
                    }
                    Some(agg) => write_agg(&mut w, agg),
                }
            }
            Request::QueryOrdered {
                table,
                predicate,
                order_col,
                desc,
                limit,
            } => {
                w.u8(7).string(table);
                write_preds(&mut w, predicate);
                w.u64(*order_col as u64).bool(*desc).u64(*limit);
            }
            Request::GroupedAggregate {
                table,
                predicate,
                group_col,
                agg,
            } => {
                w.u8(8).string(table);
                write_preds(&mut w, predicate);
                w.u64(*group_col as u64);
                write_agg(&mut w, agg);
            }
            Request::Join {
                left,
                right,
                left_col,
                right_col,
            } => {
                w.u8(5)
                    .string(left)
                    .string(right)
                    .u64(*left_col as u64)
                    .u64(*right_col as u64);
            }
            Request::Stats => {
                w.u8(6);
            }
            Request::Commit { table, col } => {
                w.u8(9).string(table).u64(*col as u64);
            }
            Request::VerifiedRange { table, col, lo, hi } => {
                w.u8(10).string(table).u64(*col as u64).i128(*lo).i128(*hi);
            }
            Request::Increment { table, col, deltas } => {
                w.u8(11).string(table).u64(*col as u64);
                w.seq(deltas, |w, (id, d)| {
                    w.u64(*id).i128(*d);
                });
            }
            Request::DropAllTables => {
                w.u8(12);
            }
        }
        w.finish()
    }

    /// Decode from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let req = match r.u8()? {
            0 => Request::CreateTable {
                name: r.string()?,
                columns: r.seq(|r| r.string())?,
                indexed: r.seq(|r| r.bool())?,
            },
            1 => Request::Insert {
                table: r.string()?,
                rows: r.seq(read_row)?,
            },
            2 => Request::Delete {
                table: r.string()?,
                ids: r.seq(|r| r.u64())?,
            },
            3 => Request::Update {
                table: r.string()?,
                rows: r.seq(read_row)?,
            },
            4 => {
                let table = r.string()?;
                let predicate = read_preds(&mut r)?;
                // Peek the agg tag: 0 means none, otherwise re-read inline.
                let agg = {
                    let tag_probe = r.u8()?;
                    if tag_probe == 0 {
                        None
                    } else {
                        Some(match tag_probe {
                            1 => AggOp::Count,
                            2 => AggOp::Sum {
                                col: r.u64()? as usize,
                            },
                            3 => AggOp::Min {
                                col: r.u64()? as usize,
                            },
                            4 => AggOp::Max {
                                col: r.u64()? as usize,
                            },
                            5 => AggOp::Median {
                                col: r.u64()? as usize,
                            },
                            t => return Err(WireError::BadTag(t)),
                        })
                    }
                };
                Request::Query {
                    table,
                    predicate,
                    agg,
                }
            }
            5 => Request::Join {
                left: r.string()?,
                right: r.string()?,
                left_col: r.u64()? as usize,
                right_col: r.u64()? as usize,
            },
            6 => Request::Stats,
            7 => {
                let table = r.string()?;
                let predicate = read_preds(&mut r)?;
                Request::QueryOrdered {
                    table,
                    predicate,
                    order_col: r.u64()? as usize,
                    desc: r.bool()?,
                    limit: r.u64()?,
                }
            }
            8 => {
                let table = r.string()?;
                let predicate = read_preds(&mut r)?;
                Request::GroupedAggregate {
                    table,
                    predicate,
                    group_col: r.u64()? as usize,
                    agg: read_agg(&mut r)?,
                }
            }
            9 => Request::Commit {
                table: r.string()?,
                col: r.u64()? as usize,
            },
            10 => Request::VerifiedRange {
                table: r.string()?,
                col: r.u64()? as usize,
                lo: r.i128()?,
                hi: r.i128()?,
            },
            11 => Request::Increment {
                table: r.string()?,
                col: r.u64()? as usize,
                deltas: r.seq(|r| Ok((r.u64()?, r.i128()?)))?,
            },
            12 => Request::DropAllTables,
            t => return Err(WireError::BadTag(t)),
        };
        r.expect_end()?;
        Ok(req)
    }
}

impl Response {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Response::Ack => {
                w.u8(0);
            }
            Response::Rows(rows) => {
                w.u8(1);
                w.seq(rows, write_row);
            }
            Response::Joined(pairs) => {
                w.u8(2);
                w.seq(pairs, |w, (l, rr)| {
                    write_row(w, l);
                    write_row(w, rr);
                });
            }
            Response::Agg { sum, count, row } => {
                w.u8(3).i128(*sum).u64(*count);
                match row {
                    None => {
                        w.u8(0);
                    }
                    Some(row) => {
                        w.u8(1);
                        write_row(&mut w, row);
                    }
                }
            }
            Response::Groups(groups) => {
                w.u8(6);
                w.seq(groups, |w, g| {
                    w.u64(g.rep_row)
                        .i128(g.group_share)
                        .i128(g.sum)
                        .u64(g.count);
                });
            }
            Response::Stats { tables, rows } => {
                w.u8(4).u64(*tables).u64(*rows);
            }
            Response::Error(msg) => {
                w.u8(5).string(msg);
            }
            Response::Committed { root, total_rows } => {
                w.u8(7).bytes(root).u64(*total_rows);
            }
            Response::ProvedRows { total_rows, proof } => {
                w.u8(8).u64(*total_rows);
                write_range_proof(&mut w, proof);
            }
        }
        w.finish()
    }

    /// Decode from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let resp = match r.u8()? {
            0 => Response::Ack,
            1 => Response::Rows(r.seq(read_row)?),
            2 => Response::Joined(r.seq(|r| Ok((read_row(r)?, read_row(r)?)))?),
            3 => {
                let sum = r.i128()?;
                let count = r.u64()?;
                let row = match r.u8()? {
                    0 => None,
                    1 => Some(read_row(&mut r)?),
                    t => return Err(WireError::BadTag(t)),
                };
                Response::Agg { sum, count, row }
            }
            4 => Response::Stats {
                tables: r.u64()?,
                rows: r.u64()?,
            },
            5 => Response::Error(r.string()?),
            6 => Response::Groups(r.seq(|r| {
                Ok(GroupPartial {
                    rep_row: r.u64()?,
                    group_share: r.i128()?,
                    sum: r.i128()?,
                    count: r.u64()?,
                })
            })?),
            7 => {
                let b = r.bytes()?;
                let root: [u8; 32] = b.try_into().map_err(|_| WireError::Truncated {
                    wanted: 32,
                    left: 0,
                })?;
                Response::Committed {
                    root,
                    total_rows: r.u64()?,
                }
            }
            8 => Response::ProvedRows {
                total_rows: r.u64()?,
                proof: read_range_proof(&mut r)?,
            },
            t => return Err(WireError::BadTag(t)),
        };
        r.expect_end()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_req(req: Request) {
        let bytes = req.encode();
        assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::CreateTable {
            name: "employees".into(),
            columns: vec!["name".into(), "salary".into()],
            indexed: vec![true, true],
        });
        roundtrip_req(Request::Insert {
            table: "t".into(),
            rows: vec![
                Row {
                    id: 1,
                    shares: vec![210, -5],
                },
                Row {
                    id: 2,
                    shares: vec![],
                },
            ],
        });
        roundtrip_req(Request::Delete {
            table: "t".into(),
            ids: vec![1, 2, 3],
        });
        roundtrip_req(Request::Update {
            table: "t".into(),
            rows: vec![Row {
                id: 1,
                shares: vec![9],
            }],
        });
        roundtrip_req(Request::Query {
            table: "t".into(),
            predicate: vec![
                PredAtom::Eq { col: 0, share: 42 },
                PredAtom::Range {
                    col: 1,
                    lo: -10,
                    hi: 10,
                },
            ],
            agg: Some(AggOp::Sum { col: 1 }),
        });
        roundtrip_req(Request::Query {
            table: "t".into(),
            predicate: vec![],
            agg: None,
        });
        for agg in [
            AggOp::Count,
            AggOp::Min { col: 0 },
            AggOp::Max { col: 1 },
            AggOp::Median { col: 2 },
        ] {
            roundtrip_req(Request::Query {
                table: "t".into(),
                predicate: vec![],
                agg: Some(agg),
            });
        }
        roundtrip_req(Request::Join {
            left: "employees".into(),
            right: "managers".into(),
            left_col: 0,
            right_col: 1,
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::QueryOrdered {
            table: "t".into(),
            predicate: vec![PredAtom::Range {
                col: 1,
                lo: -3,
                hi: 5,
            }],
            order_col: 1,
            desc: true,
            limit: 10,
        });
        roundtrip_req(Request::GroupedAggregate {
            table: "t".into(),
            predicate: vec![],
            group_col: 0,
            agg: AggOp::Sum { col: 1 },
        });
        roundtrip_req(Request::GroupedAggregate {
            table: "t".into(),
            predicate: vec![PredAtom::Eq { col: 2, share: 9 }],
            group_col: 0,
            agg: AggOp::Count,
        });
        roundtrip_req(Request::Commit {
            table: "t".into(),
            col: 1,
        });
        roundtrip_req(Request::VerifiedRange {
            table: "t".into(),
            col: 1,
            lo: -9,
            hi: 9,
        });
        roundtrip_req(Request::Increment {
            table: "t".into(),
            col: 2,
            deltas: vec![(1, -55), (9, 1 << 90)],
        });
        roundtrip_req(Request::DropAllTables);
    }

    #[test]
    fn proved_rows_roundtrip() {
        let proof = WireRangeProof {
            start: 3,
            rows: vec![Row {
                id: 5,
                shares: vec![7, 8],
            }],
            proofs: vec![WireMerkleProof {
                index: 3,
                siblings: vec![Some([9u8; 32]), None, Some([1u8; 32])],
            }],
            left_boundary: Some((
                Row {
                    id: 4,
                    shares: vec![1],
                },
                WireMerkleProof {
                    index: 2,
                    siblings: vec![],
                },
            )),
            right_boundary: None,
        };
        roundtrip_resp(Response::ProvedRows {
            total_rows: 10,
            proof,
        });
        roundtrip_resp(Response::Committed {
            root: [0xab; 32],
            total_rows: 4,
        });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Ack);
        roundtrip_resp(Response::Rows(vec![Row {
            id: 7,
            shares: vec![1, 2, 3],
        }]));
        roundtrip_resp(Response::Joined(vec![(
            Row {
                id: 1,
                shares: vec![5],
            },
            Row {
                id: 9,
                shares: vec![5, 6],
            },
        )]));
        roundtrip_resp(Response::Agg {
            sum: -123,
            count: 45,
            row: Some(Row {
                id: 3,
                shares: vec![],
            }),
        });
        roundtrip_resp(Response::Agg {
            sum: 0,
            count: 0,
            row: None,
        });
        roundtrip_resp(Response::Stats {
            tables: 2,
            rows: 100,
        });
        roundtrip_resp(Response::Error("no such table".into()));
        roundtrip_resp(Response::Groups(vec![
            GroupPartial {
                rep_row: 1,
                group_share: -5,
                sum: 99,
                count: 2,
            },
            GroupPartial {
                rep_row: 7,
                group_share: 0,
                sum: 0,
                count: 0,
            },
        ]));
        roundtrip_resp(Response::Groups(vec![]));
    }

    #[test]
    fn pred_atom_matches() {
        let shares = [10i128, 20, 30];
        assert!(PredAtom::Eq { col: 1, share: 20 }.matches(&shares));
        assert!(!PredAtom::Eq { col: 1, share: 21 }.matches(&shares));
        assert!(PredAtom::Range {
            col: 2,
            lo: 30,
            hi: 30
        }
        .matches(&shares));
        assert!(!PredAtom::Range {
            col: 2,
            lo: 31,
            hi: 99
        }
        .matches(&shares));
        assert!(
            !PredAtom::Eq { col: 9, share: 0 }.matches(&shares),
            "oob col"
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(Request::decode(&[99]).is_err());
        assert!(Response::decode(&[99]).is_err());
        assert!(Request::decode(&[]).is_err());
        // Trailing bytes rejected.
        let mut bytes = Request::Stats.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
    }

    proptest! {
        #[test]
        fn prop_row_heavy_roundtrip(
            rows in proptest::collection::vec(
                (any::<u64>(), proptest::collection::vec(any::<i128>(), 0..6)),
                0..20,
            )
        ) {
            let rows: Vec<Row> = rows
                .into_iter()
                .map(|(id, shares)| Row { id, shares })
                .collect();
            roundtrip_resp(Response::Rows(rows.clone()));
            roundtrip_req(Request::Insert { table: "t".into(), rows });
        }

        #[test]
        fn prop_decode_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }
    }
}
