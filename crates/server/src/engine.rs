//! The provider's share-table engine.
//!
//! Tables live in `dasp-storage` heap files; indexed columns additionally
//! maintain a B+tree keyed by `(share, row id)` so the rewritten §V-A
//! queries run as index probes instead of scans. The engine never sees a
//! plaintext private value: filtering, aggregation partials, order
//! statistics and joins all operate directly on share space.
//!
//! # Concurrency
//!
//! The engine state (tables + buffer pool + commitments) sits behind one
//! `RwLock`, splitting [`ProviderEngine::execute`] into a shared read
//! path (`Query`/`QueryOrdered`/`GroupedAggregate`/`Join`/
//! `VerifiedRange`/`Stats` interleave freely under the read lock) and an
//! exclusive write path (`Insert`/`Delete`/`Update`/`Increment`/
//! `CreateTable`/`Commit`/`DropAllTables` take the write lock, so they
//! see a quiescent table and invalidate commitments atomically).
//! [`EngineStats`] counters are atomics updated outside the state lock.
//! Lock order is always tables-`RwLock` → buffer-pool shard; no code path
//! acquires them in the other direction (see DESIGN.md §9).

use crate::proto::{AggOp, PredAtom, Request, Response, Row, WireMerkleProof, WireRangeProof};
use dasp_crypto::merkle::MerkleProof;
use dasp_net::{WireReader, WireWriter};
use dasp_storage::btree::{compose_key, BTree};
use dasp_storage::{BufferPool, HeapFile, Pager, RecordId};
use dasp_verify::merkle_table::{AuthenticatedTable, CommittedRow};
use parking_lot::RwLock;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Execution statistics, used by benchmarks to separate index probes from
/// scans.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered via a B+tree probe.
    pub index_probes: u64,
    /// Queries answered by a full heap scan.
    pub full_scans: u64,
    /// Rows examined across all queries.
    pub rows_examined: u64,
}

/// Lock-free mirror of [`EngineStats`]: read-path requests bump these
/// under the shared lock, so plain fields would race.
#[derive(Debug, Default)]
struct SharedStats {
    index_probes: AtomicU64,
    full_scans: AtomicU64,
    rows_examined: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> EngineStats {
        EngineStats {
            index_probes: self.index_probes.load(Ordering::Relaxed),
            full_scans: self.full_scans.load(Ordering::Relaxed),
            rows_examined: self.rows_examined.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.index_probes.store(0, Ordering::Relaxed);
        self.full_scans.store(0, Ordering::Relaxed);
        self.rows_examined.store(0, Ordering::Relaxed);
    }
}

struct Table {
    columns: Vec<String>,
    heap: HeapFile,
    /// Per-column B+tree over (share, row id) → packed RecordId; `None`
    /// for unindexed (random-share) columns.
    indexes: Vec<Option<BTree>>,
    /// Row id → heap location (also the canonical row count).
    rows: HashMap<u64, RecordId>,
}

/// Everything guarded by the engine's read/write lock. Tables, the pool
/// and the commitments move together: a write that mutates a table must
/// atomically drop that table's commitments, and `DropAllTables` swaps
/// the whole state (pool included) in one step.
struct EngineState {
    pool: BufferPool,
    tables: HashMap<String, Table>,
    /// Merkle commitments per (table, column); dropped on any mutation of
    /// the table, forcing the client to re-commit before verified reads.
    commitments: HashMap<(String, usize), AuthenticatedTable>,
}

impl EngineState {
    fn with_pool(pool: BufferPool) -> Self {
        EngineState {
            pool,
            tables: HashMap::new(),
            commitments: HashMap::new(),
        }
    }

    fn fresh() -> Self {
        Self::with_pool(BufferPool::new(Pager::in_memory(), 1024))
    }

    fn table(&self, name: &str) -> Result<&Table, String> {
        self.tables
            .get(name)
            .ok_or_else(|| format!("no such table {name:?}"))
    }
}

/// One provider's engine: all its tables over a shared buffer pool.
pub struct ProviderEngine {
    state: RwLock<EngineState>,
    stats: SharedStats,
}

fn encode_row(row: &Row) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(row.id);
    w.seq(&row.shares, |w, s| {
        w.i128(*s);
    });
    w.finish()
}

fn decode_row(bytes: &[u8]) -> Option<Row> {
    let mut r = WireReader::new(bytes);
    let id = r.u64().ok()?;
    let shares = r.seq(|r| r.i128()).ok()?;
    Some(Row { id, shares })
}

/// The `limit` extreme rows by `(shares[order_col], id)`, ordered
/// ascending for `desc == false` and descending for `desc == true`.
///
/// When the limit covers every row this is a plain unstable sort; below
/// that, a bounded heap of `limit + 1` keys selects the extremes in
/// O(n log k). Callers have validated `order_col` against every row.
fn top_k(rows: Vec<Row>, order_col: usize, desc: bool, limit: usize) -> Vec<Row> {
    let key = |r: &Row| (r.shares.get(order_col).copied().unwrap_or(i128::MIN), r.id);
    if limit >= rows.len() {
        let mut rows = rows;
        rows.sort_unstable_by_key(key);
        if desc {
            rows.reverse();
        }
        return rows;
    }
    // Heap over (key, input position); the position retrieves the owned
    // row afterwards. Keys are unique because ids are.
    let picked: Vec<(i128, u64, usize)> = if desc {
        // k largest: a min-heap (via Reverse) evicts the smallest seen.
        let mut heap = BinaryHeap::with_capacity(limit + 1);
        for (idx, row) in rows.iter().enumerate() {
            let (share, id) = key(row);
            heap.push(Reverse((share, id, idx)));
            if heap.len() > limit {
                heap.pop();
            }
        }
        let mut out: Vec<_> = heap.into_iter().map(|Reverse(k)| k).collect();
        out.sort_unstable_by(|a, b| b.cmp(a));
        out
    } else {
        // k smallest: a max-heap evicts the largest seen.
        let mut heap = BinaryHeap::with_capacity(limit + 1);
        for (idx, row) in rows.iter().enumerate() {
            let (share, id) = key(row);
            heap.push((share, id, idx));
            if heap.len() > limit {
                heap.pop();
            }
        }
        let mut out = heap.into_vec();
        out.sort_unstable();
        out
    };
    let mut slots: Vec<Option<Row>> = rows.into_iter().map(Some).collect();
    picked
        .into_iter()
        .filter_map(|(_, _, idx)| slots.get_mut(idx).and_then(Option::take))
        .collect()
}

impl Default for ProviderEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ProviderEngine {
    /// A fresh engine over an in-memory pager with a 1024-frame pool.
    pub fn new() -> Self {
        Self::with_pool(BufferPool::new(Pager::in_memory(), 1024))
    }

    /// An engine over a caller-supplied buffer pool — e.g. a
    /// [`dasp_storage::FileBackend`] pager for durable providers.
    pub fn with_pool(pool: BufferPool) -> Self {
        ProviderEngine {
            state: RwLock::new(EngineState::with_pool(pool)),
            stats: SharedStats::default(),
        }
    }

    /// Flush dirty pages to the backend (meaningful for file-backed
    /// pools; a no-op-equivalent for memory).
    pub fn sync(&self) -> Result<(), String> {
        self.state.read().pool.flush().map_err(|e| e.to_string())
    }

    /// Engine statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot()
    }

    /// Execute one request. All failures are mapped into
    /// [`Response::Error`] so a malformed request can never take the
    /// provider down.
    ///
    /// Read-only requests run under the shared lock and interleave across
    /// threads; mutating requests serialize under the exclusive lock.
    pub fn execute(&self, request: &Request) -> Response {
        match self.try_execute(request) {
            Ok(resp) => resp,
            Err(msg) => Response::Error(msg),
        }
    }

    fn try_execute(&self, request: &Request) -> Result<Response, String> {
        match request {
            // ---- exclusive write path ----
            Request::CreateTable {
                name,
                columns,
                indexed,
            } => Self::create_table(&mut self.state.write(), name, columns, indexed),
            Request::Insert { table, rows } => Self::insert(&mut self.state.write(), table, rows),
            Request::Delete { table, ids } => Self::delete(&mut self.state.write(), table, ids),
            Request::Update { table, rows } => Self::update(&mut self.state.write(), table, rows),
            Request::Increment { table, col, deltas } => {
                Self::increment(&mut self.state.write(), table, *col, deltas)
            }
            Request::Commit { table, col } => self.commit(&mut self.state.write(), table, *col),
            Request::DropAllTables => {
                // A wiped provider starts from a clean engine; dropping the
                // old buffer pool and pages wholesale is the honest
                // equivalent of re-imaging the node.
                *self.state.write() = EngineState::fresh();
                self.stats.reset();
                Ok(Response::Ack)
            }
            // ---- shared read path ----
            Request::Query {
                table,
                predicate,
                agg,
            } => self.query(&self.state.read(), table, predicate, *agg),
            Request::QueryOrdered {
                table,
                predicate,
                order_col,
                desc,
                limit,
            } => self.query_ordered(
                &self.state.read(),
                table,
                predicate,
                *order_col,
                *desc,
                *limit,
            ),
            Request::GroupedAggregate {
                table,
                predicate,
                group_col,
                agg,
            } => self.grouped_aggregate(&self.state.read(), table, predicate, *group_col, *agg),
            Request::Join {
                left,
                right,
                left_col,
                right_col,
            } => self.join(&self.state.read(), left, right, *left_col, *right_col),
            Request::VerifiedRange { table, col, lo, hi } => {
                Self::verified_range(&self.state.read(), table, *col, *lo, *hi)
            }
            Request::Stats => {
                let st = self.state.read();
                let rows = st.tables.values().map(|t| t.rows.len() as u64).sum();
                Ok(Response::Stats {
                    tables: st.tables.len() as u64,
                    rows,
                })
            }
        }
    }

    fn create_table(
        st: &mut EngineState,
        name: &str,
        columns: &[String],
        indexed: &[bool],
    ) -> Result<Response, String> {
        if st.tables.contains_key(name) {
            return Err(format!("table {name:?} already exists"));
        }
        if columns.len() != indexed.len() {
            return Err("columns/indexed length mismatch".into());
        }
        if columns.is_empty() {
            return Err("table needs at least one column".into());
        }
        let heap = HeapFile::create(&st.pool).map_err(|e| e.to_string())?;
        let mut indexes = Vec::with_capacity(columns.len());
        for &idx in indexed {
            indexes.push(if idx {
                Some(BTree::create(&st.pool).map_err(|e| e.to_string())?)
            } else {
                None
            });
        }
        st.tables.insert(
            name.to_string(),
            Table {
                columns: columns.to_vec(),
                heap,
                indexes,
                rows: HashMap::new(),
            },
        );
        Ok(Response::Ack)
    }

    fn insert(st: &mut EngineState, table: &str, rows: &[Row]) -> Result<Response, String> {
        st.commitments.retain(|(t, _), _| t != table);
        let EngineState { pool, tables, .. } = st;
        let t = tables
            .get_mut(table)
            .ok_or_else(|| format!("no such table {table:?}"))?;
        for row in rows {
            if row.shares.len() != t.columns.len() {
                return Err(format!(
                    "row {} has {} shares, table has {} columns",
                    row.id,
                    row.shares.len(),
                    t.columns.len()
                ));
            }
            if t.rows.contains_key(&row.id) {
                return Err(format!("duplicate row id {}", row.id));
            }
            let rid = t
                .heap
                .insert(pool, &encode_row(row))
                .map_err(|e| e.to_string())?;
            t.rows.insert(row.id, rid);
            for (index, &share) in t.indexes.iter_mut().zip(row.shares.iter()) {
                if let Some(tree) = index {
                    tree.insert(pool, &compose_key(share, row.id), rid.to_u64())
                        .map_err(|e| e.to_string())?;
                }
            }
        }
        Ok(Response::Ack)
    }

    fn delete(st: &mut EngineState, table: &str, ids: &[u64]) -> Result<Response, String> {
        st.commitments.retain(|(t, _), _| t != table);
        let EngineState { pool, tables, .. } = st;
        let t = tables
            .get_mut(table)
            .ok_or_else(|| format!("no such table {table:?}"))?;
        for &id in ids {
            let Some(rid) = t.rows.remove(&id) else {
                continue; // deleting a missing row is a no-op
            };
            let bytes = t
                .heap
                .get(pool, rid)
                .map_err(|e| e.to_string())?
                .ok_or("heap/index inconsistency")?;
            let row = decode_row(&bytes).ok_or("corrupt stored row")?;
            t.heap.delete(pool, rid).map_err(|e| e.to_string())?;
            for (index, &share) in t.indexes.iter_mut().zip(row.shares.iter()) {
                if let Some(tree) = index {
                    tree.delete(pool, &compose_key(share, id))
                        .map_err(|e| e.to_string())?;
                }
            }
        }
        Ok(Response::Ack)
    }

    fn update(st: &mut EngineState, table: &str, rows: &[Row]) -> Result<Response, String> {
        // Eager update = delete + reinsert (§V-C): new shares mean new
        // index positions anyway.
        let ids: Vec<u64> = rows.iter().map(|r| r.id).collect();
        Self::delete(st, table, &ids)?;
        Self::insert(st, table, rows)
    }

    fn load_row(pool: &BufferPool, t: &Table, rid: RecordId) -> Result<Row, String> {
        let bytes = t
            .heap
            .get(pool, rid)
            .map_err(|e| e.to_string())?
            .ok_or("dangling record id")?;
        decode_row(&bytes).ok_or_else(|| "corrupt stored row".into())
    }

    /// Candidate record ids for `predicate`. With one usable index the
    /// atom is probed directly (Eq beats Range on ties); with two or more
    /// indexed atoms every index is probed and the two smallest hit sets
    /// are intersected before any heap lookup, so a selective conjunction
    /// examines the intersection instead of the best single atom's range.
    /// No usable index → full scan; the residual filter in
    /// [`Self::matching_rows`] re-checks every atom either way.
    fn candidates(
        &self,
        st: &EngineState,
        table: &str,
        predicate: &[PredAtom],
    ) -> Result<(Vec<RecordId>, bool), String> {
        let t = st.table(table)?;
        // Pair each atom with its index tree up front, so a pick can't
        // dangle between the filter and the lookup. Eq atoms sort first:
        // equal probe cost, usually tighter hit sets.
        let mut probes: Vec<(&PredAtom, &BTree)> = predicate
            .iter()
            .filter_map(|a| {
                let tree = t.indexes.get(a.col()).and_then(|i| i.as_ref())?;
                Some((a, tree))
            })
            .collect();
        if probes.is_empty() {
            self.stats.full_scans.fetch_add(1, Ordering::Relaxed);
            let all = t
                .heap
                .scan(&st.pool)
                .map_err(|e| e.to_string())?
                .into_iter()
                .map(|(rid, _)| rid)
                .collect();
            return Ok((all, false));
        }
        probes.sort_by_key(|(a, _)| match a {
            PredAtom::Eq { .. } => 0u8,
            PredAtom::Range { .. } => 1u8,
        });
        self.stats.index_probes.fetch_add(1, Ordering::Relaxed);
        let probe = |atom: &PredAtom, tree: &BTree| -> Result<Vec<RecordId>, String> {
            let (lo, hi) = match *atom {
                PredAtom::Eq { share, .. } => (compose_key(share, 0), compose_key(share, u64::MAX)),
                PredAtom::Range { lo, hi, .. } => (compose_key(lo, 0), compose_key(hi, u64::MAX)),
            };
            Ok(tree
                .range(&st.pool, &lo, &hi)
                .map_err(|e| e.to_string())?
                .into_iter()
                .map(|(_, packed)| RecordId::from_u64(packed))
                .collect())
        };
        if let [(atom, tree)] = probes[..] {
            return Ok((probe(atom, tree)?, true));
        }
        let mut sets = Vec::with_capacity(probes.len());
        for &(atom, tree) in &probes {
            sets.push(probe(atom, tree)?);
        }
        sets.sort_by_key(|s| s.len());
        let mut sets = sets.into_iter();
        let (Some(smallest), Some(second)) = (sets.next(), sets.next()) else {
            // Unreachable: the single- and zero-probe cases return above.
            return Err("candidate probe underflow".to_string());
        };
        let second: HashSet<u64> = second.iter().map(|r| r.to_u64()).collect();
        Ok((
            smallest
                .into_iter()
                .filter(|r| second.contains(&r.to_u64()))
                .collect(),
            true,
        ))
    }

    fn matching_rows(
        &self,
        st: &EngineState,
        table: &str,
        predicate: &[PredAtom],
    ) -> Result<Vec<Row>, String> {
        let (candidates, _) = self.candidates(st, table, predicate)?;
        let t = st.table(table)?;
        self.stats
            .rows_examined
            .fetch_add(candidates.len() as u64, Ordering::Relaxed);
        let mut out = Vec::new();
        for rid in candidates {
            let row = Self::load_row(&st.pool, t, rid)?;
            if predicate.iter().all(|a| a.matches(&row.shares)) {
                out.push(row);
            }
        }
        // Stable output order helps tests and cross-provider zipping.
        out.sort_unstable_by_key(|r| r.id);
        out.dedup_by_key(|r| r.id);
        Ok(out)
    }

    fn query(
        &self,
        st: &EngineState,
        table: &str,
        predicate: &[PredAtom],
        agg: Option<AggOp>,
    ) -> Result<Response, String> {
        let rows = self.matching_rows(st, table, predicate)?;
        let Some(agg) = agg else {
            return Ok(Response::Rows(rows));
        };
        let count = rows.len() as u64;
        let col_share = |row: &Row, col: usize| -> Result<i128, String> {
            row.shares
                .get(col)
                .copied()
                .ok_or_else(|| format!("column {col} out of range"))
        };
        match agg {
            AggOp::Count => Ok(Response::Agg {
                sum: 0,
                count,
                row: None,
            }),
            AggOp::Sum { col } => {
                let mut sum = 0i128;
                for row in &rows {
                    sum = sum
                        .checked_add(col_share(row, col)?)
                        .ok_or("share sum overflow")?;
                }
                Ok(Response::Agg {
                    sum,
                    count,
                    row: None,
                })
            }
            AggOp::Min { col } | AggOp::Max { col } | AggOp::Median { col } => {
                if rows.is_empty() {
                    return Ok(Response::Agg {
                        sum: 0,
                        count: 0,
                        row: None,
                    });
                }
                let mut ordered: Vec<(i128, &Row)> = rows
                    .iter()
                    .map(|row| Ok((col_share(row, col)?, row)))
                    .collect::<Result<_, String>>()?;
                // Row ids break share ties so the pick is deterministic
                // across providers even though the sort is unstable.
                ordered.sort_unstable_by_key(|(s, row)| (*s, row.id));
                let picked = match agg {
                    AggOp::Min { .. } => ordered.first(),
                    AggOp::Max { .. } => ordered.last(),
                    AggOp::Median { .. } => ordered.get(ordered.len() / 2),
                    _ => unreachable!(),
                }
                .ok_or("aggregate over empty row set")?;
                Ok(Response::Agg {
                    sum: 0,
                    count,
                    row: Some(picked.1.clone()),
                })
            }
        }
    }

    /// Server-side top-k: the `limit` extreme matching rows by the share
    /// of `order_col`. Meaningful for order-preserving columns, where
    /// share order equals value order at every provider.
    ///
    /// Selection uses a bounded binary heap — O(n log k) instead of the
    /// O(n log n) full sort — with row ids breaking share ties exactly as
    /// the old stable sort did (ids ascend under `asc`, descend under
    /// `desc`).
    fn query_ordered(
        &self,
        st: &EngineState,
        table: &str,
        predicate: &[PredAtom],
        order_col: usize,
        desc: bool,
        limit: u64,
    ) -> Result<Response, String> {
        let rows = self.matching_rows(st, table, predicate)?;
        for row in &rows {
            if order_col >= row.shares.len() {
                return Err(format!("order column {order_col} out of range"));
            }
        }
        Ok(Response::Rows(top_k(rows, order_col, desc, limit as usize)))
    }

    /// Grouped aggregation partials: rows with equal `group_col` shares
    /// form a group (equal values ⇔ equal shares for equality-capable
    /// columns); each group reports its smallest row id as the
    /// cross-provider group key.
    fn grouped_aggregate(
        &self,
        st: &EngineState,
        table: &str,
        predicate: &[PredAtom],
        group_col: usize,
        agg: AggOp,
    ) -> Result<Response, String> {
        let sum_col = match agg {
            AggOp::Count => None,
            AggOp::Sum { col } => Some(col),
            other => return Err(format!("{other:?} is not groupable (Count/Sum only)")),
        };
        let rows = self.matching_rows(st, table, predicate)?;
        let mut groups: HashMap<i128, crate::proto::GroupPartial> = HashMap::new();
        for row in &rows {
            let group_share = *row
                .shares
                .get(group_col)
                .ok_or_else(|| format!("group column {group_col} out of range"))?;
            let add = match sum_col {
                None => 0i128,
                Some(col) => *row
                    .shares
                    .get(col)
                    .ok_or_else(|| format!("sum column {col} out of range"))?,
            };
            let entry = groups
                .entry(group_share)
                .or_insert(crate::proto::GroupPartial {
                    rep_row: row.id,
                    group_share,
                    sum: 0,
                    count: 0,
                });
            entry.rep_row = entry.rep_row.min(row.id);
            entry.sum = entry.sum.checked_add(add).ok_or("group sum overflow")?;
            entry.count += 1;
        }
        let mut out: Vec<crate::proto::GroupPartial> = groups.into_values().collect();
        out.sort_unstable_by_key(|g| g.rep_row);
        Ok(Response::Groups(out))
    }

    /// Apply additive share deltas in place (no index maintenance: only
    /// unindexed random-mode columns are incremented by the client).
    fn increment(
        st: &mut EngineState,
        table: &str,
        col: usize,
        deltas: &[(u64, i128)],
    ) -> Result<Response, String> {
        st.commitments.retain(|(t, _), _| t != table);
        let EngineState { pool, tables, .. } = st;
        let t = tables
            .get_mut(table)
            .ok_or_else(|| format!("no such table {table:?}"))?;
        if t.indexes.get(col).is_none_or(|i| i.is_some()) {
            return Err(format!(
                "column {col} is indexed (not random-mode); use Update instead"
            ));
        }
        for &(id, delta) in deltas {
            let rid = *t
                .rows
                .get(&id)
                .ok_or_else(|| format!("no row {id} in {table:?}"))?;
            let bytes = t
                .heap
                .get(pool, rid)
                .map_err(|e| e.to_string())?
                .ok_or("heap/index inconsistency")?;
            let mut row = decode_row(&bytes).ok_or("corrupt stored row")?;
            let share = row
                .shares
                .get_mut(col)
                .ok_or_else(|| format!("column {col} out of range"))?;
            *share = share.checked_add(delta).ok_or("share overflow")?;
            let new_rid = t
                .heap
                .update(pool, rid, &encode_row(&row))
                .map_err(|e| e.to_string())?;
            if new_rid != rid {
                t.rows.insert(id, new_rid);
                // Re-point every *other* indexed column at the new record.
                for (index, &share) in t.indexes.iter_mut().zip(row.shares.iter()) {
                    if let Some(tree) = index {
                        tree.delete(pool, &compose_key(share, id))
                            .map_err(|e| e.to_string())?;
                        tree.insert(pool, &compose_key(share, id), new_rid.to_u64())
                            .map_err(|e| e.to_string())?;
                    }
                }
            }
        }
        Ok(Response::Ack)
    }

    /// Build a commitment over the table sorted by `col`'s shares.
    fn commit(&self, st: &mut EngineState, table: &str, col: usize) -> Result<Response, String> {
        let rows = self.matching_rows(st, table, &[])?;
        if rows.is_empty() {
            return Err("cannot commit to an empty table".into());
        }
        for row in &rows {
            if col >= row.shares.len() {
                return Err(format!("commit column {col} out of range"));
            }
        }
        let committed: Vec<CommittedRow> = rows
            .into_iter()
            .map(|r| CommittedRow {
                id: r.id,
                shares: r.shares,
            })
            .collect();
        let total = committed.len() as u64;
        let at = AuthenticatedTable::build(committed, col);
        let root = at.root();
        st.commitments.insert((table.to_string(), col), at);
        Ok(Response::Committed {
            root,
            total_rows: total,
        })
    }

    /// Serve a range with a completeness proof from the cached commitment.
    fn verified_range(
        st: &EngineState,
        table: &str,
        col: usize,
        lo: i128,
        hi: i128,
    ) -> Result<Response, String> {
        let at = st
            .commitments
            .get(&(table.to_string(), col))
            .ok_or("no commitment for this table/column (or table changed); re-commit")?;
        let proof = at.prove_range(lo, hi);
        let to_wire = |p: &MerkleProof| WireMerkleProof {
            index: p.index as u64,
            siblings: p.siblings.clone(),
        };
        let row_of = |r: &CommittedRow| Row {
            id: r.id,
            shares: r.shares.clone(),
        };
        Ok(Response::ProvedRows {
            total_rows: at.len() as u64,
            proof: WireRangeProof {
                start: proof.start as u64,
                rows: proof.rows.iter().map(row_of).collect(),
                proofs: proof.proofs.iter().map(to_wire).collect(),
                left_boundary: proof
                    .left_boundary
                    .as_ref()
                    .map(|(r, p)| (row_of(r), to_wire(p))),
                right_boundary: proof
                    .right_boundary
                    .as_ref()
                    .map(|(r, p)| (row_of(r), to_wire(p))),
            },
        })
    }

    fn join(
        &self,
        st: &EngineState,
        left: &str,
        right: &str,
        left_col: usize,
        right_col: usize,
    ) -> Result<Response, String> {
        // Hash join on share values. Valid because same-domain values get
        // identical shares at this provider (per-domain polynomials, §V-A).
        let left_rows = self.matching_rows(st, left, &[])?;
        let right_rows = self.matching_rows(st, right, &[])?;
        let mut by_share: HashMap<i128, Vec<&Row>> = HashMap::new();
        for row in &left_rows {
            let share = *row
                .shares
                .get(left_col)
                .ok_or_else(|| format!("left column {left_col} out of range"))?;
            by_share.entry(share).or_default().push(row);
        }
        let mut out = Vec::new();
        for rrow in &right_rows {
            let share = *rrow
                .shares
                .get(right_col)
                .ok_or_else(|| format!("right column {right_col} out of range"))?;
            if let Some(matches) = by_share.get(&share) {
                for lrow in matches {
                    out.push(((*lrow).clone(), rrow.clone()));
                }
            }
        }
        Ok(Response::Joined(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[(u64, &[i128])]) -> Vec<Row> {
        data.iter()
            .map(|&(id, shares)| Row {
                id,
                shares: shares.to_vec(),
            })
            .collect()
    }

    fn engine_with_table() -> ProviderEngine {
        let e = ProviderEngine::new();
        let resp = e.execute(&Request::CreateTable {
            name: "emp".into(),
            columns: vec!["name".into(), "salary".into()],
            indexed: vec![true, true],
        });
        assert_eq!(resp, Response::Ack);
        let resp = e.execute(&Request::Insert {
            table: "emp".into(),
            rows: rows(&[
                (1, &[100, 210]),
                (2, &[200, 30]),
                (3, &[100, 42]),
                (4, &[300, 64]),
                (5, &[400, 88]),
            ]),
        });
        assert_eq!(resp, Response::Ack);
        e
    }

    #[test]
    fn create_twice_fails() {
        let e = engine_with_table();
        let resp = e.execute(&Request::CreateTable {
            name: "emp".into(),
            columns: vec!["x".into()],
            indexed: vec![true],
        });
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn exact_match_via_index() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Eq { col: 0, share: 100 }],
            agg: None,
        });
        let Response::Rows(got) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(e.stats().index_probes, 1);
        assert_eq!(e.stats().full_scans, 0);
    }

    #[test]
    fn range_query_via_index() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Range {
                col: 1,
                lo: 40,
                hi: 90,
            }],
            agg: None,
        });
        let Response::Rows(got) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn conjunction_filters_on_both() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![
                PredAtom::Eq { col: 0, share: 100 },
                PredAtom::Range {
                    col: 1,
                    lo: 0,
                    hi: 50,
                },
            ],
            agg: None,
        });
        let Response::Rows(got) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn empty_predicate_returns_all() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![],
            agg: None,
        });
        let Response::Rows(got) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(got.len(), 5);
        assert_eq!(e.stats().full_scans, 1);
    }

    #[test]
    fn aggregates_over_shares() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![],
            agg: Some(AggOp::Sum { col: 1 }),
        });
        assert_eq!(
            resp,
            Response::Agg {
                sum: 210 + 30 + 42 + 64 + 88,
                count: 5,
                row: None
            }
        );

        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![],
            agg: Some(AggOp::Min { col: 1 }),
        });
        let Response::Agg {
            row: Some(row),
            count: 5,
            ..
        } = resp
        else {
            panic!("{resp:?}")
        };
        assert_eq!(row.id, 2); // share 30 is minimal

        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![],
            agg: Some(AggOp::Max { col: 1 }),
        });
        let Response::Agg { row: Some(row), .. } = resp else {
            panic!()
        };
        assert_eq!(row.id, 1); // share 210 is maximal

        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![],
            agg: Some(AggOp::Median { col: 1 }),
        });
        let Response::Agg { row: Some(row), .. } = resp else {
            panic!()
        };
        assert_eq!(row.id, 4); // shares sorted: 30,42,64,88,210 → median 64

        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Eq { col: 0, share: 999 }],
            agg: Some(AggOp::Median { col: 1 }),
        });
        assert_eq!(
            resp,
            Response::Agg {
                sum: 0,
                count: 0,
                row: None
            }
        );
    }

    #[test]
    fn count_with_predicate() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Range {
                col: 1,
                lo: 0,
                hi: 100,
            }],
            agg: Some(AggOp::Count),
        });
        assert_eq!(
            resp,
            Response::Agg {
                sum: 0,
                count: 4,
                row: None
            }
        );
    }

    #[test]
    fn delete_removes_from_index_too() {
        let e = engine_with_table();
        e.execute(&Request::Delete {
            table: "emp".into(),
            ids: vec![1, 3],
        });
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Eq { col: 0, share: 100 }],
            agg: None,
        });
        assert_eq!(resp, Response::Rows(vec![]));
        // Deleting a missing id is a no-op Ack.
        assert_eq!(
            e.execute(&Request::Delete {
                table: "emp".into(),
                ids: vec![99]
            }),
            Response::Ack
        );
    }

    #[test]
    fn update_moves_index_entries() {
        let e = engine_with_table();
        e.execute(&Request::Update {
            table: "emp".into(),
            rows: rows(&[(2, &[100, 31])]),
        });
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Eq { col: 0, share: 100 }],
            agg: None,
        });
        let Response::Rows(got) = resp else { panic!() };
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 2, 3]);
        // Old share value no longer matches row 2.
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Eq { col: 0, share: 200 }],
            agg: None,
        });
        assert_eq!(resp, Response::Rows(vec![]));
    }

    #[test]
    fn unindexed_column_forces_scan_but_still_filters() {
        let e = ProviderEngine::new();
        e.execute(&Request::CreateTable {
            name: "t".into(),
            columns: vec!["rand".into()],
            indexed: vec![false],
        });
        e.execute(&Request::Insert {
            table: "t".into(),
            rows: rows(&[(1, &[5]), (2, &[9])]),
        });
        let resp = e.execute(&Request::Query {
            table: "t".into(),
            predicate: vec![PredAtom::Eq { col: 0, share: 9 }],
            agg: None,
        });
        let Response::Rows(got) = resp else { panic!() };
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2]);
        assert_eq!(e.stats().full_scans, 1);
    }

    #[test]
    fn join_on_share_equality() {
        let e = engine_with_table();
        e.execute(&Request::CreateTable {
            name: "mgr".into(),
            columns: vec!["name".into(), "level".into()],
            indexed: vec![true, false],
        });
        e.execute(&Request::Insert {
            table: "mgr".into(),
            rows: rows(&[(10, &[100, 1]), (11, &[500, 2])]),
        });
        let resp = e.execute(&Request::Join {
            left: "emp".into(),
            right: "mgr".into(),
            left_col: 0,
            right_col: 0,
        });
        let Response::Joined(pairs) = resp else {
            panic!("{resp:?}")
        };
        // emp rows 1 and 3 have name-share 100; mgr row 10 matches.
        let mut ids: Vec<(u64, u64)> = pairs.iter().map(|(l, r)| (l.id, r.id)).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![(1, 10), (3, 10)]);
    }

    #[test]
    fn errors_are_responses_not_panics() {
        let e = engine_with_table();
        for req in [
            Request::Insert {
                table: "nope".into(),
                rows: vec![],
            },
            Request::Query {
                table: "nope".into(),
                predicate: vec![],
                agg: None,
            },
            Request::Insert {
                table: "emp".into(),
                rows: rows(&[(9, &[1])]), // wrong arity
            },
            Request::Insert {
                table: "emp".into(),
                rows: rows(&[(1, &[1, 2])]), // duplicate id
            },
            Request::Query {
                table: "emp".into(),
                predicate: vec![],
                agg: Some(AggOp::Sum { col: 99 }),
            },
        ] {
            assert!(
                matches!(e.execute(&req), Response::Error(_)),
                "{req:?} should error"
            );
        }
    }

    #[test]
    fn ordered_query_top_k() {
        let e = engine_with_table();
        // Order by salary share (col 1), ascending, top 3.
        let resp = e.execute(&Request::QueryOrdered {
            table: "emp".into(),
            predicate: vec![],
            order_col: 1,
            desc: false,
            limit: 3,
        });
        let Response::Rows(rows) = resp else {
            panic!("{resp:?}")
        };
        let shares: Vec<i128> = rows.iter().map(|r| r.shares[1]).collect();
        assert_eq!(shares, vec![30, 42, 64]);
        // Descending top 2.
        let resp = e.execute(&Request::QueryOrdered {
            table: "emp".into(),
            predicate: vec![],
            order_col: 1,
            desc: true,
            limit: 2,
        });
        let Response::Rows(rows) = resp else { panic!() };
        assert_eq!(
            rows.iter().map(|r| r.shares[1]).collect::<Vec<_>>(),
            vec![210, 88]
        );
        // With a predicate.
        let resp = e.execute(&Request::QueryOrdered {
            table: "emp".into(),
            predicate: vec![PredAtom::Range {
                col: 1,
                lo: 40,
                hi: 100,
            }],
            order_col: 1,
            desc: true,
            limit: 10,
        });
        let Response::Rows(rows) = resp else { panic!() };
        assert_eq!(
            rows.iter().map(|r| r.shares[1]).collect::<Vec<_>>(),
            vec![88, 64, 42]
        );
        // Bad column errors.
        let resp = e.execute(&Request::QueryOrdered {
            table: "emp".into(),
            predicate: vec![],
            order_col: 9,
            desc: false,
            limit: 1,
        });
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn grouped_aggregate_partials() {
        let e = engine_with_table();
        // Group by name share (col 0), sum salary shares (col 1).
        let resp = e.execute(&Request::GroupedAggregate {
            table: "emp".into(),
            predicate: vec![],
            group_col: 0,
            agg: AggOp::Sum { col: 1 },
        });
        let Response::Groups(groups) = resp else {
            panic!("{resp:?}")
        };
        // name shares: 100 → rows 1,3; 200 → row 2; 300 → row 4; 400 → row 5.
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].rep_row, 1);
        assert_eq!(groups[0].group_share, 100);
        assert_eq!(groups[0].sum, 210 + 42);
        assert_eq!(groups[0].count, 2);
        assert_eq!(groups[1].rep_row, 2);
        assert_eq!(groups[1].sum, 30);
        // Count variant.
        let resp = e.execute(&Request::GroupedAggregate {
            table: "emp".into(),
            predicate: vec![],
            group_col: 0,
            agg: AggOp::Count,
        });
        let Response::Groups(groups) = resp else {
            panic!()
        };
        assert_eq!(groups[0].count, 2);
        assert_eq!(groups[0].sum, 0);
        // Min is not groupable.
        let resp = e.execute(&Request::GroupedAggregate {
            table: "emp".into(),
            predicate: vec![],
            group_col: 0,
            agg: AggOp::Min { col: 1 },
        });
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn grouped_aggregate_with_predicate() {
        let e = engine_with_table();
        let resp = e.execute(&Request::GroupedAggregate {
            table: "emp".into(),
            predicate: vec![PredAtom::Range {
                col: 1,
                lo: 0,
                hi: 100,
            }],
            group_col: 0,
            agg: AggOp::Sum { col: 1 },
        });
        let Response::Groups(groups) = resp else {
            panic!()
        };
        // Rows with salary share ≤ 100: ids 2,3,4,5 → name groups 200,100,300,400.
        assert_eq!(groups.len(), 4);
        let g100 = groups.iter().find(|g| g.group_share == 100).unwrap();
        assert_eq!((g100.rep_row, g100.sum, g100.count), (3, 42, 1));
    }

    #[test]
    fn commit_and_verified_range() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Commit {
            table: "emp".into(),
            col: 1,
        });
        let Response::Committed { root, total_rows } = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(total_rows, 5);

        let resp = e.execute(&Request::VerifiedRange {
            table: "emp".into(),
            col: 1,
            lo: 40,
            hi: 90,
        });
        let Response::ProvedRows { total_rows, proof } = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(total_rows, 5);
        assert_eq!(
            proof.rows.iter().map(|r| r.shares[1]).collect::<Vec<_>>(),
            vec![42, 64, 88]
        );
        assert_eq!(proof.proofs.len(), 3);
        assert!(proof.left_boundary.is_some()); // share 30 below
        assert!(proof.right_boundary.is_some()); // share 210 above

        // Re-committing is idempotent in root for unchanged data.
        let resp = e.execute(&Request::Commit {
            table: "emp".into(),
            col: 1,
        });
        let Response::Committed { root: root2, .. } = resp else {
            panic!()
        };
        assert_eq!(root, root2);
    }

    #[test]
    fn verified_range_refused_after_mutation() {
        let e = engine_with_table();
        e.execute(&Request::Commit {
            table: "emp".into(),
            col: 1,
        });
        e.execute(&Request::Insert {
            table: "emp".into(),
            rows: rows(&[(9, &[500, 70])]),
        });
        let resp = e.execute(&Request::VerifiedRange {
            table: "emp".into(),
            col: 1,
            lo: 0,
            hi: 100,
        });
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");
        // Deleting also invalidates.
        e.execute(&Request::Commit {
            table: "emp".into(),
            col: 1,
        });
        e.execute(&Request::Delete {
            table: "emp".into(),
            ids: vec![9],
        });
        let resp = e.execute(&Request::VerifiedRange {
            table: "emp".into(),
            col: 1,
            lo: 0,
            hi: 100,
        });
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn verified_range_without_commit_errors() {
        let e = engine_with_table();
        let resp = e.execute(&Request::VerifiedRange {
            table: "emp".into(),
            col: 1,
            lo: 0,
            hi: 10,
        });
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn stats_request_counts() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Stats);
        assert_eq!(resp, Response::Stats { tables: 1, rows: 5 });
    }

    #[test]
    fn selective_conjunction_intersects_index_hits() {
        // Satellite regression: with two indexed atoms, the engine must
        // intersect the two smallest index hit sets instead of examining
        // every row matched by a single (unselective) atom.
        let e = ProviderEngine::new();
        e.execute(&Request::CreateTable {
            name: "t".into(),
            columns: vec!["dept".into(), "badge".into()],
            indexed: vec![true, true],
        });
        // dept share is the same for every row (one giant department);
        // badge shares are unique.
        let data: Vec<Row> = (0..3000u64)
            .map(|i| Row {
                id: i,
                shares: vec![100, i as i128 * 3],
            })
            .collect();
        e.execute(&Request::Insert {
            table: "t".into(),
            rows: data,
        });
        let before = e.stats();
        let resp = e.execute(&Request::Query {
            table: "t".into(),
            predicate: vec![
                PredAtom::Eq { col: 0, share: 100 },
                PredAtom::Eq {
                    col: 1,
                    share: 1500,
                },
            ],
            agg: None,
        });
        let Response::Rows(got) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![500]);
        let after = e.stats();
        // One logical index probe per query, zero scans.
        assert_eq!(after.index_probes - before.index_probes, 1);
        assert_eq!(after.full_scans, 0);
        // The badge atom matches exactly one row; the intersection must
        // keep heap lookups at that scale instead of all 3000 dept hits.
        let examined = after.rows_examined - before.rows_examined;
        assert!(examined <= 2, "intersection examined {examined} rows");
    }

    #[test]
    fn top_k_heap_matches_full_sort_ties_included() {
        // Rows with duplicate shares: heap selection must reproduce the
        // stable sort's tie order (ids ascend when asc, descend when desc).
        let data: Vec<Row> = rows(&[
            (1, &[7]),
            (2, &[3]),
            (3, &[7]),
            (4, &[1]),
            (5, &[3]),
            (6, &[9]),
        ]);
        let asc = top_k(data.clone(), 0, false, 4);
        assert_eq!(
            asc.iter().map(|r| (r.shares[0], r.id)).collect::<Vec<_>>(),
            vec![(1, 4), (3, 2), (3, 5), (7, 1)]
        );
        let desc = top_k(data.clone(), 0, true, 4);
        assert_eq!(
            desc.iter().map(|r| (r.shares[0], r.id)).collect::<Vec<_>>(),
            vec![(9, 6), (7, 3), (7, 1), (3, 5)]
        );
        // Limit ≥ n falls back to the full sort; limit 0 yields nothing.
        assert_eq!(top_k(data.clone(), 0, false, 100).len(), 6);
        assert!(top_k(data, 0, true, 0).is_empty());
    }

    #[test]
    fn large_table_index_beats_scan_rows_examined() {
        let e = ProviderEngine::new();
        e.execute(&Request::CreateTable {
            name: "big".into(),
            columns: vec!["v".into()],
            indexed: vec![true],
        });
        let data: Vec<Row> = (0..5000u64)
            .map(|i| Row {
                id: i,
                shares: vec![i as i128 * 3],
            })
            .collect();
        e.execute(&Request::Insert {
            table: "big".into(),
            rows: data,
        });
        let before = e.stats().rows_examined;
        let resp = e.execute(&Request::Query {
            table: "big".into(),
            predicate: vec![PredAtom::Range {
                col: 0,
                lo: 300,
                hi: 330,
            }],
            agg: None,
        });
        let Response::Rows(got) = resp else { panic!() };
        assert_eq!(got.len(), 11); // shares 300,303,...,330
        let examined = e.stats().rows_examined - before;
        assert!(examined <= 12, "index probe examined {examined} rows");
    }
}
