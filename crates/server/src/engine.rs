//! The provider's share-table engine.
//!
//! Tables are snapshot-versioned in-memory share maps with per-column
//! ordered indexes over `(share, row id)`, so the rewritten §V-A queries
//! run as index probes instead of scans. The engine never sees a
//! plaintext private value: filtering, aggregation partials, order
//! statistics and joins all operate directly on share space.
//!
//! # Concurrency: snapshot reads, logged writes
//!
//! Readers never block on writers. The engine publishes an immutable
//! [`Snapshot`] (tables + commitments) behind a briefly-held `RwLock`;
//! a read request clones the `Arc`, drops the lock, and runs entirely
//! against that pinned epoch — a bulk insert committing concurrently is
//! invisible until its snapshot is installed, and a reader mid-query
//! keeps its old epoch alive via the `Arc` until it finishes (dropping
//! the last `Arc` reclaims the superseded version). Writers serialize on
//! a separate mutex, apply copy-on-write to the master tables, append
//! the encoded request to the write-ahead log, wait for group commit
//! *outside* the write mutex (so concurrent writers share one fsync),
//! and then install their snapshot — acknowledged only after it is both
//! durable and visible, which is what makes read-own-write hold.
//!
//! # Durability
//!
//! [`ProviderEngine::durable`] opens a provider directory (`data.db`
//! pager image + `meta.bin` checkpoint descriptor + `wal.log`); every
//! write op is logged before it is acknowledged, and
//! [`ProviderEngine::recover`] rebuilds tables, indexes and Merkle
//! commitments bit-identical to the pre-crash state: checkpoint image
//! first, then replay of the log's committed records (a torn tail is
//! truncated by the WAL layer). Checkpoints write a *fresh* page image
//! through the buffer pool, atomically swing `meta.bin` to it, retire
//! the log by restamping its generation, and only then free the old
//! pages — a crash at any point leaves one consistent (meta, wal) pair.
//! [`EngineStats`] counters are atomics updated outside all locks.

use crate::proto::{AggOp, PredAtom, Request, Response, Row, WireMerkleProof, WireRangeProof};
use dasp_crypto::merkle::MerkleProof;
use dasp_net::{WireReader, WireWriter};
use dasp_storage::recovery::provider_paths;
use dasp_storage::wal::{crash_point_hit, CrashPoint, Wal, WalConfig, WalStats};
use dasp_storage::{
    BufferPool, CheckpointMeta, FileBackend, HeapFile, PageId, Pager, RecoveryError, TableMeta,
};
use dasp_verify::merkle_table::{AuthenticatedTable, CommittedRow};
use parking_lot::{Mutex, RwLock};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Execution statistics, used by benchmarks to separate index probes from
/// scans.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered via an index probe.
    pub index_probes: u64,
    /// Queries answered by a full scan.
    pub full_scans: u64,
    /// Rows examined across all queries.
    pub rows_examined: u64,
}

/// Lock-free mirror of [`EngineStats`]: read-path requests bump these
/// concurrently, so plain fields would race.
#[derive(Debug, Default)]
struct SharedStats {
    index_probes: AtomicU64,
    full_scans: AtomicU64,
    rows_examined: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> EngineStats {
        EngineStats {
            index_probes: self.index_probes.load(Ordering::Relaxed),
            full_scans: self.full_scans.load(Ordering::Relaxed),
            rows_examined: self.rows_examined.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.index_probes.store(0, Ordering::Relaxed);
        self.full_scans.store(0, Ordering::Relaxed);
        self.rows_examined.store(0, Ordering::Relaxed);
    }
}

/// One immutable version of a table: rows by id (the canonical order for
/// commitments and stable query output) plus ordered `(share, row id)`
/// sets for the indexed columns.
#[derive(Clone)]
struct TableSnap {
    columns: Vec<String>,
    indexed: Vec<bool>,
    rows: BTreeMap<u64, Vec<i128>>,
    indexes: Vec<Option<BTreeSet<(i128, u64)>>>,
}

impl TableSnap {
    fn new(columns: Vec<String>, indexed: Vec<bool>) -> Self {
        let indexes = indexed.iter().map(|&b| b.then(BTreeSet::new)).collect();
        TableSnap {
            columns,
            indexed,
            rows: BTreeMap::new(),
            indexes,
        }
    }

    fn insert_row(&mut self, id: u64, shares: Vec<i128>) {
        for (index, &share) in self.indexes.iter_mut().zip(shares.iter()) {
            if let Some(set) = index {
                set.insert((share, id));
            }
        }
        self.rows.insert(id, shares);
    }

    fn remove_row(&mut self, id: u64) -> Option<Vec<i128>> {
        let shares = self.rows.remove(&id)?;
        for (index, &share) in self.indexes.iter_mut().zip(shares.iter()) {
            if let Some(set) = index {
                set.remove(&(share, id));
            }
        }
        Some(shares)
    }
}

/// The immutable state one read request runs against. Cloning the `Arc`
/// pins the epoch; dropping it releases the version for reclamation.
struct Snapshot {
    /// Publish sequence: writers install their snapshot only if it is
    /// newer than the published one (group commit wakes waiters out of
    /// order; a later writer's snapshot already contains earlier ops).
    seq: u64,
    tables: HashMap<String, Arc<TableSnap>>,
    /// Merkle commitments per (table, column); dropped on any mutation of
    /// the table, forcing the client to re-commit before verified reads.
    commitments: HashMap<(String, usize), Arc<AuthenticatedTable>>,
}

impl Snapshot {
    fn empty() -> Arc<Self> {
        Arc::new(Snapshot {
            seq: 0,
            tables: HashMap::new(),
            commitments: HashMap::new(),
        })
    }

    fn table(&self, name: &str) -> Result<&TableSnap, String> {
        self.tables
            .get(name)
            .map(|t| t.as_ref())
            .ok_or_else(|| format!("no such table {name:?}"))
    }
}

/// Where checkpoints land: the buffer pool plus the pages of the current
/// image, and — for durable engines — the directory and generation.
struct Store {
    pool: BufferPool,
    /// Pages of the current checkpoint image (freed when superseded).
    image: Vec<PageId>,
    durable: Option<DurableStore>,
    ops_since_ckpt: u64,
}

struct DurableStore {
    dir: PathBuf,
    generation: u64,
    /// Auto-checkpoint after this many logged ops (0 = manual only).
    checkpoint_every: u64,
}

/// Master state, guarded by the writer mutex. `tables` here is the
/// newest version (possibly not yet durable/published); snapshots share
/// its `Arc`s copy-on-write.
struct WriteState {
    tables: HashMap<String, Arc<TableSnap>>,
    commitments: HashMap<(String, usize), Arc<AuthenticatedTable>>,
    seq: u64,
    store: Store,
    /// Set when disk state may disagree with memory (failed append or
    /// checkpoint); all further writes are refused until recovery.
    broken: Option<String>,
}

/// Tuning for a durable provider.
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// Group-commit settings for the write-ahead log.
    pub wal: WalConfig,
    /// Checkpoint automatically after this many logged ops (0 disables;
    /// call [`ProviderEngine::checkpoint`] manually).
    pub checkpoint_every: u64,
    /// Buffer-pool frames over the checkpoint pager.
    pub pool_frames: usize,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            wal: WalConfig::default(),
            checkpoint_every: 4096,
            pool_frames: 1024,
        }
    }
}

/// What [`ProviderEngine::recover`] found and rebuilt.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Tables loaded from the checkpoint image.
    pub checkpoint_tables: u64,
    /// Rows loaded from the checkpoint image.
    pub checkpoint_rows: u64,
    /// Log records replayed on top of the image.
    pub wal_records: u64,
    /// Torn-tail bytes truncated from the log.
    pub torn_bytes: u64,
    /// The log belonged to a superseded generation and was reset.
    pub wal_reset: bool,
}

/// One provider's engine: snapshot-versioned share tables, optionally
/// write-ahead logged into a provider directory.
pub struct ProviderEngine {
    published: RwLock<Arc<Snapshot>>,
    write: Mutex<WriteState>,
    wal: Option<Wal>,
    stats: SharedStats,
}

fn encode_row(row: &Row) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(row.id);
    w.seq(&row.shares, |w, s| {
        w.i128(*s);
    });
    w.finish()
}

fn decode_row(bytes: &[u8]) -> Option<Row> {
    let mut r = WireReader::new(bytes);
    let id = r.u64().ok()?;
    let shares = r.seq(|r| r.i128()).ok()?;
    Some(Row { id, shares })
}

/// The `limit` extreme rows by `(shares[order_col], id)`, ordered
/// ascending for `desc == false` and descending for `desc == true`.
///
/// When the limit covers every row this is a plain unstable sort; below
/// that, a bounded heap of `limit + 1` keys selects the extremes in
/// O(n log k). Callers have validated `order_col` against every row.
fn top_k(rows: Vec<Row>, order_col: usize, desc: bool, limit: usize) -> Vec<Row> {
    let key = |r: &Row| (r.shares.get(order_col).copied().unwrap_or(i128::MIN), r.id);
    if limit >= rows.len() {
        let mut rows = rows;
        rows.sort_unstable_by_key(key);
        if desc {
            rows.reverse();
        }
        return rows;
    }
    // Heap over (key, input position); the position retrieves the owned
    // row afterwards. Keys are unique because ids are.
    let picked: Vec<(i128, u64, usize)> = if desc {
        // k largest: a min-heap (via Reverse) evicts the smallest seen.
        let mut heap = BinaryHeap::with_capacity(limit + 1);
        for (idx, row) in rows.iter().enumerate() {
            let (share, id) = key(row);
            heap.push(Reverse((share, id, idx)));
            if heap.len() > limit {
                heap.pop();
            }
        }
        let mut out: Vec<_> = heap.into_iter().map(|Reverse(k)| k).collect();
        out.sort_unstable_by(|a, b| b.cmp(a));
        out
    } else {
        // k smallest: a max-heap evicts the largest seen.
        let mut heap = BinaryHeap::with_capacity(limit + 1);
        for (idx, row) in rows.iter().enumerate() {
            let (share, id) = key(row);
            heap.push((share, id, idx));
            if heap.len() > limit {
                heap.pop();
            }
        }
        let mut out = heap.into_vec();
        out.sort_unstable();
        out
    };
    let mut slots: Vec<Option<Row>> = rows.into_iter().map(Some).collect();
    picked
        .into_iter()
        .filter_map(|(_, _, idx)| slots.get_mut(idx).and_then(Option::take))
        .collect()
}

impl Default for ProviderEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ProviderEngine {
    /// A fresh volatile engine over an in-memory pager with a 1024-frame
    /// pool (checkpoint images only; live state is in memory).
    pub fn new() -> Self {
        Self::with_pool(BufferPool::new(Pager::in_memory(), 1024))
    }

    /// A volatile engine over a caller-supplied buffer pool — e.g. a
    /// [`dasp_storage::FileBackend`] pager. [`ProviderEngine::sync`]
    /// writes a full checkpoint image of every table into the pool.
    pub fn with_pool(pool: BufferPool) -> Self {
        ProviderEngine {
            published: RwLock::new(Snapshot::empty()),
            write: Mutex::new(WriteState {
                tables: HashMap::new(),
                commitments: HashMap::new(),
                seq: 0,
                store: Store {
                    pool,
                    image: Vec::new(),
                    durable: None,
                    ops_since_ckpt: 0,
                },
                broken: None,
            }),
            wal: None,
            stats: SharedStats::default(),
        }
    }

    /// Open (or create) a durable provider in `dir`, recovering any
    /// existing state: checkpoint image first, then replay of the
    /// write-ahead log's intact records. Every acknowledged write op is
    /// in one of the two by construction, so the result is bit-identical
    /// to the pre-crash tables, indexes and Merkle commitments.
    pub fn durable(
        dir: &Path,
        cfg: DurableConfig,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        std::fs::create_dir_all(dir)?;
        let meta = CheckpointMeta::read(dir)?.unwrap_or_default();
        let (data_path, _, wal_path) = provider_paths(dir);
        let pager = Pager::new(FileBackend::open(&data_path)?);
        let pool = BufferPool::new(pager, cfg.pool_frames.max(1));
        let mut report = RecoveryReport::default();

        // Load the checkpoint image.
        let mut tables: HashMap<String, Arc<TableSnap>> = HashMap::new();
        let mut image = Vec::new();
        for tm in &meta.tables {
            let heap = HeapFile::open(tm.pages.clone());
            let mut snap = TableSnap::new(tm.columns.clone(), tm.indexed.clone());
            for (_, bytes) in heap.scan(&pool)? {
                let row = decode_row(&bytes).ok_or_else(|| {
                    RecoveryError::Replay(format!("corrupt checkpoint row in table {:?}", tm.name))
                })?;
                if row.shares.len() != tm.columns.len() {
                    return Err(RecoveryError::Replay(format!(
                        "checkpoint row arity mismatch in table {:?}",
                        tm.name
                    )));
                }
                snap.insert_row(row.id, row.shares);
                report.checkpoint_rows += 1;
            }
            image.extend_from_slice(&tm.pages);
            tables.insert(tm.name.clone(), Arc::new(snap));
        }
        report.checkpoint_tables = tables.len() as u64;

        // Reconstruct the free list: every page not referenced by the
        // image is reusable (a crashed checkpoint may have leaked pages).
        let referenced: HashSet<PageId> = image.iter().copied().collect();
        for page in 0..pool.pager().page_count() {
            if !referenced.contains(&page) {
                pool.pager().free(page)?;
            }
        }

        // Rebuild published commitments. `AuthenticatedTable::build` is
        // deterministic on row content, so roots match pre-crash ones.
        let mut commitments = HashMap::new();
        for (tname, col) in &meta.committed {
            let Some(snap) = tables.get(tname) else {
                return Err(RecoveryError::CorruptMeta(
                    "commitment references missing table",
                ));
            };
            let at = Self::build_commitment(snap, *col as usize).map_err(RecoveryError::Replay)?;
            commitments.insert((tname.clone(), *col as usize), Arc::new(at));
        }

        // Open the log for this generation and replay its records
        // through the normal apply path (without re-logging). Only ops
        // that succeeded against the pre-crash engine were ever logged,
        // so a replay failure means genuine log/image disagreement.
        let rec = Wal::open(&wal_path, meta.generation, cfg.wal)?;
        report.torn_bytes = rec.torn_bytes;
        report.wal_reset = rec.reset;
        let mut ws = WriteState {
            tables,
            commitments,
            seq: 0,
            store: Store {
                pool,
                image,
                durable: Some(DurableStore {
                    dir: dir.to_path_buf(),
                    generation: meta.generation,
                    checkpoint_every: cfg.checkpoint_every,
                }),
                ops_since_ckpt: 0,
            },
            broken: None,
        };
        for bytes in &rec.records {
            let request = Request::decode(bytes)
                .map_err(|e| RecoveryError::Replay(format!("undecodable wal record: {e:?}")))?;
            Self::apply(&mut ws, &request, None)
                .map_err(|e| RecoveryError::Replay(format!("replay rejected: {e}")))?;
            report.wal_records += 1;
        }
        ws.seq = report.wal_records;
        ws.store.ops_since_ckpt = report.wal_records;
        let snapshot = Arc::new(Snapshot {
            seq: ws.seq,
            tables: ws.tables.clone(),
            commitments: ws.commitments.clone(),
        });
        Ok((
            ProviderEngine {
                published: RwLock::new(snapshot),
                write: Mutex::new(ws),
                wal: Some(rec.wal),
                stats: SharedStats::default(),
            },
            report,
        ))
    }

    /// Recover a durable provider from `dir` with default tuning.
    pub fn recover(dir: &Path) -> Result<(Self, RecoveryReport), RecoveryError> {
        Self::durable(dir, DurableConfig::default())
    }

    /// Checkpoint now: write a fresh page image of every table, make it
    /// the durable truth (durable engines: atomic `meta.bin` swing +
    /// log retirement), then free the superseded image. On volatile
    /// engines this just (re)writes the image into the caller's pool.
    pub fn checkpoint(&self) -> Result<(), String> {
        let mut ws = self.write.lock();
        if let Some(broken) = &ws.broken {
            return Err(format!("provider needs recovery: {broken}"));
        }
        // Nothing may outrun the image: wait for everything logged so
        // far to be durable before superseding it.
        if let Some(wal) = &self.wal {
            let end = wal.end_lsn();
            wal.commit(end).map_err(|e| e.to_string())?;
        }
        // dasp::allow(C1): the reported ring back to `ProviderEngine.write`
        // runs through `Pager::sync`, where the name-based resolver links a
        // `Box<dyn Backend>` file `sync` to `ProviderEngine::sync` (see the
        // waiver there); the real pager->engine edge does not exist.
        match Self::checkpoint_locked(&mut ws, self.wal.as_ref()) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Disk and memory may now disagree (e.g. the metadata
                // swung but the log did not retire): refuse writes until
                // recovery rather than risk double-apply or loss.
                ws.broken = Some(e.clone());
                Err(e)
            }
        }
    }

    fn checkpoint_locked(ws: &mut WriteState, wal: Option<&Wal>) -> Result<(), String> {
        let WriteState {
            tables,
            commitments,
            store,
            ..
        } = ws;
        let pool = &store.pool;
        let mut names: Vec<String> = tables.keys().cloned().collect();
        names.sort();
        let mut metas = Vec::new();
        let mut new_image = Vec::new();
        for name in names {
            if crash_point_hit(CrashPoint::MidCheckpoint) {
                return Err("simulated crash mid-checkpoint".into());
            }
            let Some(t) = tables.get(&name) else { continue };
            let mut heap = HeapFile::create(pool).map_err(|e| e.to_string())?;
            for (&id, shares) in &t.rows {
                let row = Row {
                    id,
                    shares: shares.clone(),
                };
                heap.insert(pool, &encode_row(&row))
                    .map_err(|e| e.to_string())?;
            }
            new_image.extend_from_slice(heap.pages());
            metas.push(TableMeta {
                name: name.clone(),
                columns: t.columns.clone(),
                indexed: t.indexed.clone(),
                pages: heap.pages().to_vec(),
            });
        }
        // One flush covers the whole image (counted as flush writebacks
        // in the pool stats) and syncs the data file.
        pool.flush().map_err(|e| e.to_string())?;
        if let Some(d) = &mut store.durable {
            let next_gen = d.generation + 1;
            let mut committed: Vec<(String, u32)> = commitments
                .keys()
                .map(|(t, c)| (t.clone(), *c as u32))
                .collect();
            committed.sort();
            let meta = CheckpointMeta {
                generation: next_gen,
                tables: metas,
                committed,
            };
            // The atomic swing: after this rename the image is the truth
            // and the old log generation is superseded.
            meta.write_atomic(&d.dir).map_err(|e| e.to_string())?;
            if crash_point_hit(CrashPoint::BeforeWalSwitch) {
                return Err("simulated crash before wal switch".into());
            }
            if let Some(wal) = wal {
                wal.switch_generation(next_gen).map_err(|e| e.to_string())?;
            }
            d.generation = next_gen;
        }
        // Only now is the old image garbage.
        let old_image = std::mem::replace(&mut store.image, new_image);
        for page in old_image {
            pool.discard(page).map_err(|e| e.to_string())?;
            pool.pager().free(page).map_err(|e| e.to_string())?;
        }
        store.ops_since_ckpt = 0;
        Ok(())
    }

    /// Write a checkpoint image (durable engines: a full checkpoint).
    /// Kept as the historical name for "make my pool reflect my state".
    pub fn sync(&self) -> Result<(), String> {
        self.checkpoint()
    }

    /// Engine statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot()
    }

    /// Write-ahead log counters (durable engines only).
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(Wal::stats)
    }

    /// Execute one request. All failures are mapped into
    /// [`Response::Error`] so a malformed request can never take the
    /// provider down.
    ///
    /// Read-only requests run lock-free against the published snapshot;
    /// mutating requests serialize on the writer mutex, log, group
    /// commit, and publish.
    pub fn execute(&self, request: &Request) -> Response {
        match self.try_execute(request) {
            Ok(resp) => resp,
            Err(msg) => Response::Error(msg),
        }
    }

    fn is_write(request: &Request) -> bool {
        matches!(
            request,
            Request::CreateTable { .. }
                | Request::Insert { .. }
                | Request::Delete { .. }
                | Request::Update { .. }
                | Request::Increment { .. }
                | Request::Commit { .. }
                | Request::DropAllTables
        )
    }

    fn try_execute(&self, request: &Request) -> Result<Response, String> {
        if Self::is_write(request) {
            self.execute_write(request)
        } else {
            // Pin an epoch: the snapshot stays alive (and consistent)
            // for the whole query even if writers publish newer ones.
            let snap = self.published.read().clone();
            self.execute_read(&snap, request)
        }
    }

    fn execute_write(&self, request: &Request) -> Result<Response, String> {
        let (snap, lsn, response, checkpoint_due) = {
            let mut ws = self.write.lock();
            if let Some(broken) = &ws.broken {
                return Err(format!("provider needs recovery: {broken}"));
            }
            // Apply to master first (all-or-nothing), log second: only
            // ops that succeeded are ever logged, so replay cannot fail
            // except on genuine corruption.
            let response = Self::apply(&mut ws, request, Some(&self.stats))?;
            let lsn = if let Some(wal) = &self.wal {
                match wal.append(&request.encode()) {
                    Ok(lsn) => Some(lsn),
                    Err(e) => {
                        // Master mutated but the op can never be durable:
                        // memory and disk disagree until recovery.
                        let msg = format!("wal append failed: {e}");
                        ws.broken = Some(msg.clone());
                        return Err(msg);
                    }
                }
            } else {
                None
            };
            ws.seq += 1;
            ws.store.ops_since_ckpt += 1;
            let checkpoint_due = ws.store.durable.as_ref().is_some_and(|d| {
                d.checkpoint_every > 0 && ws.store.ops_since_ckpt >= d.checkpoint_every
            });
            let snap = Arc::new(Snapshot {
                seq: ws.seq,
                tables: ws.tables.clone(),
                commitments: ws.commitments.clone(),
            });
            (snap, lsn, response, checkpoint_due)
        };
        // Group commit outside the writer mutex: concurrent writers
        // queue records while this one waits, and one fsync covers them.
        if let (Some(wal), Some(lsn)) = (&self.wal, lsn) {
            if let Err(e) = wal.commit(lsn) {
                // Applied in memory but never durable: poison writes and
                // keep the op invisible (its snapshot is not published).
                let msg = format!("wal commit failed: {e}");
                self.write.lock().broken = Some(msg.clone());
                return Err(msg);
            }
        }
        // Publish-if-newer: a later writer woken first has already made
        // this op visible (its snapshot contains it).
        {
            let mut published = self.published.write();
            if snap.seq > published.seq {
                *published = snap;
            }
        }
        if matches!(request, Request::DropAllTables) {
            self.stats.reset();
        }
        if checkpoint_due {
            // Auto-checkpoint failure must not fail the (already durable
            // and visible) op; a broken store refuses the *next* write.
            let _ = self.checkpoint();
        }
        Ok(response)
    }

    /// Apply one mutating request to the master state, copy-on-write.
    /// Validation precedes mutation: a failed request leaves the master
    /// untouched (and is never logged). `stats` is `None` during replay.
    fn apply(
        ws: &mut WriteState,
        request: &Request,
        stats: Option<&SharedStats>,
    ) -> Result<Response, String> {
        match request {
            Request::CreateTable {
                name,
                columns,
                indexed,
            } => Self::apply_create_table(ws, name, columns, indexed),
            Request::Insert { table, rows } => Self::apply_insert(ws, table, rows),
            Request::Delete { table, ids } => Self::apply_delete(ws, table, ids),
            Request::Update { table, rows } => Self::apply_update(ws, table, rows),
            Request::Increment { table, col, deltas } => {
                Self::apply_increment(ws, table, *col, deltas)
            }
            Request::Commit { table, col } => Self::apply_commit(ws, table, *col, stats),
            Request::DropAllTables => {
                ws.tables.clear();
                ws.commitments.clear();
                Ok(Response::Ack)
            }
            other => Err(format!("not a write request: {other:?}")),
        }
    }

    fn table_mut<'a>(
        tables: &'a mut HashMap<String, Arc<TableSnap>>,
        name: &str,
    ) -> Result<&'a mut TableSnap, String> {
        tables
            .get_mut(name)
            .map(Arc::make_mut)
            .ok_or_else(|| format!("no such table {name:?}"))
    }

    fn apply_create_table(
        ws: &mut WriteState,
        name: &str,
        columns: &[String],
        indexed: &[bool],
    ) -> Result<Response, String> {
        if ws.tables.contains_key(name) {
            return Err(format!("table {name:?} already exists"));
        }
        if columns.len() != indexed.len() {
            return Err("columns/indexed length mismatch".into());
        }
        if columns.is_empty() {
            return Err("table needs at least one column".into());
        }
        ws.tables.insert(
            name.to_string(),
            Arc::new(TableSnap::new(columns.to_vec(), indexed.to_vec())),
        );
        Ok(Response::Ack)
    }

    fn apply_insert(ws: &mut WriteState, table: &str, rows: &[Row]) -> Result<Response, String> {
        {
            let t = ws
                .tables
                .get(table)
                .ok_or_else(|| format!("no such table {table:?}"))?;
            let mut fresh = HashSet::with_capacity(rows.len());
            for row in rows {
                if row.shares.len() != t.columns.len() {
                    return Err(format!(
                        "row {} has {} shares, table has {} columns",
                        row.id,
                        row.shares.len(),
                        t.columns.len()
                    ));
                }
                if t.rows.contains_key(&row.id) || !fresh.insert(row.id) {
                    return Err(format!("duplicate row id {}", row.id));
                }
            }
        }
        ws.commitments.retain(|(t, _), _| t != table);
        let t = Self::table_mut(&mut ws.tables, table)?;
        for row in rows {
            t.insert_row(row.id, row.shares.clone());
        }
        Ok(Response::Ack)
    }

    fn apply_delete(ws: &mut WriteState, table: &str, ids: &[u64]) -> Result<Response, String> {
        if !ws.tables.contains_key(table) {
            return Err(format!("no such table {table:?}"));
        }
        ws.commitments.retain(|(t, _), _| t != table);
        let t = Self::table_mut(&mut ws.tables, table)?;
        for &id in ids {
            t.remove_row(id); // deleting a missing row is a no-op
        }
        Ok(Response::Ack)
    }

    fn apply_update(ws: &mut WriteState, table: &str, rows: &[Row]) -> Result<Response, String> {
        // Eager update = delete + reinsert (§V-C): new shares mean new
        // index positions anyway. Validated up front so the pair is
        // all-or-nothing.
        {
            let t = ws
                .tables
                .get(table)
                .ok_or_else(|| format!("no such table {table:?}"))?;
            let mut fresh = HashSet::with_capacity(rows.len());
            for row in rows {
                if row.shares.len() != t.columns.len() {
                    return Err(format!(
                        "row {} has {} shares, table has {} columns",
                        row.id,
                        row.shares.len(),
                        t.columns.len()
                    ));
                }
                if !fresh.insert(row.id) {
                    return Err(format!("duplicate row id {}", row.id));
                }
            }
        }
        ws.commitments.retain(|(t, _), _| t != table);
        let t = Self::table_mut(&mut ws.tables, table)?;
        for row in rows {
            t.remove_row(row.id);
            t.insert_row(row.id, row.shares.clone());
        }
        Ok(Response::Ack)
    }

    /// Apply additive share deltas in place (no index maintenance: only
    /// unindexed random-mode columns are incremented by the client).
    fn apply_increment(
        ws: &mut WriteState,
        table: &str,
        col: usize,
        deltas: &[(u64, i128)],
    ) -> Result<Response, String> {
        let changed = {
            let t = ws
                .tables
                .get(table)
                .ok_or_else(|| format!("no such table {table:?}"))?;
            if t.indexed.get(col).is_none_or(|&b| b) {
                return Err(format!(
                    "column {col} is indexed (not random-mode); use Update instead"
                ));
            }
            // Deltas compound sequentially on duplicate ids; compute the
            // final values first so overflow rejects the whole batch.
            let mut changed: HashMap<u64, i128> = HashMap::with_capacity(deltas.len());
            for &(id, delta) in deltas {
                let current = match changed.get(&id) {
                    Some(&v) => v,
                    None => *t
                        .rows
                        .get(&id)
                        .ok_or_else(|| format!("no row {id} in {table:?}"))?
                        .get(col)
                        .ok_or_else(|| format!("column {col} out of range"))?,
                };
                let next = current.checked_add(delta).ok_or("share overflow")?;
                changed.insert(id, next);
            }
            changed
        };
        ws.commitments.retain(|(t, _), _| t != table);
        let t = Self::table_mut(&mut ws.tables, table)?;
        for (id, value) in changed {
            if let Some(shares) = t.rows.get_mut(&id) {
                if let Some(share) = shares.get_mut(col) {
                    *share = value;
                }
            }
        }
        Ok(Response::Ack)
    }

    fn build_commitment(t: &TableSnap, col: usize) -> Result<AuthenticatedTable, String> {
        if t.rows.is_empty() {
            return Err("cannot commit to an empty table".into());
        }
        for shares in t.rows.values() {
            if col >= shares.len() {
                return Err(format!("commit column {col} out of range"));
            }
        }
        let committed: Vec<CommittedRow> = t
            .rows
            .iter()
            .map(|(&id, shares)| CommittedRow {
                id,
                shares: shares.clone(),
            })
            .collect();
        Ok(AuthenticatedTable::build(committed, col))
    }

    /// Build a commitment over the table sorted by `col`'s shares.
    fn apply_commit(
        ws: &mut WriteState,
        table: &str,
        col: usize,
        stats: Option<&SharedStats>,
    ) -> Result<Response, String> {
        let t = ws
            .tables
            .get(table)
            .ok_or_else(|| format!("no such table {table:?}"))?;
        if let Some(stats) = stats {
            // The commitment reads every row, which the stats report as
            // one full scan (as the pre-snapshot engine did).
            stats.full_scans.fetch_add(1, Ordering::Relaxed);
            stats
                .rows_examined
                .fetch_add(t.rows.len() as u64, Ordering::Relaxed);
        }
        let at = Self::build_commitment(t, col)?;
        let root = at.root();
        let total = t.rows.len() as u64;
        ws.commitments
            .insert((table.to_string(), col), Arc::new(at));
        Ok(Response::Committed {
            root,
            total_rows: total,
        })
    }

    fn execute_read(&self, snap: &Snapshot, request: &Request) -> Result<Response, String> {
        match request {
            Request::Query {
                table,
                predicate,
                agg,
            } => self.query(snap, table, predicate, *agg),
            Request::QueryOrdered {
                table,
                predicate,
                order_col,
                desc,
                limit,
            } => self.query_ordered(snap, table, predicate, *order_col, *desc, *limit),
            Request::GroupedAggregate {
                table,
                predicate,
                group_col,
                agg,
            } => self.grouped_aggregate(snap, table, predicate, *group_col, *agg),
            Request::Join {
                left,
                right,
                left_col,
                right_col,
            } => self.join(snap, left, right, *left_col, *right_col),
            Request::VerifiedRange { table, col, lo, hi } => {
                Self::verified_range(snap, table, *col, *lo, *hi)
            }
            Request::Stats => {
                let rows = snap.tables.values().map(|t| t.rows.len() as u64).sum();
                Ok(Response::Stats {
                    tables: snap.tables.len() as u64,
                    rows,
                })
            }
            other => Err(format!("not a read request: {other:?}")),
        }
    }

    /// Candidate row ids for `predicate`. With one usable index the atom
    /// is probed directly (Eq beats Range on ties); with two or more
    /// indexed atoms every index is probed and the two smallest hit sets
    /// are intersected before any row lookup, so a selective conjunction
    /// examines the intersection instead of the best single atom's range.
    /// No usable index → full scan; the residual filter in
    /// [`Self::matching_rows`] re-checks every atom either way.
    fn candidates(&self, t: &TableSnap, predicate: &[PredAtom]) -> Vec<u64> {
        // Pair each atom with its index up front, so a pick can't dangle
        // between the filter and the lookup. Eq atoms sort first: equal
        // probe cost, usually tighter hit sets.
        let mut probes: Vec<(&PredAtom, &BTreeSet<(i128, u64)>)> = predicate
            .iter()
            .filter_map(|a| {
                let set = t.indexes.get(a.col()).and_then(|i| i.as_ref())?;
                Some((a, set))
            })
            .collect();
        if probes.is_empty() {
            self.stats.full_scans.fetch_add(1, Ordering::Relaxed);
            return t.rows.keys().copied().collect();
        }
        probes.sort_by_key(|(a, _)| match a {
            PredAtom::Eq { .. } => 0u8,
            PredAtom::Range { .. } => 1u8,
        });
        self.stats.index_probes.fetch_add(1, Ordering::Relaxed);
        let probe = |atom: &PredAtom, set: &BTreeSet<(i128, u64)>| -> Vec<u64> {
            let (lo, hi) = match atom {
                PredAtom::Eq { share, .. } => ((*share, 0u64), (*share, u64::MAX)),
                PredAtom::Range { lo, hi, .. } => ((*lo, 0u64), (*hi, u64::MAX)),
            };
            set.range(lo..=hi).map(|&(_, id)| id).collect()
        };
        if let [(atom, set)] = probes[..] {
            return probe(atom, set);
        }
        let mut sets: Vec<Vec<u64>> = probes.iter().map(|&(a, s)| probe(a, s)).collect();
        sets.sort_by_key(Vec::len);
        let mut sets = sets.into_iter();
        let (Some(smallest), Some(second)) = (sets.next(), sets.next()) else {
            return Vec::new(); // unreachable: ≥ 2 probes here
        };
        let second: HashSet<u64> = second.into_iter().collect();
        smallest
            .into_iter()
            .filter(|id| second.contains(id))
            .collect()
    }

    fn matching_rows(
        &self,
        snap: &Snapshot,
        table: &str,
        predicate: &[PredAtom],
    ) -> Result<Vec<Row>, String> {
        let t = snap.table(table)?;
        let candidates = self.candidates(t, predicate);
        self.stats
            .rows_examined
            .fetch_add(candidates.len() as u64, Ordering::Relaxed);
        let mut out = Vec::new();
        for id in candidates {
            let Some(shares) = t.rows.get(&id) else {
                continue; // impossible by construction: indexes mirror rows
            };
            if predicate.iter().all(|a| a.matches(shares)) {
                out.push(Row {
                    id,
                    shares: shares.clone(),
                });
            }
        }
        // Stable output order helps tests and cross-provider zipping.
        out.sort_unstable_by_key(|r| r.id);
        out.dedup_by_key(|r| r.id);
        Ok(out)
    }

    fn query(
        &self,
        snap: &Snapshot,
        table: &str,
        predicate: &[PredAtom],
        agg: Option<AggOp>,
    ) -> Result<Response, String> {
        let rows = self.matching_rows(snap, table, predicate)?;
        let Some(agg) = agg else {
            return Ok(Response::Rows(rows));
        };
        let count = rows.len() as u64;
        let col_share = |row: &Row, col: usize| -> Result<i128, String> {
            row.shares
                .get(col)
                .copied()
                .ok_or_else(|| format!("column {col} out of range"))
        };
        match agg {
            AggOp::Count => Ok(Response::Agg {
                sum: 0,
                count,
                row: None,
            }),
            AggOp::Sum { col } => {
                let mut sum = 0i128;
                for row in &rows {
                    sum = sum
                        .checked_add(col_share(row, col)?)
                        .ok_or("share sum overflow")?;
                }
                Ok(Response::Agg {
                    sum,
                    count,
                    row: None,
                })
            }
            AggOp::Min { col } | AggOp::Max { col } | AggOp::Median { col } => {
                if rows.is_empty() {
                    return Ok(Response::Agg {
                        sum: 0,
                        count: 0,
                        row: None,
                    });
                }
                let mut ordered: Vec<(i128, &Row)> = rows
                    .iter()
                    .map(|row| Ok((col_share(row, col)?, row)))
                    .collect::<Result<_, String>>()?;
                // Row ids break share ties so the pick is deterministic
                // across providers even though the sort is unstable.
                ordered.sort_unstable_by_key(|(s, row)| (*s, row.id));
                let picked = match agg {
                    AggOp::Min { .. } => ordered.first(),
                    AggOp::Max { .. } => ordered.last(),
                    AggOp::Median { .. } => ordered.get(ordered.len() / 2),
                    _ => unreachable!(),
                }
                .ok_or("aggregate over empty row set")?;
                Ok(Response::Agg {
                    sum: 0,
                    count,
                    row: Some(picked.1.clone()),
                })
            }
        }
    }

    /// Server-side top-k: the `limit` extreme matching rows by the share
    /// of `order_col`. Meaningful for order-preserving columns, where
    /// share order equals value order at every provider.
    ///
    /// Selection uses a bounded binary heap — O(n log k) instead of the
    /// O(n log n) full sort — with row ids breaking share ties exactly as
    /// the old stable sort did (ids ascend under `asc`, descend under
    /// `desc`).
    fn query_ordered(
        &self,
        snap: &Snapshot,
        table: &str,
        predicate: &[PredAtom],
        order_col: usize,
        desc: bool,
        limit: u64,
    ) -> Result<Response, String> {
        let rows = self.matching_rows(snap, table, predicate)?;
        for row in &rows {
            if order_col >= row.shares.len() {
                return Err(format!("order column {order_col} out of range"));
            }
        }
        Ok(Response::Rows(top_k(rows, order_col, desc, limit as usize)))
    }

    /// Grouped aggregation partials: rows with equal `group_col` shares
    /// form a group (equal values ⇔ equal shares for equality-capable
    /// columns); each group reports its smallest row id as the
    /// cross-provider group key.
    fn grouped_aggregate(
        &self,
        snap: &Snapshot,
        table: &str,
        predicate: &[PredAtom],
        group_col: usize,
        agg: AggOp,
    ) -> Result<Response, String> {
        let sum_col = match agg {
            AggOp::Count => None,
            AggOp::Sum { col } => Some(col),
            other => return Err(format!("{other:?} is not groupable (Count/Sum only)")),
        };
        let rows = self.matching_rows(snap, table, predicate)?;
        let mut groups: HashMap<i128, crate::proto::GroupPartial> = HashMap::new();
        for row in &rows {
            let group_share = *row
                .shares
                .get(group_col)
                .ok_or_else(|| format!("group column {group_col} out of range"))?;
            let add = match sum_col {
                None => 0i128,
                Some(col) => *row
                    .shares
                    .get(col)
                    .ok_or_else(|| format!("sum column {col} out of range"))?,
            };
            let entry = groups
                .entry(group_share)
                .or_insert(crate::proto::GroupPartial {
                    rep_row: row.id,
                    group_share,
                    sum: 0,
                    count: 0,
                });
            entry.rep_row = entry.rep_row.min(row.id);
            entry.sum = entry.sum.checked_add(add).ok_or("group sum overflow")?;
            entry.count += 1;
        }
        let mut out: Vec<crate::proto::GroupPartial> = groups.into_values().collect();
        out.sort_unstable_by_key(|g| g.rep_row);
        Ok(Response::Groups(out))
    }

    /// Serve a range with a completeness proof from the cached commitment.
    fn verified_range(
        snap: &Snapshot,
        table: &str,
        col: usize,
        lo: i128,
        hi: i128,
    ) -> Result<Response, String> {
        let at = snap
            .commitments
            .get(&(table.to_string(), col))
            .ok_or("no commitment for this table/column (or table changed); re-commit")?;
        let proof = at.prove_range(lo, hi);
        let to_wire = |p: &MerkleProof| WireMerkleProof {
            index: p.index as u64,
            siblings: p.siblings.clone(),
        };
        let row_of = |r: &CommittedRow| Row {
            id: r.id,
            shares: r.shares.clone(),
        };
        Ok(Response::ProvedRows {
            total_rows: at.len() as u64,
            proof: WireRangeProof {
                start: proof.start as u64,
                rows: proof.rows.iter().map(row_of).collect(),
                proofs: proof.proofs.iter().map(to_wire).collect(),
                left_boundary: proof
                    .left_boundary
                    .as_ref()
                    .map(|(r, p)| (row_of(r), to_wire(p))),
                right_boundary: proof
                    .right_boundary
                    .as_ref()
                    .map(|(r, p)| (row_of(r), to_wire(p))),
            },
        })
    }

    fn join(
        &self,
        snap: &Snapshot,
        left: &str,
        right: &str,
        left_col: usize,
        right_col: usize,
    ) -> Result<Response, String> {
        // Hash join on share values. Valid because same-domain values get
        // identical shares at this provider (per-domain polynomials, §V-A).
        let left_rows = self.matching_rows(snap, left, &[])?;
        let right_rows = self.matching_rows(snap, right, &[])?;
        let mut by_share: HashMap<i128, Vec<&Row>> = HashMap::new();
        for row in &left_rows {
            let share = *row
                .shares
                .get(left_col)
                .ok_or_else(|| format!("left column {left_col} out of range"))?;
            by_share.entry(share).or_default().push(row);
        }
        let mut out = Vec::new();
        for rrow in &right_rows {
            let share = *rrow
                .shares
                .get(right_col)
                .ok_or_else(|| format!("right column {right_col} out of range"))?;
            if let Some(matches) = by_share.get(&share) {
                for lrow in matches {
                    out.push(((*lrow).clone(), rrow.clone()));
                }
            }
        }
        Ok(Response::Joined(out))
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[(u64, &[i128])]) -> Vec<Row> {
        data.iter()
            .map(|&(id, shares)| Row {
                id,
                shares: shares.to_vec(),
            })
            .collect()
    }

    fn engine_with_table() -> ProviderEngine {
        let e = ProviderEngine::new();
        let resp = e.execute(&Request::CreateTable {
            name: "emp".into(),
            columns: vec!["name".into(), "salary".into()],
            indexed: vec![true, true],
        });
        assert_eq!(resp, Response::Ack);
        let resp = e.execute(&Request::Insert {
            table: "emp".into(),
            rows: rows(&[
                (1, &[100, 210]),
                (2, &[200, 30]),
                (3, &[100, 42]),
                (4, &[300, 64]),
                (5, &[400, 88]),
            ]),
        });
        assert_eq!(resp, Response::Ack);
        e
    }

    #[test]
    fn create_twice_fails() {
        let e = engine_with_table();
        let resp = e.execute(&Request::CreateTable {
            name: "emp".into(),
            columns: vec!["x".into()],
            indexed: vec![true],
        });
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn exact_match_via_index() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Eq { col: 0, share: 100 }],
            agg: None,
        });
        let Response::Rows(got) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(e.stats().index_probes, 1);
        assert_eq!(e.stats().full_scans, 0);
    }

    #[test]
    fn range_query_via_index() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Range {
                col: 1,
                lo: 40,
                hi: 90,
            }],
            agg: None,
        });
        let Response::Rows(got) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn conjunction_filters_on_both() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![
                PredAtom::Eq { col: 0, share: 100 },
                PredAtom::Range {
                    col: 1,
                    lo: 0,
                    hi: 50,
                },
            ],
            agg: None,
        });
        let Response::Rows(got) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn empty_predicate_returns_all() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![],
            agg: None,
        });
        let Response::Rows(got) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(got.len(), 5);
        assert_eq!(e.stats().full_scans, 1);
    }

    #[test]
    fn aggregates_over_shares() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![],
            agg: Some(AggOp::Sum { col: 1 }),
        });
        assert_eq!(
            resp,
            Response::Agg {
                sum: 210 + 30 + 42 + 64 + 88,
                count: 5,
                row: None
            }
        );

        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![],
            agg: Some(AggOp::Min { col: 1 }),
        });
        let Response::Agg {
            row: Some(row),
            count: 5,
            ..
        } = resp
        else {
            panic!("{resp:?}")
        };
        assert_eq!(row.id, 2); // share 30 is minimal

        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![],
            agg: Some(AggOp::Max { col: 1 }),
        });
        let Response::Agg { row: Some(row), .. } = resp else {
            panic!()
        };
        assert_eq!(row.id, 1); // share 210 is maximal

        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![],
            agg: Some(AggOp::Median { col: 1 }),
        });
        let Response::Agg { row: Some(row), .. } = resp else {
            panic!()
        };
        assert_eq!(row.id, 4); // shares sorted: 30,42,64,88,210 → median 64

        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Eq { col: 0, share: 999 }],
            agg: Some(AggOp::Median { col: 1 }),
        });
        assert_eq!(
            resp,
            Response::Agg {
                sum: 0,
                count: 0,
                row: None
            }
        );
    }

    #[test]
    fn count_with_predicate() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Range {
                col: 1,
                lo: 0,
                hi: 100,
            }],
            agg: Some(AggOp::Count),
        });
        assert_eq!(
            resp,
            Response::Agg {
                sum: 0,
                count: 4,
                row: None
            }
        );
    }

    #[test]
    fn delete_removes_from_index_too() {
        let e = engine_with_table();
        e.execute(&Request::Delete {
            table: "emp".into(),
            ids: vec![1, 3],
        });
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Eq { col: 0, share: 100 }],
            agg: None,
        });
        assert_eq!(resp, Response::Rows(vec![]));
        // Deleting a missing id is a no-op Ack.
        assert_eq!(
            e.execute(&Request::Delete {
                table: "emp".into(),
                ids: vec![99]
            }),
            Response::Ack
        );
    }

    #[test]
    fn update_moves_index_entries() {
        let e = engine_with_table();
        e.execute(&Request::Update {
            table: "emp".into(),
            rows: rows(&[(2, &[100, 31])]),
        });
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Eq { col: 0, share: 100 }],
            agg: None,
        });
        let Response::Rows(got) = resp else { panic!() };
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 2, 3]);
        // Old share value no longer matches row 2.
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![PredAtom::Eq { col: 0, share: 200 }],
            agg: None,
        });
        assert_eq!(resp, Response::Rows(vec![]));
    }

    #[test]
    fn unindexed_column_forces_scan_but_still_filters() {
        let e = ProviderEngine::new();
        e.execute(&Request::CreateTable {
            name: "t".into(),
            columns: vec!["rand".into()],
            indexed: vec![false],
        });
        e.execute(&Request::Insert {
            table: "t".into(),
            rows: rows(&[(1, &[5]), (2, &[9])]),
        });
        let resp = e.execute(&Request::Query {
            table: "t".into(),
            predicate: vec![PredAtom::Eq { col: 0, share: 9 }],
            agg: None,
        });
        let Response::Rows(got) = resp else { panic!() };
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2]);
        assert_eq!(e.stats().full_scans, 1);
    }

    #[test]
    fn join_on_share_equality() {
        let e = engine_with_table();
        e.execute(&Request::CreateTable {
            name: "mgr".into(),
            columns: vec!["name".into(), "level".into()],
            indexed: vec![true, false],
        });
        e.execute(&Request::Insert {
            table: "mgr".into(),
            rows: rows(&[(10, &[100, 1]), (11, &[500, 2])]),
        });
        let resp = e.execute(&Request::Join {
            left: "emp".into(),
            right: "mgr".into(),
            left_col: 0,
            right_col: 0,
        });
        let Response::Joined(pairs) = resp else {
            panic!("{resp:?}")
        };
        // emp rows 1 and 3 have name-share 100; mgr row 10 matches.
        let mut ids: Vec<(u64, u64)> = pairs.iter().map(|(l, r)| (l.id, r.id)).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![(1, 10), (3, 10)]);
    }

    #[test]
    fn errors_are_responses_not_panics() {
        let e = engine_with_table();
        for req in [
            Request::Insert {
                table: "nope".into(),
                rows: vec![],
            },
            Request::Query {
                table: "nope".into(),
                predicate: vec![],
                agg: None,
            },
            Request::Insert {
                table: "emp".into(),
                rows: rows(&[(9, &[1])]), // wrong arity
            },
            Request::Insert {
                table: "emp".into(),
                rows: rows(&[(1, &[1, 2])]), // duplicate id
            },
            Request::Query {
                table: "emp".into(),
                predicate: vec![],
                agg: Some(AggOp::Sum { col: 99 }),
            },
        ] {
            assert!(
                matches!(e.execute(&req), Response::Error(_)),
                "{req:?} should error"
            );
        }
    }

    #[test]
    fn ordered_query_top_k() {
        let e = engine_with_table();
        // Order by salary share (col 1), ascending, top 3.
        let resp = e.execute(&Request::QueryOrdered {
            table: "emp".into(),
            predicate: vec![],
            order_col: 1,
            desc: false,
            limit: 3,
        });
        let Response::Rows(rows) = resp else {
            panic!("{resp:?}")
        };
        let shares: Vec<i128> = rows.iter().map(|r| r.shares[1]).collect();
        assert_eq!(shares, vec![30, 42, 64]);
        // Descending top 2.
        let resp = e.execute(&Request::QueryOrdered {
            table: "emp".into(),
            predicate: vec![],
            order_col: 1,
            desc: true,
            limit: 2,
        });
        let Response::Rows(rows) = resp else { panic!() };
        assert_eq!(
            rows.iter().map(|r| r.shares[1]).collect::<Vec<_>>(),
            vec![210, 88]
        );
        // With a predicate.
        let resp = e.execute(&Request::QueryOrdered {
            table: "emp".into(),
            predicate: vec![PredAtom::Range {
                col: 1,
                lo: 40,
                hi: 100,
            }],
            order_col: 1,
            desc: true,
            limit: 10,
        });
        let Response::Rows(rows) = resp else { panic!() };
        assert_eq!(
            rows.iter().map(|r| r.shares[1]).collect::<Vec<_>>(),
            vec![88, 64, 42]
        );
        // Bad column errors.
        let resp = e.execute(&Request::QueryOrdered {
            table: "emp".into(),
            predicate: vec![],
            order_col: 9,
            desc: false,
            limit: 1,
        });
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn grouped_aggregate_partials() {
        let e = engine_with_table();
        // Group by name share (col 0), sum salary shares (col 1).
        let resp = e.execute(&Request::GroupedAggregate {
            table: "emp".into(),
            predicate: vec![],
            group_col: 0,
            agg: AggOp::Sum { col: 1 },
        });
        let Response::Groups(groups) = resp else {
            panic!("{resp:?}")
        };
        // name shares: 100 → rows 1,3; 200 → row 2; 300 → row 4; 400 → row 5.
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].rep_row, 1);
        assert_eq!(groups[0].group_share, 100);
        assert_eq!(groups[0].sum, 210 + 42);
        assert_eq!(groups[0].count, 2);
        assert_eq!(groups[1].rep_row, 2);
        assert_eq!(groups[1].sum, 30);
        // Count variant.
        let resp = e.execute(&Request::GroupedAggregate {
            table: "emp".into(),
            predicate: vec![],
            group_col: 0,
            agg: AggOp::Count,
        });
        let Response::Groups(groups) = resp else {
            panic!()
        };
        assert_eq!(groups[0].count, 2);
        assert_eq!(groups[0].sum, 0);
        // Min is not groupable.
        let resp = e.execute(&Request::GroupedAggregate {
            table: "emp".into(),
            predicate: vec![],
            group_col: 0,
            agg: AggOp::Min { col: 1 },
        });
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn grouped_aggregate_with_predicate() {
        let e = engine_with_table();
        let resp = e.execute(&Request::GroupedAggregate {
            table: "emp".into(),
            predicate: vec![PredAtom::Range {
                col: 1,
                lo: 0,
                hi: 100,
            }],
            group_col: 0,
            agg: AggOp::Sum { col: 1 },
        });
        let Response::Groups(groups) = resp else {
            panic!()
        };
        // Rows with salary share ≤ 100: ids 2,3,4,5 → name groups 200,100,300,400.
        assert_eq!(groups.len(), 4);
        let g100 = groups.iter().find(|g| g.group_share == 100).unwrap();
        assert_eq!((g100.rep_row, g100.sum, g100.count), (3, 42, 1));
    }

    #[test]
    fn commit_and_verified_range() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Commit {
            table: "emp".into(),
            col: 1,
        });
        let Response::Committed { root, total_rows } = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(total_rows, 5);

        let resp = e.execute(&Request::VerifiedRange {
            table: "emp".into(),
            col: 1,
            lo: 40,
            hi: 90,
        });
        let Response::ProvedRows { total_rows, proof } = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(total_rows, 5);
        assert_eq!(
            proof.rows.iter().map(|r| r.shares[1]).collect::<Vec<_>>(),
            vec![42, 64, 88]
        );
        assert_eq!(proof.proofs.len(), 3);
        assert!(proof.left_boundary.is_some()); // share 30 below
        assert!(proof.right_boundary.is_some()); // share 210 above

        // Re-committing is idempotent in root for unchanged data.
        let resp = e.execute(&Request::Commit {
            table: "emp".into(),
            col: 1,
        });
        let Response::Committed { root: root2, .. } = resp else {
            panic!()
        };
        assert_eq!(root, root2);
    }

    #[test]
    fn verified_range_refused_after_mutation() {
        let e = engine_with_table();
        e.execute(&Request::Commit {
            table: "emp".into(),
            col: 1,
        });
        e.execute(&Request::Insert {
            table: "emp".into(),
            rows: rows(&[(9, &[500, 70])]),
        });
        let resp = e.execute(&Request::VerifiedRange {
            table: "emp".into(),
            col: 1,
            lo: 0,
            hi: 100,
        });
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");
        // Deleting also invalidates.
        e.execute(&Request::Commit {
            table: "emp".into(),
            col: 1,
        });
        e.execute(&Request::Delete {
            table: "emp".into(),
            ids: vec![9],
        });
        let resp = e.execute(&Request::VerifiedRange {
            table: "emp".into(),
            col: 1,
            lo: 0,
            hi: 100,
        });
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn verified_range_without_commit_errors() {
        let e = engine_with_table();
        let resp = e.execute(&Request::VerifiedRange {
            table: "emp".into(),
            col: 1,
            lo: 0,
            hi: 10,
        });
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn stats_request_counts() {
        let e = engine_with_table();
        let resp = e.execute(&Request::Stats);
        assert_eq!(resp, Response::Stats { tables: 1, rows: 5 });
    }

    #[test]
    fn selective_conjunction_intersects_index_hits() {
        // Satellite regression: with two indexed atoms, the engine must
        // intersect the two smallest index hit sets instead of examining
        // every row matched by a single (unselective) atom.
        let e = ProviderEngine::new();
        e.execute(&Request::CreateTable {
            name: "t".into(),
            columns: vec!["dept".into(), "badge".into()],
            indexed: vec![true, true],
        });
        // dept share is the same for every row (one giant department);
        // badge shares are unique.
        let data: Vec<Row> = (0..3000u64)
            .map(|i| Row {
                id: i,
                shares: vec![100, i as i128 * 3],
            })
            .collect();
        e.execute(&Request::Insert {
            table: "t".into(),
            rows: data,
        });
        let before = e.stats();
        let resp = e.execute(&Request::Query {
            table: "t".into(),
            predicate: vec![
                PredAtom::Eq { col: 0, share: 100 },
                PredAtom::Eq {
                    col: 1,
                    share: 1500,
                },
            ],
            agg: None,
        });
        let Response::Rows(got) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![500]);
        let after = e.stats();
        // One logical index probe per query, zero scans.
        assert_eq!(after.index_probes - before.index_probes, 1);
        assert_eq!(after.full_scans, 0);
        // The badge atom matches exactly one row; the intersection must
        // keep heap lookups at that scale instead of all 3000 dept hits.
        let examined = after.rows_examined - before.rows_examined;
        assert!(examined <= 2, "intersection examined {examined} rows");
    }

    #[test]
    fn top_k_heap_matches_full_sort_ties_included() {
        // Rows with duplicate shares: heap selection must reproduce the
        // stable sort's tie order (ids ascend when asc, descend when desc).
        let data: Vec<Row> = rows(&[
            (1, &[7]),
            (2, &[3]),
            (3, &[7]),
            (4, &[1]),
            (5, &[3]),
            (6, &[9]),
        ]);
        let asc = top_k(data.clone(), 0, false, 4);
        assert_eq!(
            asc.iter().map(|r| (r.shares[0], r.id)).collect::<Vec<_>>(),
            vec![(1, 4), (3, 2), (3, 5), (7, 1)]
        );
        let desc = top_k(data.clone(), 0, true, 4);
        assert_eq!(
            desc.iter().map(|r| (r.shares[0], r.id)).collect::<Vec<_>>(),
            vec![(9, 6), (7, 3), (7, 1), (3, 5)]
        );
        // Limit ≥ n falls back to the full sort; limit 0 yields nothing.
        assert_eq!(top_k(data.clone(), 0, false, 100).len(), 6);
        assert!(top_k(data, 0, true, 0).is_empty());
    }

    #[test]
    fn large_table_index_beats_scan_rows_examined() {
        let e = ProviderEngine::new();
        e.execute(&Request::CreateTable {
            name: "big".into(),
            columns: vec!["v".into()],
            indexed: vec![true],
        });
        let data: Vec<Row> = (0..5000u64)
            .map(|i| Row {
                id: i,
                shares: vec![i as i128 * 3],
            })
            .collect();
        e.execute(&Request::Insert {
            table: "big".into(),
            rows: data,
        });
        let before = e.stats().rows_examined;
        let resp = e.execute(&Request::Query {
            table: "big".into(),
            predicate: vec![PredAtom::Range {
                col: 0,
                lo: 300,
                hi: 330,
            }],
            agg: None,
        });
        let Response::Rows(got) = resp else { panic!() };
        assert_eq!(got.len(), 11); // shares 300,303,...,330
        let examined = e.stats().rows_examined - before;
        assert!(examined <= 12, "index probe examined {examined} rows");
    }

    // ---- durability & snapshot tests ----

    use dasp_storage::wal::{arm_crash_point, disarm_crash_points};
    use std::path::PathBuf;
    use std::sync::atomic::AtomicBool;
    use std::sync::Mutex as StdMutex;

    /// Crash-point hooks are process-global; tests that arm them must not
    /// overlap.
    static HOOK_GATE: StdMutex<()> = StdMutex::new(());

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dasp-engine-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Durable config with per-op fsync and no auto-checkpoint, so tests
    /// control exactly what is in the log vs the image.
    fn tight_cfg() -> DurableConfig {
        DurableConfig {
            wal: WalConfig {
                fsync_every: 1,
                ..WalConfig::default()
            },
            checkpoint_every: 0,
            pool_frames: 64,
        }
    }

    #[test]
    fn durable_engine_recovers_wal_only_state() {
        let dir = test_dir("wal-only");
        let root1;
        {
            let (e, _) = ProviderEngine::durable(&dir, tight_cfg()).unwrap();
            assert!(e.wal_stats().is_some());
            e.execute(&Request::CreateTable {
                name: "emp".into(),
                columns: vec!["a".into(), "b".into()],
                indexed: vec![true, false],
            });
            e.execute(&Request::Insert {
                table: "emp".into(),
                rows: rows(&[(1, &[10, 5]), (2, &[20, 6]), (3, &[30, 7])]),
            });
            e.execute(&Request::Delete {
                table: "emp".into(),
                ids: vec![2],
            });
            e.execute(&Request::Increment {
                table: "emp".into(),
                col: 1,
                deltas: vec![(1, 4)],
            });
            let resp = e.execute(&Request::Commit {
                table: "emp".into(),
                col: 0,
            });
            let Response::Committed { root, .. } = resp else {
                panic!("{resp:?}")
            };
            root1 = root;
        }
        let (e, report) = ProviderEngine::recover(&dir).unwrap();
        assert_eq!(report.checkpoint_tables, 0);
        assert_eq!(report.wal_records, 5);
        assert_eq!(report.torn_bytes, 0);
        assert!(!report.wal_reset);
        let resp = e.execute(&Request::Query {
            table: "emp".into(),
            predicate: vec![],
            agg: None,
        });
        let Response::Rows(got) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(
            got.iter()
                .map(|r| (r.id, r.shares.clone()))
                .collect::<Vec<_>>(),
            vec![(1, vec![10, 9]), (3, vec![30, 7])]
        );
        // The commitment survives recovery bit-identically: verified
        // reads work immediately, and re-committing reproduces the root.
        let resp = e.execute(&Request::VerifiedRange {
            table: "emp".into(),
            col: 0,
            lo: 0,
            hi: 100,
        });
        assert!(matches!(resp, Response::ProvedRows { .. }), "{resp:?}");
        let resp = e.execute(&Request::Commit {
            table: "emp".into(),
            col: 0,
        });
        let Response::Committed { root: root2, .. } = resp else {
            panic!()
        };
        assert_eq!(root1, root2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_combines_checkpoint_image_and_log_tail() {
        let dir = test_dir("ckpt-tail");
        {
            let (e, _) = ProviderEngine::durable(&dir, tight_cfg()).unwrap();
            e.execute(&Request::CreateTable {
                name: "t".into(),
                columns: vec!["v".into()],
                indexed: vec![true],
            });
            let data: Vec<Row> = (0..50u64)
                .map(|i| Row {
                    id: i,
                    shares: vec![i as i128 * 3],
                })
                .collect();
            assert_eq!(
                e.execute(&Request::Insert {
                    table: "t".into(),
                    rows: data,
                }),
                Response::Ack
            );
            e.checkpoint().unwrap();
            let more: Vec<Row> = (50..60u64)
                .map(|i| Row {
                    id: i,
                    shares: vec![i as i128 * 3],
                })
                .collect();
            e.execute(&Request::Insert {
                table: "t".into(),
                rows: more,
            });
            e.execute(&Request::Delete {
                table: "t".into(),
                ids: vec![0, 1],
            });
        }
        let (e, report) = ProviderEngine::recover(&dir).unwrap();
        assert_eq!(report.checkpoint_tables, 1);
        assert_eq!(report.checkpoint_rows, 50);
        assert_eq!(report.wal_records, 2);
        assert_eq!(
            e.execute(&Request::Stats),
            Response::Stats {
                tables: 1,
                rows: 58
            }
        );
        // Indexes were rebuilt: a range probe answers without a scan.
        let resp = e.execute(&Request::Query {
            table: "t".into(),
            predicate: vec![PredAtom::Range {
                col: 0,
                lo: 150,
                hi: 177,
            }],
            agg: Some(AggOp::Count),
        });
        assert_eq!(
            resp,
            Response::Agg {
                sum: 0,
                count: 10,
                row: None
            }
        );
        assert_eq!(e.stats().full_scans, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_loses_only_the_torn_op() {
        let _gate = HOOK_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let dir = test_dir("torn");
        {
            let (e, _) = ProviderEngine::durable(&dir, tight_cfg()).unwrap();
            e.execute(&Request::CreateTable {
                name: "t".into(),
                columns: vec!["v".into()],
                indexed: vec![true],
            });
            assert_eq!(
                e.execute(&Request::Insert {
                    table: "t".into(),
                    rows: rows(&[(1, &[11])]),
                }),
                Response::Ack
            );
            arm_crash_point(CrashPoint::MidRecord);
            let resp = e.execute(&Request::Insert {
                table: "t".into(),
                rows: rows(&[(2, &[22])]),
            });
            disarm_crash_points();
            assert!(matches!(resp, Response::Error(_)), "{resp:?}");
            // The engine is poisoned until recovery: no further write may
            // succeed (it could silently outlive the lost one).
            let resp = e.execute(&Request::Insert {
                table: "t".into(),
                rows: rows(&[(3, &[33])]),
            });
            assert!(matches!(resp, Response::Error(_)), "{resp:?}");
        }
        let (e, report) = ProviderEngine::recover(&dir).unwrap();
        // The in-process hook poisons the log before the torn half can be
        // flushed, so the file ends cleanly after the committed prefix
        // (on-disk torn tails are exercised by the fault-injection fuzz).
        assert_eq!(report.wal_records, 2); // create + first insert
        let resp = e.execute(&Request::Query {
            table: "t".into(),
            predicate: vec![],
            agg: None,
        });
        let Response::Rows(got) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_checkpoint_leaves_log_authoritative() {
        let _gate = HOOK_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let dir = test_dir("mid-ckpt");
        {
            let (e, _) = ProviderEngine::durable(&dir, tight_cfg()).unwrap();
            e.execute(&Request::CreateTable {
                name: "t".into(),
                columns: vec!["v".into()],
                indexed: vec![true],
            });
            e.execute(&Request::Insert {
                table: "t".into(),
                rows: rows(&[(1, &[1]), (2, &[2]), (3, &[3]), (4, &[4]), (5, &[5])]),
            });
            arm_crash_point(CrashPoint::MidCheckpoint);
            let res = e.checkpoint();
            disarm_crash_points();
            assert!(res.is_err());
            // Writes are refused; published reads still serve.
            let resp = e.execute(&Request::Insert {
                table: "t".into(),
                rows: rows(&[(6, &[6])]),
            });
            assert!(matches!(resp, Response::Error(_)));
            assert_eq!(
                e.execute(&Request::Stats),
                Response::Stats { tables: 1, rows: 5 }
            );
        }
        let (e, report) = ProviderEngine::recover(&dir).unwrap();
        assert_eq!(report.checkpoint_tables, 0); // meta never swung
        assert_eq!(report.wal_records, 2);
        assert_eq!(
            e.execute(&Request::Stats),
            Response::Stats { tables: 1, rows: 5 }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_between_meta_swing_and_log_retirement_is_safe() {
        let _gate = HOOK_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let dir = test_dir("wal-switch");
        {
            let (e, _) = ProviderEngine::durable(&dir, tight_cfg()).unwrap();
            e.execute(&Request::CreateTable {
                name: "t".into(),
                columns: vec!["v".into()],
                indexed: vec![false],
            });
            let data: Vec<Row> = (0..10u64)
                .map(|i| Row {
                    id: i,
                    shares: vec![i as i128],
                })
                .collect();
            e.execute(&Request::Insert {
                table: "t".into(),
                rows: data,
            });
            arm_crash_point(CrashPoint::BeforeWalSwitch);
            let res = e.checkpoint();
            disarm_crash_points();
            assert!(res.is_err());
        }
        // meta.bin now points at the new image (generation 1) while the
        // log still carries generation 0. Recovery must reset the log —
        // replaying those superseded records on top of the image would
        // double-apply the create and inserts.
        let (e, report) = ProviderEngine::recover(&dir).unwrap();
        assert!(report.wal_reset, "{report:?}");
        assert_eq!(report.checkpoint_rows, 10);
        assert_eq!(report.wal_records, 0);
        assert_eq!(
            e.execute(&Request::Stats),
            Response::Stats {
                tables: 1,
                rows: 10
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn readers_see_whole_batches_never_partial() {
        // Bulk inserts of 100 rows each race with readers counting rows:
        // a snapshot reader must only ever observe a multiple of 100.
        let e = Arc::new(ProviderEngine::new());
        e.execute(&Request::CreateTable {
            name: "t".into(),
            columns: vec!["v".into()],
            indexed: vec![false],
        });
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let e = Arc::clone(&e);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let resp = e.execute(&Request::Query {
                            table: "t".into(),
                            predicate: vec![],
                            agg: Some(AggOp::Count),
                        });
                        let Response::Agg { count, .. } = resp else {
                            panic!("{resp:?}")
                        };
                        assert_eq!(count % 100, 0, "reader saw a torn batch: {count}");
                    }
                })
            })
            .collect();
        for batch in 0..30u64 {
            let data: Vec<Row> = (0..100u64)
                .map(|i| Row {
                    id: batch * 100 + i,
                    shares: vec![batch as i128],
                })
                .collect();
            assert_eq!(
                e.execute(&Request::Insert {
                    table: "t".into(),
                    rows: data,
                }),
                Response::Ack
            );
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        // Writer read-own-write: everything inserted is visible.
        let resp = e.execute(&Request::Query {
            table: "t".into(),
            predicate: vec![],
            agg: Some(AggOp::Count),
        });
        assert_eq!(
            resp,
            Response::Agg {
                sum: 0,
                count: 3000,
                row: None
            }
        );
    }
}
