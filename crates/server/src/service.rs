//! Glue between [`ProviderEngine`] and the RPC fabric.

use crate::engine::{DurableConfig, ProviderEngine, RecoveryReport};
use crate::proto::{Request, Response};
use dasp_net::{Service, ServiceFactory, SharedService};
use dasp_storage::RecoveryError;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A provider as an RPC service: decodes requests, runs the engine,
/// encodes responses. Undecodable requests produce an encoded
/// [`Response::Error`], never a crash — a provider must survive malformed
/// (or malicious) client traffic.
pub struct ProviderService {
    engine: ProviderEngine,
}

impl Default for ProviderService {
    fn default() -> Self {
        Self::new()
    }
}

impl ProviderService {
    /// A service with a fresh engine.
    pub fn new() -> Self {
        ProviderService {
            engine: ProviderEngine::new(),
        }
    }

    /// Wrap an existing engine (e.g. one recovered from disk).
    pub fn with_engine(engine: ProviderEngine) -> Self {
        ProviderService { engine }
    }

    /// Open (or recover) a durable provider in `dir` and serve it.
    pub fn durable(
        dir: &Path,
        cfg: DurableConfig,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        let (engine, report) = ProviderEngine::durable(dir, cfg)?;
        Ok((ProviderService { engine }, report))
    }

    /// Access the engine (e.g. to preload public tables in tests).
    pub fn engine_mut(&mut self) -> &mut ProviderEngine {
        &mut self.engine
    }

    /// Shared view of the engine. Execution is `&self`: the engine's
    /// internal read/write lock arbitrates concurrent requests.
    pub fn engine(&self) -> &ProviderEngine {
        &self.engine
    }

    fn serve(&self, request: &[u8]) -> Vec<u8> {
        let response = match Request::decode(request) {
            Ok(req) => self.engine.execute(&req),
            Err(e) => Response::Error(format!("bad request: {e}")),
        };
        response.encode()
    }
}

impl Service for ProviderService {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self.serve(request)
    }
}

impl SharedService for ProviderService {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        self.serve(request)
    }
}

/// Build `n` independent provider services for a cluster.
pub fn provider_fleet(n: usize) -> Vec<Box<dyn Service>> {
    (0..n)
        .map(|_| Box::new(ProviderService::new()) as Box<dyn Service>)
        .collect()
}

/// Build `n` independent providers for [`dasp_net::Cluster::spawn_concurrent`]:
/// each serves requests from a per-provider worker pool, with reads
/// interleaving under the engine's shared lock.
pub fn shared_provider_fleet(n: usize) -> Vec<Arc<dyn SharedService>> {
    (0..n)
        .map(|_| Arc::new(ProviderService::new()) as Arc<dyn SharedService>)
        .collect()
}

/// Serve one fresh provider over real TCP on `addr` (use port 0 for an
/// ephemeral port; read it back via [`dasp_net::TcpServer::local_addr`]).
/// The reactor fans every connection into the engine through the shared
/// read lock, so thousands of client sockets share one provider.
pub fn serve_provider_tcp(
    addr: &str,
    cfg: dasp_net::ReactorConfig,
) -> std::io::Result<dasp_net::TcpServer> {
    dasp_net::TcpServer::serve(addr, Arc::new(ProviderService::new()), cfg)
}

/// Serve a caller-prepared service over TCP on `addr` — the hook for
/// preloading tables or wrapping an engine before exposing it (the
/// experiment harness preloads its corpus this way). Batch-frame
/// clients work transparently: the reactor unpacks multi-query frames
/// into individual engine requests and re-coalesces the responses.
pub fn serve_shared_provider_tcp(
    addr: &str,
    service: Arc<dyn SharedService>,
    cfg: dasp_net::ReactorConfig,
) -> std::io::Result<dasp_net::TcpServer> {
    dasp_net::TcpServer::serve(addr, service, cfg)
}

/// Spin up `n` independent TCP providers on ephemeral loopback ports —
/// the socket-transport analogue of [`shared_provider_fleet`]. Returns
/// the servers (keep them alive: dropping a server shuts it down) and
/// the addresses to hand to [`dasp_net::Cluster::connect_tcp`].
pub fn tcp_provider_fleet(
    n: usize,
    cfg: dasp_net::ReactorConfig,
) -> std::io::Result<(Vec<dasp_net::TcpServer>, Vec<std::net::SocketAddr>)> {
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let server = serve_provider_tcp("127.0.0.1:0", cfg.clone())?;
        addrs.push(server.local_addr());
        servers.push(server);
    }
    Ok((servers, addrs))
}

/// Recovery-aware factories for
/// [`dasp_net::Cluster::spawn_concurrent_recovering`]: one durable
/// provider per directory, each recovered (checkpoint image + WAL
/// replay) at cluster spawn time. A directory that fails recovery
/// becomes a dead provider slot — the k-of-n quorum layer masks it like
/// a crashed provider — instead of taking the whole fleet down.
pub fn durable_provider_factories(dirs: Vec<PathBuf>, cfg: DurableConfig) -> Vec<ServiceFactory> {
    dirs.into_iter()
        .map(|dir| {
            Box::new(move || {
                let (service, _report) = ProviderService::durable(&dir, cfg)
                    .map_err(|e| format!("recovery of {} failed: {e}", dir.display()))?;
                Ok(Arc::new(service) as Arc<dyn SharedService>)
            }) as ServiceFactory
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{PredAtom, Row};
    use dasp_net::Cluster;
    use std::time::Duration;

    #[test]
    fn end_to_end_over_rpc() {
        let cluster = Cluster::spawn(provider_fleet(3), Duration::from_millis(500));
        // Create the same table on all providers (with different shares,
        // as the client would).
        for p in 0..3 {
            let req = Request::CreateTable {
                name: "emp".into(),
                columns: vec!["salary".into()],
                indexed: vec![true],
            };
            let resp = Response::decode(&cluster.call(p, req.encode()).unwrap()).unwrap();
            assert_eq!(resp, Response::Ack);
            let req = Request::Insert {
                table: "emp".into(),
                rows: vec![Row {
                    id: 1,
                    shares: vec![100 + p as i128],
                }],
            };
            let resp = Response::decode(&cluster.call(p, req.encode()).unwrap()).unwrap();
            assert_eq!(resp, Response::Ack);
        }
        // Each provider sees only its own share.
        for p in 0..3 {
            let req = Request::Query {
                table: "emp".into(),
                predicate: vec![PredAtom::Eq {
                    col: 0,
                    share: 100 + p as i128,
                }],
                agg: None,
            };
            let resp = Response::decode(&cluster.call(p, req.encode()).unwrap()).unwrap();
            let Response::Rows(rows) = resp else { panic!() };
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0].shares, vec![100 + p as i128]);
        }
    }

    #[test]
    fn file_backed_provider_survives_data_volume() {
        use dasp_storage::{BufferPool, FileBackend, Pager};
        let dir = std::env::temp_dir().join(format!("dasp-provider-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("provider.db");
        let _ = std::fs::remove_file(&path);
        let pool = BufferPool::new(Pager::new(FileBackend::open(&path).unwrap()), 64);
        let engine = crate::engine::ProviderEngine::with_pool(pool);
        engine.execute(&Request::CreateTable {
            name: "t".into(),
            columns: vec!["v".into()],
            indexed: vec![true],
        });
        let rows: Vec<Row> = (0..2000u64)
            .map(|i| Row {
                id: i + 1,
                shares: vec![i as i128 * 5],
            })
            .collect();
        assert_eq!(
            engine.execute(&Request::Insert {
                table: "t".into(),
                rows
            }),
            Response::Ack
        );
        engine.sync().unwrap();
        // Data larger than the 64-frame pool still answers correctly
        // through evictions and write-backs.
        let resp = engine.execute(&Request::Query {
            table: "t".into(),
            predicate: vec![PredAtom::Range {
                col: 0,
                lo: 100,
                hi: 200,
            }],
            agg: None,
        });
        let Response::Rows(got) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(got.len(), 21); // shares 100,105,...,200
        assert!(
            std::fs::metadata(&path).unwrap().len() > 0,
            "pages reached the file"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_clients_share_one_cluster() {
        // The Cluster is used from multiple client threads at once; every
        // call must get its own reply (no cross-talk).
        let cluster =
            std::sync::Arc::new(Cluster::spawn(provider_fleet(2), Duration::from_secs(2)));
        // One shared table.
        let req = Request::CreateTable {
            name: "t".into(),
            columns: vec!["v".into()],
            indexed: vec![true],
        };
        for p in 0..2 {
            cluster.call(p, req.encode()).unwrap();
        }
        std::thread::scope(|scope| {
            for worker in 0..8u64 {
                let cluster = std::sync::Arc::clone(&cluster);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let id = worker * 1000 + i + 1;
                        let req = Request::Insert {
                            table: "t".into(),
                            rows: vec![Row {
                                id,
                                shares: vec![id as i128],
                            }],
                        };
                        for p in 0..2 {
                            let resp =
                                Response::decode(&cluster.call(p, req.encode()).unwrap()).unwrap();
                            assert_eq!(resp, Response::Ack, "worker {worker} row {id}");
                        }
                        // Read own write back.
                        let q = Request::Query {
                            table: "t".into(),
                            predicate: vec![PredAtom::Eq {
                                col: 0,
                                share: id as i128,
                            }],
                            agg: None,
                        };
                        let resp = Response::decode(&cluster.call(0, q.encode()).unwrap()).unwrap();
                        let Response::Rows(rows) = resp else { panic!() };
                        assert_eq!(rows.len(), 1);
                        assert_eq!(rows[0].id, id);
                    }
                });
            }
        });
        // Total row count is exact: no lost or duplicated writes.
        let resp = Response::decode(&cluster.call(0, Request::Stats.encode()).unwrap()).unwrap();
        assert_eq!(
            resp,
            Response::Stats {
                tables: 1,
                rows: 400
            }
        );
    }

    #[test]
    fn malformed_request_returns_error_response() {
        let cluster = Cluster::spawn(provider_fleet(1), Duration::from_millis(500));
        let resp_bytes = cluster.call(0, vec![0xff, 0x00, 0x12]).unwrap();
        let resp = Response::decode(&resp_bytes).unwrap();
        assert!(matches!(resp, Response::Error(_)));
        // The provider is still alive afterwards.
        let resp = Response::decode(&cluster.call(0, Request::Stats.encode()).unwrap()).unwrap();
        assert_eq!(resp, Response::Stats { tables: 0, rows: 0 });
    }
}
