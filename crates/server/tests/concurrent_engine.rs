//! Stress tests for the concurrent provider engine: readers racing
//! writers under the shared-read / exclusive-write lock split.
//!
//! Invariant scheme: every row in table `t` carries two shares with
//! `shares[1] == shares[0] + GAP`. A reader that ever observes a row
//! violating the invariant has seen a torn write — the engine's
//! exclusive write path is supposed to make that impossible.

use dasp_server::proto::{AggOp, PredAtom, Request, Response, Row};
use dasp_server::ProviderEngine;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const GAP: i128 = 7;

fn mk_row(id: u64) -> Row {
    Row {
        id,
        shares: vec![id as i128 * 10, id as i128 * 10 + GAP],
    }
}

fn create_t(engine: &ProviderEngine) {
    let resp = engine.execute(&Request::CreateTable {
        name: "t".into(),
        columns: vec!["a".into(), "b".into()],
        indexed: vec![true, false],
    });
    assert_eq!(resp, Response::Ack);
}

/// The write script both the live engine and the serial replay run.
/// Writers operate on disjoint id ranges, so any interleaving of the
/// per-thread scripts reaches the same final state.
fn writer_script(writer: u64) -> Vec<Request> {
    let base = 10_000 * (writer + 1);
    let mut ops = Vec::new();
    for batch in 0..20u64 {
        let lo = base + batch * 50;
        let rows: Vec<Row> = (lo..lo + 50).map(mk_row).collect();
        ops.push(Request::Insert {
            table: "t".into(),
            rows,
        });
        // Rewrite the first half with new values (invariant preserved),
        // then delete every fourth row.
        let rewritten: Vec<Row> = (lo..lo + 25)
            .map(|id| Row {
                id,
                shares: vec![id as i128 * 100, id as i128 * 100 + GAP],
            })
            .collect();
        ops.push(Request::Update {
            table: "t".into(),
            rows: rewritten,
        });
        let doomed: Vec<u64> = (lo..lo + 50).step_by(4).collect();
        ops.push(Request::Delete {
            table: "t".into(),
            ids: doomed,
        });
    }
    ops
}

fn full_scan(engine: &ProviderEngine) -> Vec<Row> {
    let resp = engine.execute(&Request::Query {
        table: "t".into(),
        predicate: vec![],
        agg: None,
    });
    let Response::Rows(rows) = resp else {
        panic!("full scan failed: {resp:?}")
    };
    rows
}

#[test]
fn readers_race_writers_without_torn_rows() {
    let engine = Arc::new(ProviderEngine::new());
    create_t(&engine);
    // Seed rows the readers can always find.
    let seed: Vec<Row> = (1..=200).map(mk_row).collect();
    assert_eq!(
        engine.execute(&Request::Insert {
            table: "t".into(),
            rows: seed,
        }),
        Response::Ack
    );

    let done = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        // Two writers on disjoint id ranges.
        for w in 0..2u64 {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for op in writer_script(w) {
                    assert_eq!(engine.execute(&op), Response::Ack);
                }
            });
        }
        // Readers: range scans, aggregates, and ordered top-k, each
        // checking every visible row for the invariant.
        for _ in 0..2 {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            let reads = Arc::clone(&reads);
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let rows = full_scan(&engine);
                    assert!(rows.len() >= 200, "seed rows vanished");
                    for row in &rows {
                        assert_eq!(
                            row.shares[1] - row.shares[0],
                            GAP,
                            "torn row {} observed",
                            row.id
                        );
                    }
                    // Aggregate over the same snapshot semantics.
                    let resp = engine.execute(&Request::Query {
                        table: "t".into(),
                        predicate: vec![PredAtom::Range {
                            col: 0,
                            lo: 10,
                            hi: 2_000,
                        }],
                        agg: Some(AggOp::Sum { col: 1 }),
                    });
                    let Response::Agg { sum, count, .. } = resp else {
                        panic!("agg failed: {resp:?}")
                    };
                    // Seed rows 1..=200 are never written again, so the
                    // window over their shares is stable.
                    assert_eq!(count, 200);
                    let expected: i128 = (1..=200i128).map(|i| i * 10 + GAP).sum();
                    assert_eq!(sum, expected);
                    // Ordered top-k interleaves under the same read lock.
                    let resp = engine.execute(&Request::QueryOrdered {
                        table: "t".into(),
                        predicate: vec![],
                        order_col: 0,
                        desc: true,
                        limit: 10,
                    });
                    let Response::Rows(top) = resp else {
                        panic!("ordered failed: {resp:?}")
                    };
                    assert_eq!(top.len(), 10);
                    for pair in top.windows(2) {
                        assert!(pair[0].shares[0] >= pair[1].shares[0]);
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Writers are the first two spawned threads; when the scope's
        // writer work is done we flip the flag. Easiest: a third watcher
        // is overkill — writers finish, then we flip after joining them
        // implicitly via a drain thread.
        let engine_done = Arc::clone(&done);
        let engine2 = Arc::clone(&engine);
        scope.spawn(move || {
            // Poll until both writer ranges reach their final row counts.
            loop {
                let rows = full_scan(&engine2);
                let finished = (1..=2u64).all(|w| {
                    let base = 10_000 * w;
                    let in_range = rows
                        .iter()
                        .filter(|r| r.id >= base && r.id < base + 10_000)
                        .count();
                    // Each batch inserts 50 and deletes 13 (ids lo,
                    // lo+4, ..., lo+48), leaving 37 × 20 batches.
                    in_range == 37 * 20
                });
                if finished {
                    engine_done.store(true, Ordering::Relaxed);
                    break;
                }
                std::thread::yield_now();
            }
        });
    });
    assert!(reads.load(Ordering::Relaxed) > 0, "readers never ran");

    // Serial replay on a fresh engine must reach the same final state.
    let replay = ProviderEngine::new();
    create_t(&replay);
    let seed: Vec<Row> = (1..=200).map(mk_row).collect();
    replay.execute(&Request::Insert {
        table: "t".into(),
        rows: seed,
    });
    for w in 0..2u64 {
        for op in writer_script(w) {
            assert_eq!(replay.execute(&op), Response::Ack);
        }
    }
    let mut live = full_scan(&engine);
    let mut serial = full_scan(&replay);
    live.sort_by_key(|r| r.id);
    serial.sort_by_key(|r| r.id);
    assert_eq!(live, serial, "concurrent final state diverged from serial");
}

#[test]
fn concurrent_reads_keep_stats_exact() {
    // Atomic stats counters must add up exactly: R threads × Q identical
    // queries produce R×Q times the serial per-query deltas.
    let mk = || {
        let engine = ProviderEngine::new();
        let resp = engine.execute(&Request::CreateTable {
            name: "t".into(),
            columns: vec!["a".into(), "b".into()],
            indexed: vec![true, false],
        });
        assert_eq!(resp, Response::Ack);
        let rows: Vec<Row> = (1..=1000).map(mk_row).collect();
        assert_eq!(
            engine.execute(&Request::Insert {
                table: "t".into(),
                rows,
            }),
            Response::Ack
        );
        engine
    };
    let query = Request::Query {
        table: "t".into(),
        predicate: vec![PredAtom::Eq {
            col: 0,
            share: 5000,
        }],
        agg: None,
    };

    let serial = mk();
    let before = serial.stats();
    let resp = serial.execute(&query);
    assert!(matches!(resp, Response::Rows(ref r) if r.len() == 1));
    let after = serial.stats();
    let (d_probes, d_scans, d_examined) = (
        after.index_probes - before.index_probes,
        after.full_scans - before.full_scans,
        after.rows_examined - before.rows_examined,
    );
    assert_eq!(d_probes, 1);

    let concurrent = Arc::new(mk());
    let base = concurrent.stats();
    const READERS: u64 = 4;
    const QUERIES: u64 = 25;
    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let engine = Arc::clone(&concurrent);
            let query = query.clone();
            scope.spawn(move || {
                for _ in 0..QUERIES {
                    let resp = engine.execute(&query);
                    assert!(matches!(resp, Response::Rows(ref r) if r.len() == 1));
                }
            });
        }
    });
    let end = concurrent.stats();
    let total = READERS * QUERIES;
    assert_eq!(end.index_probes - base.index_probes, d_probes * total);
    assert_eq!(end.full_scans - base.full_scans, d_scans * total);
    assert_eq!(end.rows_examined - base.rows_examined, d_examined * total);
}

#[test]
fn worker_pool_cluster_survives_mixed_load() {
    // Cluster-level: providers served by multi-worker pools (count from
    // DASP_PROVIDER_WORKERS, default 4) under concurrent client threads
    // mixing writes and reads. No lost/duplicated writes, no cross-talk.
    use dasp_net::Cluster;
    use dasp_server::shared_provider_fleet;
    use std::time::Duration;

    let workers: usize = std::env::var("DASP_PROVIDER_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let cluster = Arc::new(Cluster::spawn_concurrent(
        shared_provider_fleet(2),
        Duration::from_secs(5),
        workers,
    ));
    let req = Request::CreateTable {
        name: "t".into(),
        columns: vec!["a".into(), "b".into()],
        indexed: vec![true, false],
    };
    for p in 0..2 {
        let resp = Response::decode(&cluster.call(p, req.encode()).unwrap()).unwrap();
        assert_eq!(resp, Response::Ack);
    }
    std::thread::scope(|scope| {
        for client in 0..4u64 {
            let cluster = Arc::clone(&cluster);
            scope.spawn(move || {
                for i in 0..50u64 {
                    let id = client * 1000 + i + 1;
                    let req = Request::Insert {
                        table: "t".into(),
                        rows: vec![mk_row(id)],
                    };
                    for p in 0..2 {
                        let resp =
                            Response::decode(&cluster.call(p, req.encode()).unwrap()).unwrap();
                        assert_eq!(resp, Response::Ack, "client {client} row {id}");
                    }
                    // Read-own-write through the pool; the row must be
                    // whole (both shares, invariant intact).
                    let q = Request::Query {
                        table: "t".into(),
                        predicate: vec![PredAtom::Eq {
                            col: 0,
                            share: id as i128 * 10,
                        }],
                        agg: None,
                    };
                    let resp = Response::decode(&cluster.call(0, q.encode()).unwrap()).unwrap();
                    let Response::Rows(rows) = resp else {
                        panic!("client {client} row {id}: {resp:?}")
                    };
                    assert_eq!(rows.len(), 1);
                    assert_eq!(rows[0].id, id);
                    assert_eq!(rows[0].shares[1] - rows[0].shares[0], GAP);
                }
            });
        }
    });
    for p in 0..2 {
        let resp = Response::decode(&cluster.call(p, Request::Stats.encode()).unwrap()).unwrap();
        assert_eq!(
            resp,
            Response::Stats {
                tables: 1,
                rows: 200
            },
            "provider {p}"
        );
    }
}
