//! Private + public data mash-up (§V-D).
//!
//! The paper's scenario: a client's *private* data (friends, with
//! addresses) should combine with the provider's *public* data
//! (restaurants, with addresses) "without revealing any private
//! information about the friend".
//!
//! The mechanism here is bucketed retrieval: the public table is stored in
//! plaintext at the provider, keyed by a coarse location code. To find
//! restaurants near a friend, the client (1) reconstructs the friend's
//! location locally from shares, (2) asks the provider for the public
//! *bucket* containing it — a range of width `bucket` — and (3) filters
//! exactly at the client. The provider learns only the bucket, never the
//! address: widening the bucket trades bytes transferred for a larger
//! anonymity region, a dial the experiments sweep (E10).

use crate::{ClientError, Result};
use dasp_net::{Cluster, ProviderId};
use dasp_server::proto::{PredAtom, Request, Response, Row};

/// Traffic/leakage accounting for one mash-up query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MashupStats {
    /// Rows transferred from the public table.
    pub rows_fetched: u64,
    /// Rows that actually matched after client-side filtering.
    pub rows_matching: u64,
    /// Width of the location interval revealed to the provider.
    pub leaked_interval: u64,
}

/// A public row: id plus plaintext numeric values.
pub type PublicRow = (u64, Vec<u64>);

/// A bucketed private/public join executor over one provider's public
/// tables.
pub struct BucketJoin<'a> {
    cluster: &'a Cluster,
    provider: ProviderId,
}

impl<'a> BucketJoin<'a> {
    /// Target `provider`'s public tables through `cluster`.
    pub fn new(cluster: &'a Cluster, provider: ProviderId) -> Self {
        BucketJoin { cluster, provider }
    }

    /// Upload a public table (plaintext codes in the share slots). In a
    /// real deployment the provider would source this itself — public
    /// data needs no outsourcing protocol.
    pub fn upload_public(
        &self,
        table: &str,
        columns: &[&str],
        key_col: usize,
        rows: &[PublicRow],
    ) -> Result<()> {
        let create = Request::CreateTable {
            name: table.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            indexed: (0..columns.len()).map(|i| i == key_col).collect(),
        };
        self.call_ack(create)?;
        let insert = Request::Insert {
            table: table.to_string(),
            rows: rows
                .iter()
                .map(|(id, vals)| Row {
                    id: *id,
                    shares: vals.iter().map(|&v| v as i128).collect(),
                })
                .collect(),
        };
        self.call_ack(insert)
    }

    /// Fetch the public rows whose `key_col` value falls in the bucket of
    /// width `bucket` that contains `private_key`, then filter to
    /// `[private_key − radius, private_key + radius]` client-side.
    ///
    /// Returns the matching rows and the stats (what leaked, what moved).
    pub fn near(
        &self,
        table: &str,
        key_col: usize,
        private_key: u64,
        radius: u64,
        bucket: u64,
    ) -> Result<(Vec<PublicRow>, MashupStats)> {
        if bucket == 0 {
            return Err(ClientError::Schema("bucket width must be positive".into()));
        }
        if 2 * radius >= bucket {
            return Err(ClientError::Schema(
                "bucket must exceed the query diameter or matches can straddle buckets — \
                 fetch two buckets or widen"
                    .into(),
            ));
        }
        // Fetch the bucket containing the key and, if the radius spills
        // over an edge, the neighbouring bucket too.
        let b_lo = (private_key / bucket) * bucket;
        let lo = if private_key.saturating_sub(radius) < b_lo {
            b_lo.saturating_sub(bucket)
        } else {
            b_lo
        };
        let hi = if private_key + radius >= b_lo + bucket {
            b_lo + 2 * bucket - 1
        } else {
            b_lo + bucket - 1
        };
        let req = Request::Query {
            table: table.to_string(),
            predicate: vec![PredAtom::Range {
                col: key_col,
                lo: lo as i128,
                hi: hi as i128,
            }],
            agg: None,
        };
        let resp = self.call(req)?;
        let Response::Rows(rows) = resp else {
            return Err(ClientError::Provider("unexpected response".into()));
        };
        let rows_fetched = rows.len() as u64;
        let want_lo = private_key.saturating_sub(radius);
        let want_hi = private_key + radius;
        let matching: Vec<PublicRow> = rows
            .into_iter()
            .filter_map(|r| {
                let vals: Option<Vec<u64>> =
                    r.shares.iter().map(|&s| u64::try_from(s).ok()).collect();
                vals.map(|v| (r.id, v))
            })
            .filter(|(_, vals)| {
                vals.get(key_col)
                    .is_some_and(|&v| v >= want_lo && v <= want_hi)
            })
            .collect();
        let stats = MashupStats {
            rows_fetched,
            rows_matching: matching.len() as u64,
            leaked_interval: hi - lo + 1,
        };
        Ok((matching, stats))
    }

    fn call(&self, req: Request) -> Result<Response> {
        let bytes = self.cluster.call(self.provider, req.encode())?;
        Ok(Response::decode(&bytes)?)
    }

    fn call_ack(&self, req: Request) -> Result<()> {
        match self.call(req)? {
            Response::Ack => Ok(()),
            Response::Error(msg) => Err(ClientError::Provider(msg)),
            other => Err(ClientError::Provider(format!("unexpected {other:?}"))),
        }
    }
}
