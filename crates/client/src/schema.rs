//! Client-side schema: tables, typed columns, values and predicates.

use crate::ClientError;
use dasp_sss::{ShareMode, StringCodec};

/// The type of a column's plaintext values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnType {
    /// Unsigned integers in `[0, domain_size)`.
    Numeric {
        /// Exclusive upper bound of the value domain.
        domain_size: u64,
    },
    /// Fixed-maximum-width uppercase strings, encoded base-27 (§V-B).
    Text {
        /// Maximum string length.
        width: usize,
    },
}

impl ColumnType {
    /// The numeric domain this type encodes into.
    pub fn domain_size(&self) -> u64 {
        match self {
            ColumnType::Numeric { domain_size } => *domain_size,
            ColumnType::Text { width } => StringCodec::uppercase(*width)
                // dasp::allow(P3): width is range-checked when the schema is built
                .expect("validated at schema build")
                .domain_size(),
        }
    }
}

/// One column of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Plaintext type.
    pub ctype: ColumnType,
    /// How this column is shared (the privacy/capability trade-off).
    pub mode: ShareMode,
    /// Value domain name. Columns sharing a domain share polynomials, so
    /// equi-joins across them work server-side (§V-A). Defaults to the
    /// column name.
    pub domain: String,
}

impl ColumnSpec {
    /// A numeric column in its own domain.
    pub fn numeric(name: &str, domain_size: u64, mode: ShareMode) -> Self {
        ColumnSpec {
            name: name.to_string(),
            ctype: ColumnType::Numeric { domain_size },
            mode,
            domain: name.to_string(),
        }
    }

    /// A text column in its own domain.
    pub fn text(name: &str, width: usize, mode: ShareMode) -> Self {
        ColumnSpec {
            name: name.to_string(),
            ctype: ColumnType::Text { width },
            mode,
            domain: name.to_string(),
        }
    }

    /// Override the value domain (for join keys shared across tables).
    pub fn in_domain(mut self, domain: &str) -> Self {
        self.domain = domain.to_string();
        self
    }
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in order.
    pub columns: Vec<ColumnSpec>,
}

impl TableSchema {
    /// Build and validate a schema.
    pub fn new(name: &str, columns: Vec<ColumnSpec>) -> Result<Self, ClientError> {
        if columns.is_empty() {
            return Err(ClientError::Schema(format!(
                "table {name:?} has no columns"
            )));
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(ClientError::Schema(format!(
                    "duplicate column {:?}",
                    c.name
                )));
            }
            if let ColumnType::Text { width } = c.ctype {
                StringCodec::uppercase(width)
                    .map_err(|e| ClientError::Schema(format!("column {:?}: {e}", c.name)))?;
            }
            if let ColumnType::Numeric { domain_size } = c.ctype {
                if domain_size == 0 || domain_size > 1 << 32 {
                    return Err(ClientError::Schema(format!(
                        "column {:?}: domain_size must be in 1..=2^32",
                        c.name
                    )));
                }
            }
        }
        Ok(TableSchema {
            name: name.to_string(),
            columns,
        })
    }

    /// Index of a column by name.
    pub fn col(&self, name: &str) -> Result<usize, ClientError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| {
                ClientError::Schema(format!("no column {name:?} in table {:?}", self.name))
            })
    }
}

/// A typed plaintext value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A numeric value.
    Int(u64),
    /// A string value (uppercase A–Z, length ≤ column width).
    Str(String),
}

impl Value {
    /// Encode into the column's numeric domain.
    pub fn encode(&self, ctype: &ColumnType) -> Result<u64, ClientError> {
        match (self, ctype) {
            (Value::Int(v), ColumnType::Numeric { domain_size }) => {
                if v >= domain_size {
                    return Err(ClientError::Schema(format!(
                        "value {v} outside domain {domain_size}"
                    )));
                }
                Ok(*v)
            }
            (Value::Str(s), ColumnType::Text { width }) => StringCodec::uppercase(*width)
                .map_err(ClientError::Sss)?
                .encode(s)
                .map_err(ClientError::Sss),
            (v, t) => Err(ClientError::Schema(format!(
                "value {v:?} does not fit column type {t:?}"
            ))),
        }
    }

    /// Decode from the column's numeric domain.
    pub fn decode(code: u64, ctype: &ColumnType) -> Result<Value, ClientError> {
        match ctype {
            ColumnType::Numeric { domain_size } => {
                if code >= *domain_size {
                    return Err(ClientError::Reconstruction(format!(
                        "decoded value {code} outside domain {domain_size}"
                    )));
                }
                Ok(Value::Int(code))
            }
            ColumnType::Text { width } => {
                let codec = StringCodec::uppercase(*width).map_err(ClientError::Sss)?;
                codec.decode(code).map(Value::Str).ok_or_else(|| {
                    ClientError::Reconstruction(format!("code {code} is not a valid string"))
                })
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

/// A client-level predicate conjunct over plaintext values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `col = value`.
    Eq {
        /// Column name.
        col: String,
        /// Comparison value.
        value: Value,
    },
    /// `lo ≤ col ≤ hi` (numeric order / padded-lexicographic for text).
    Between {
        /// Column name.
        col: String,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// `col LIKE 'prefix%'` (text columns).
    Prefix {
        /// Column name.
        col: String,
        /// The literal prefix.
        prefix: String,
    },
}

impl Predicate {
    /// Shorthand for an equality conjunct.
    pub fn eq(col: &str, value: impl Into<Value>) -> Self {
        Predicate::Eq {
            col: col.to_string(),
            value: value.into(),
        }
    }

    /// Shorthand for a range conjunct.
    pub fn between(col: &str, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Predicate::Between {
            col: col.to_string(),
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Shorthand for a string-prefix conjunct.
    pub fn prefix(col: &str, prefix: &str) -> Self {
        Predicate::Prefix {
            col: col.to_string(),
            prefix: prefix.to_string(),
        }
    }

    /// The column this conjunct constrains.
    pub fn col(&self) -> &str {
        match self {
            Predicate::Eq { col, .. }
            | Predicate::Between { col, .. }
            | Predicate::Prefix { col, .. } => col,
        }
    }

    /// The encoded (inclusive) code interval this conjunct selects.
    pub fn code_interval(&self, ctype: &ColumnType) -> Result<(u64, u64), ClientError> {
        match self {
            Predicate::Eq { value, .. } => {
                let code = value.encode(ctype)?;
                Ok((code, code))
            }
            Predicate::Between { lo, hi, .. } => {
                let (lo, hi) = match (lo, hi, ctype) {
                    // Text ranges follow §V-B: the upper bound covers all
                    // strings extending `hi`.
                    (Value::Str(lo), Value::Str(hi), ColumnType::Text { width }) => {
                        let codec = StringCodec::uppercase(*width).map_err(ClientError::Sss)?;
                        codec.string_range(lo, hi).map_err(ClientError::Sss)?
                    }
                    _ => (lo.encode(ctype)?, hi.encode(ctype)?),
                };
                if lo > hi {
                    return Err(ClientError::Schema("empty range".into()));
                }
                Ok((lo, hi))
            }
            Predicate::Prefix { prefix, .. } => match ctype {
                ColumnType::Text { width } => {
                    let codec = StringCodec::uppercase(*width).expect("validated");
                    codec.prefix_range(prefix).map_err(ClientError::Sss)
                }
                _ => Err(ClientError::Schema(
                    "prefix predicate on numeric column".into(),
                )),
            },
        }
    }

    /// Evaluate client-side against a decoded value (for residual
    /// filtering of non-filterable share modes).
    pub fn matches_code(&self, code: u64, ctype: &ColumnType) -> bool {
        self.code_interval(ctype)
            .map(|(lo, hi)| code >= lo && code <= hi)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "employees",
            vec![
                ColumnSpec::text("name", 8, ShareMode::Deterministic),
                ColumnSpec::numeric("salary", 1 << 20, ShareMode::OrderPreserving),
                ColumnSpec::numeric("ssn", 1 << 30, ShareMode::Random),
            ],
        )
        .unwrap()
    }

    #[test]
    fn schema_validation() {
        assert!(TableSchema::new("t", vec![]).is_err());
        assert!(TableSchema::new(
            "t",
            vec![
                ColumnSpec::numeric("a", 10, ShareMode::Random),
                ColumnSpec::numeric("a", 10, ShareMode::Random),
            ],
        )
        .is_err());
        assert!(
            TableSchema::new("t", vec![ColumnSpec::numeric("a", 0, ShareMode::Random)],).is_err()
        );
        assert!(
            TableSchema::new("t", vec![ColumnSpec::text("a", 99, ShareMode::Random)],).is_err()
        );
    }

    #[test]
    fn col_lookup() {
        let s = schema();
        assert_eq!(s.col("salary").unwrap(), 1);
        assert!(s.col("nope").is_err());
    }

    #[test]
    fn value_encode_decode() {
        let num = ColumnType::Numeric { domain_size: 100 };
        assert_eq!(Value::Int(42).encode(&num).unwrap(), 42);
        assert!(Value::Int(100).encode(&num).is_err());
        assert_eq!(Value::decode(42, &num).unwrap(), Value::Int(42));
        assert!(Value::decode(100, &num).is_err());

        let text = ColumnType::Text { width: 5 };
        let code = Value::from("JOHN").encode(&text).unwrap();
        assert_eq!(Value::decode(code, &text).unwrap(), Value::from("JOHN"));
        assert!(Value::from("toolongname").encode(&text).is_err());
        assert!(Value::Int(5).encode(&text).is_err(), "type mismatch");
        assert!(Value::from("JOHN").encode(&num).is_err());
    }

    #[test]
    fn domain_preserves_join_compatibility() {
        let c = ColumnSpec::numeric("eid", 1 << 20, ShareMode::Deterministic).in_domain("emp_id");
        assert_eq!(c.domain, "emp_id");
        let d = ColumnSpec::numeric("eid", 1 << 20, ShareMode::Deterministic);
        assert_eq!(d.domain, "eid");
    }

    #[test]
    fn predicate_intervals() {
        let num = ColumnType::Numeric {
            domain_size: 1 << 20,
        };
        assert_eq!(
            Predicate::eq("c", 7u64).code_interval(&num).unwrap(),
            (7, 7)
        );
        assert_eq!(
            Predicate::between("c", 10u64, 40u64)
                .code_interval(&num)
                .unwrap(),
            (10, 40)
        );
        assert!(Predicate::between("c", 40u64, 10u64)
            .code_interval(&num)
            .is_err());

        let text = ColumnType::Text { width: 5 };
        let (lo, hi) = Predicate::prefix("c", "AB").code_interval(&text).unwrap();
        let ab = Value::from("AB").encode(&text).unwrap();
        let abzzz = Value::from("ABZZZ").encode(&text).unwrap();
        assert_eq!((lo, hi), (ab, abzzz));
        assert!(Predicate::prefix("c", "AB").code_interval(&num).is_err());
    }

    #[test]
    fn string_between_covers_extensions() {
        // The §V-B semantics: BETWEEN 'AL' AND 'JACK' includes 'JACKZ'.
        let text = ColumnType::Text { width: 5 };
        let pred = Predicate::between("c", "AL", "JACK");
        let jackz = Value::from("JACKZ").encode(&text).unwrap();
        assert!(pred.matches_code(jackz, &text));
        let jad = Value::from("JAD").encode(&text).unwrap();
        assert!(!pred.matches_code(jad, &text));
    }

    #[test]
    fn matches_code_residual_filtering() {
        let num = ColumnType::Numeric { domain_size: 100 };
        let p = Predicate::between("c", 10u64, 20u64);
        assert!(p.matches_code(15, &num));
        assert!(!p.matches_code(9, &num));
        assert!(!p.matches_code(21, &num));
    }
}
