//! The data source D — the client half of the paper.
//!
//! D owns all secret material (evaluation points X and per-domain keys),
//! rewrites every query into one provider-specific request per DAS
//! (§V-A), reconstructs results from any k responses, and never sends a
//! plaintext private value anywhere.
//!
//! * [`schema`] — tables, column types (numeric and VARCHAR-style text),
//!   per-column [`dasp_sss::ShareMode`], and typed [`schema::Value`]s.
//! * [`keys`] — the client's secret: evaluation points + domain keys.
//! * [`source`] — [`source::DataSource`]: outsourcing, exact-match /
//!   range / aggregate / join queries, eager and lazy updates (§V-C),
//!   ringer planting, and majority-verified reads.
//! * [`mashup`] — §V-D private/public integration: bucketed retrieval
//!   from provider-hosted public tables keyed by privately reconstructed
//!   values, trading leaked bucket width against transfer size.

pub mod journal;
pub mod keys;
pub mod mashup;
pub mod schema;
pub mod source;

pub use journal::LazyJournal;
pub use keys::ClientKeys;
pub use mashup::{BucketJoin, MashupStats};
pub use schema::{ColumnSpec, ColumnType, Predicate, TableSchema, Value};
pub use source::{AggResult, DataSource, ExplainConjunct, ExplainReport, GroupRow, QueryOptions};

use dasp_net::{QuorumError, RpcError, WireError};
use dasp_sss::SssError;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport failure.
    Rpc(RpcError),
    /// A quorum call fell short, with a per-provider post-mortem.
    Quorum(QuorumError),
    /// A provider replied with an application error.
    Provider(String),
    /// A provider's reply failed to decode.
    Wire(WireError),
    /// Share algebra failure.
    Sss(SssError),
    /// Schema violation (unknown table/column, type mismatch, …).
    Schema(String),
    /// Not enough consistent provider responses to reconstruct.
    Reconstruction(String),
    /// The operation needs a capability this column's share mode lacks.
    Unsupported(String),
    /// A client-side worker thread panicked or could not be joined.
    Worker(String),
    /// The lazy-update journal failed (open, append, or replay).
    Journal(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rpc(e) => write!(f, "rpc: {e}"),
            ClientError::Quorum(e) => write!(f, "quorum: {e}"),
            ClientError::Provider(msg) => write!(f, "provider error: {msg}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Sss(e) => write!(f, "secret sharing: {e}"),
            ClientError::Schema(msg) => write!(f, "schema: {msg}"),
            ClientError::Reconstruction(msg) => write!(f, "reconstruction: {msg}"),
            ClientError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            ClientError::Worker(msg) => write!(f, "worker thread: {msg}"),
            ClientError::Journal(msg) => write!(f, "lazy-update journal: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<RpcError> for ClientError {
    fn from(e: RpcError) -> Self {
        ClientError::Rpc(e)
    }
}

impl From<QuorumError> for ClientError {
    fn from(e: QuorumError) -> Self {
        ClientError::Quorum(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<SssError> for ClientError {
    fn from(e: SssError) -> Self {
        ClientError::Sss(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ClientError>;
