//! The client's secret key material.
//!
//! Everything a provider must never learn lives here: the master secret
//! (from which per-domain keys derive), the GF(p) evaluation points for
//! random/deterministic shares, and the small integer points for
//! order-preserving shares. Loss of this state means loss of the data
//! (by design — that *is* the security property), so real deployments
//! would escrow it; the struct is cheap to clone for that purpose.

use crate::{ClientError, Result};
use dasp_field::{Fp, Secret};
use dasp_sss::{DomainKey, FieldSharing, OpSharing, OpssParams};
use rand::seq::SliceRandom;
use rand::Rng;

/// All client-side secrets for one outsourced database.
#[derive(Clone)]
pub struct ClientKeys {
    master: Secret<[u8; 32]>,
    field: FieldSharing,
    op_points: Secret<Vec<u32>>,
    op_degree: usize,
    op_slot_bits: u32,
}

impl ClientKeys {
    /// Generate keys for `n` providers with reconstruction threshold `k`.
    ///
    /// `k` is also the order-preserving polynomial threshold, so it must
    /// be ≤ 4 (OP degree ≤ 3, see [`OpssParams`]).
    pub fn generate<R: Rng + ?Sized>(k: usize, n: usize, rng: &mut R) -> Result<Self> {
        if !(2..=4).contains(&k) || k > n {
            return Err(ClientError::Schema(format!(
                "threshold k={k} must be in 2..=4 and ≤ n={n}"
            )));
        }
        if n > 64 {
            return Err(ClientError::Schema("at most 64 providers".into()));
        }
        let mut master = [0u8; 32];
        rng.fill(&mut master);
        let field = FieldSharing::generate(k, n, rng)?;
        // Distinct small points in [1, 64], shuffled so provider order
        // leaks nothing about point magnitude.
        let mut candidates: Vec<u32> = (1..=64).collect();
        candidates.shuffle(rng);
        let op_points: Vec<u32> = candidates.into_iter().take(n).collect();
        Ok(ClientKeys {
            master: Secret::new(master),
            field,
            op_points: Secret::new(op_points),
            op_degree: k - 1,
            op_slot_bits: 12,
        })
    }

    /// Reconstruction threshold k.
    pub fn k(&self) -> usize {
        self.field.k()
    }

    /// Number of providers n.
    pub fn n(&self) -> usize {
        self.field.n()
    }

    /// The field-sharing configuration (random/deterministic modes).
    pub fn field(&self) -> &FieldSharing {
        &self.field
    }

    /// Provider `i`'s secret GF(p) evaluation point.
    pub fn field_point(&self, provider: usize) -> Result<Fp> {
        Ok(self.field.point(provider)?)
    }

    /// The domain key for a named value domain.
    pub fn domain_key(&self, domain: &str) -> DomainKey {
        DomainKey::derive(self.master.expose(), domain)
    }

    /// An order-preserving sharer for `domain` over values `< domain_size`.
    pub fn op_sharing(&self, domain: &str, domain_size: u64) -> Result<OpSharing> {
        let params = OpssParams::new(
            self.op_degree,
            self.op_slot_bits,
            domain_size,
            self.op_points.expose().clone(),
        )?;
        Ok(OpSharing::new(params, self.domain_key(domain)))
    }
}

// dasp::allow(S1): sanctioned redacting impl — never prints secrets.
impl std::fmt::Debug for ClientKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ClientKeys(k={}, n={})", self.k(), self.n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generate_validates_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(ClientKeys::generate(1, 3, &mut rng).is_err(), "k too small");
        assert!(
            ClientKeys::generate(5, 8, &mut rng).is_err(),
            "k too big for OP"
        );
        assert!(ClientKeys::generate(3, 2, &mut rng).is_err(), "k > n");
        assert!(
            ClientKeys::generate(2, 100, &mut rng).is_err(),
            "too many n"
        );
        let keys = ClientKeys::generate(2, 3, &mut rng).unwrap();
        assert_eq!((keys.k(), keys.n()), (2, 3));
    }

    #[test]
    fn op_points_distinct() {
        let mut rng = StdRng::seed_from_u64(2);
        let keys = ClientKeys::generate(3, 8, &mut rng).unwrap();
        let mut pts = keys.op_points.expose().clone();
        pts.sort_unstable();
        pts.dedup();
        assert_eq!(pts.len(), 8);
        assert!(pts.iter().all(|&p| (1..=64).contains(&p)));
    }

    #[test]
    fn op_sharing_roundtrip_through_keys() {
        let mut rng = StdRng::seed_from_u64(3);
        let keys = ClientKeys::generate(2, 3, &mut rng).unwrap();
        let s = keys.op_sharing("salary", 1 << 20).unwrap();
        let shares = s.share(4242).unwrap();
        assert_eq!(s.reconstruct_search(1, shares[1]).unwrap(), Some(4242));
    }

    #[test]
    fn different_masters_different_shares() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = ClientKeys::generate(2, 3, &mut rng).unwrap();
        let b = ClientKeys::generate(2, 3, &mut rng).unwrap();
        let sa = a.op_sharing("salary", 1 << 20).unwrap();
        let sb = b.op_sharing("salary", 1 << 20).unwrap();
        // Same value, different key material ⇒ (almost surely) different shares.
        assert_ne!(sa.share(777).unwrap(), sb.share(777).unwrap());
    }

    #[test]
    fn debug_leaks_no_secrets() {
        let mut rng = StdRng::seed_from_u64(5);
        let keys = ClientKeys::generate(2, 3, &mut rng).unwrap();
        assert_eq!(format!("{keys:?}"), "ClientKeys(k=2, n=3)");
    }
}
