//! The data source D: outsourcing, query rewriting and reconstruction.
//!
//! Execution of a query (§V-A):
//! 1. split the client predicate into *server-evaluable* conjuncts
//!    (supported by the column's share mode) and a *residual*;
//! 2. rewrite the server-evaluable part into one share-space request per
//!    provider;
//! 3. fan out, collect ≥ k responses, zip rows by client-assigned row id;
//! 4. reconstruct values (binary-search decode for order-preserving
//!    columns, Lagrange for field-mode columns);
//! 5. apply the residual filter, check and strip ringers, overlay any
//!    pending lazy updates.

use crate::journal::LazyJournal;
use crate::keys::ClientKeys;
use crate::schema::{ColumnType, Predicate, TableSchema, Value};
use crate::{ClientError, Result};
use dasp_crypto::merkle::MerkleProof;
use dasp_field::{lagrange_eval_at, Fp};
use dasp_net::{Cluster, HealthSnapshot, ProviderId, QuorumMode, QuorumOptions, RetryPolicy};
use dasp_server::proto::{AggOp, PredAtom, Request, Response, Row};
use dasp_server::proto::{WireMerkleProof, WireRangeProof};
use dasp_sss::{DomainKey, FieldBasis, FieldShare, FieldSharing, OpSharing, ShareMode};
use dasp_verify::merkle_table::{CommittedRow, RangeProof};
use dasp_verify::{majority_reconstruct_field, majority_reconstruct_op, RingerSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Per-query options.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Query all n providers and majority-verify every reconstructed
    /// value (detects and identifies Byzantine providers). Default:
    /// query providers until k respond, trust them.
    pub verify: bool,
}

/// Result of an aggregate query.
#[derive(Debug, Clone, PartialEq)]
pub struct AggResult {
    /// The aggregated value (None for COUNT-only or empty input).
    pub value: Option<Value>,
    /// Number of matching rows.
    pub count: u64,
}

/// A reconstructed row: client row id plus decoded values.
pub type DecodedRow = (u64, Vec<Value>);

/// One reconstructed GROUP BY result row.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Smallest row id in the group (stable ordering key).
    pub rep_row: u64,
    /// The decoded group value.
    pub group: Value,
    /// SUM of the aggregated column (None for COUNT-only queries).
    pub sum: Option<Value>,
    /// Rows in the group.
    pub count: u64,
}

/// One conjunct's placement in an [`ExplainReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainConjunct {
    /// Human-readable form of the client-side conjunct.
    pub predicate: String,
    /// True if providers evaluate it; false if it is residual
    /// (client-side after full transfer).
    pub server_side: bool,
    /// The share-space atom provider 0 would receive (what it *sees*).
    pub rewritten: Option<String>,
    /// What evaluating this conjunct reveals to a provider.
    pub leaks: &'static str,
}

/// The rewriting plan for a SELECT, without executing it — `EXPLAIN`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainReport {
    /// Target table.
    pub table: String,
    /// Per-conjunct placement.
    pub conjuncts: Vec<ExplainConjunct>,
    /// Overall execution strategy.
    pub strategy: String,
}

impl std::fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "EXPLAIN SELECT ... FROM {}", self.table)?;
        for c in &self.conjuncts {
            writeln!(
                f,
                "  {} -> {}{}",
                c.predicate,
                if c.server_side {
                    "server-side"
                } else {
                    "RESIDUAL (client-side)"
                },
                match &c.rewritten {
                    Some(r) => format!("; provider 0 sees {r}; leaks {}", c.leaks),
                    None => format!("; leaks {}", c.leaks),
                }
            )?;
        }
        write!(f, "  strategy: {}", self.strategy)
    }
}

/// Per-statement encode plan: one entry per column with the codec state
/// (domain key, OPSS sharer) resolved up front.
struct EncodePlan {
    columns: Vec<(ColumnType, ColumnCodec)>,
}

enum ColumnCodec {
    Random,
    Deterministic(DomainKey),
    OrderPreserving(OpSharing),
}

/// Encode one chunk of rows column-major: per column, encode the codes
/// for the whole chunk and drive the sss batch APIs, so per-column setup
/// (PRF derivation, coefficient evaluation) amortizes across rows.
/// `seeds[r]` seeds row r's RNG stream for random-mode columns.
fn encode_chunk(
    field: &FieldSharing,
    plan: &EncodePlan,
    rows: &[Vec<Value>],
    seeds: &[u64],
) -> Result<Vec<Vec<Vec<i128>>>> {
    let n = field.n();
    let ncols = plan.columns.len();
    let mut out: Vec<Vec<Vec<i128>>> = rows
        .iter()
        .map(|_| (0..n).map(|_| Vec::with_capacity(ncols)).collect())
        .collect();
    let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
    let mut codes = Vec::with_capacity(rows.len());
    for (c, (ctype, codec)) in plan.columns.iter().enumerate() {
        codes.clear();
        for row in rows {
            codes.push(row[c].encode(ctype)?);
        }
        match codec {
            ColumnCodec::Random => {
                for (r, &code) in codes.iter().enumerate() {
                    for s in field.split_random(Fp::from_u64(code), &mut rngs[r]) {
                        out[r][s.provider].push(s.y.to_u64() as i128);
                    }
                }
            }
            ColumnCodec::Deterministic(key) => {
                let split = field.split_deterministic_batch(&codes, key);
                for (r, shares) in split.into_iter().enumerate() {
                    for s in shares {
                        out[r][s.provider].push(s.y.to_u64() as i128);
                    }
                }
            }
            ColumnCodec::OrderPreserving(sharing) => {
                let split = sharing.share_batch(&codes)?;
                for (r, row_shares) in split.into_iter().enumerate() {
                    for (p, y) in row_shares.into_iter().enumerate() {
                        out[r][p].push(y);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// One zipped result row: its id plus, per responding provider, one
/// share per column.
type ZippedRow = (u64, Vec<(ProviderId, Vec<i128>)>);

enum DecodeCodec {
    /// Order-preserving: binary-search decode against this sharer.
    Op(OpSharing),
    /// Random/deterministic: Lagrange dot product over the group basis.
    Field,
}

/// Decode the field-mode columns of one chunk of rows against a
/// precomputed basis. Stored field shares are canonical (< p) when
/// written, but provider-side additive increments (§V-C) accumulate
/// without reduction — so reduce mod p first. Corrupt values (including
/// negatives) reduce to *wrong* field elements and fail the basis
/// cross-check.
fn decode_field_chunk(
    entries: &[ZippedRow],
    rows_idx: &[usize],
    field_cols: &[usize],
    basis: &FieldBasis,
) -> Result<Vec<Vec<u64>>> {
    let p_mod = dasp_field::MODULUS as i128;
    rows_idx
        .iter()
        .map(|&r| {
            let per_provider = &entries[r].1;
            field_cols
                .iter()
                .map(|&c| {
                    let ys: Vec<Fp> = per_provider
                        .iter()
                        .map(|(_, shares)| Fp::from_u64(shares[c].rem_euclid(p_mod) as u64))
                        .collect();
                    Ok(basis.reconstruct_row(&ys)?.to_u64())
                })
                .collect()
        })
        .collect()
}

struct TableState {
    schema: TableSchema,
    next_id: u64,
    /// Ringers per column name.
    ringers: HashMap<String, RingerSet>,
    /// Lazy-update overlay: row id → replacement values.
    pending: HashMap<u64, Vec<Value>>,
    /// Merkle roots per (column name → provider → (root, total rows)),
    /// established by [`DataSource::commit_table`].
    commitments: HashMap<String, HashMap<ProviderId, ([u8; 32], usize)>>,
}

/// The data source D.
pub struct DataSource {
    keys: ClientKeys,
    cluster: Cluster,
    tables: HashMap<String, TableState>,
    op_cache: HashMap<(String, u64), OpSharing>,
    rng: StdRng,
    lazy: bool,
    /// Retry schedule for idempotent reads (writes are never retried —
    /// an omission-faulty provider applies the write before dropping the
    /// ack, so a retry could double-apply it).
    retry: RetryPolicy,
    /// Extra providers contacted up front on reads, racing stragglers.
    hedge: usize,
    /// Reconstruction bases keyed by provider subset (in response order).
    /// Reads from a healthy cluster hit the same subset over and over, so
    /// the O(k²) Lagrange solve happens once per subset, not per value.
    basis_cache: HashMap<Vec<usize>, FieldBasis>,
    /// Worker threads for batch encode/decode fan-out (1 = inline).
    workers: usize,
    /// Durable journal of the lazy-update queue (None = memory only).
    journal: Option<LazyJournal>,
    /// Journal entries recovered for tables this client hasn't
    /// (re)registered yet; merged into `pending` at `create_table`.
    orphan_pending: HashMap<String, HashMap<u64, Vec<Value>>>,
    /// Faulty providers identified by the last verified query.
    pub last_faulty: Vec<ProviderId>,
}

impl DataSource {
    /// Bind keys to a running cluster. The cluster must have exactly
    /// `keys.n()` providers.
    pub fn new(keys: ClientKeys, cluster: Cluster) -> Result<Self> {
        if cluster.n() != keys.n() {
            return Err(ClientError::Schema(format!(
                "cluster has {} providers, keys expect {}",
                cluster.n(),
                keys.n()
            )));
        }
        Ok(DataSource {
            keys,
            cluster,
            tables: HashMap::new(),
            op_cache: HashMap::new(),
            rng: StdRng::from_entropy(),
            lazy: false,
            retry: RetryPolicy::default(),
            hedge: 1,
            basis_cache: HashMap::new(),
            workers: 1,
            journal: None,
            orphan_pending: HashMap::new(),
            last_faulty: Vec::new(),
        })
    }

    /// Bind keys to remote TCP providers: dial one socket per address
    /// and run the whole client stack — rewriting, reconstruction,
    /// quorum, hedging, verification — over the wire. The transport is
    /// invisible above [`Cluster`]; everything else is [`Self::new`].
    pub fn connect_tcp(
        keys: ClientKeys,
        addrs: &[std::net::SocketAddr],
        timeout: std::time::Duration,
        workers: usize,
    ) -> Result<Self> {
        let cluster = Cluster::connect_tcp(addrs, timeout, workers)
            .map_err(|e| ClientError::Schema(format!("tcp connect: {e}")))?;
        Self::new(keys, cluster)
    }

    /// [`Self::connect_tcp`] with an explicit transport configuration —
    /// notably [`dasp_net::TcpClientConfig::batch_window`], which packs
    /// the concurrent share uploads/downloads of `query_many` and the
    /// quorum fan-out into multi-query wire frames. Result *contents*
    /// are transport-independent either way; only wire shape and
    /// latency change.
    pub fn connect_tcp_with(
        keys: ClientKeys,
        addrs: &[std::net::SocketAddr],
        timeout: std::time::Duration,
        workers: usize,
        cfg: dasp_net::TcpClientConfig,
    ) -> Result<Self> {
        let cluster = Cluster::connect_tcp_with(addrs, timeout, workers, cfg)
            .map_err(|e| ClientError::Schema(format!("tcp connect: {e}")))?;
        Self::new(keys, cluster)
    }

    /// Deterministic RNG variant for reproducible tests/benchmarks. The
    /// seed also fixes retry-backoff jitter, so fault-injection runs
    /// replay with identical timing decisions.
    pub fn with_seed(keys: ClientKeys, cluster: Cluster, seed: u64) -> Result<Self> {
        let mut ds = Self::new(keys, cluster)?;
        ds.rng = StdRng::seed_from_u64(seed);
        ds.retry.jitter_seed = seed;
        Ok(ds)
    }

    /// The underlying cluster (failure injection, traffic stats).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Replace the read-retry schedule.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Set how many extra providers reads contact up front (hedged
    /// requests). 0 disables hedging.
    pub fn set_hedge(&mut self, hedge: usize) {
        self.hedge = hedge;
    }

    /// Set how many scoped worker threads batch encode/decode fans out
    /// across (clamped to ≥ 1; 1 keeps everything on the calling thread).
    /// Results are identical for every setting: rows keep their order and
    /// random-mode sharing draws from per-row seeded RNG streams, so the
    /// output depends only on the session RNG, not the thread schedule.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Point-in-time provider health: breaker states, failure streaks,
    /// latency EWMAs.
    pub fn health(&self) -> HealthSnapshot {
        self.cluster.health().snapshot()
    }

    /// The key material (for direct share computations in tests).
    pub fn keys(&self) -> &ClientKeys {
        &self.keys
    }

    /// The column specs of a table (for projections and tooling).
    pub fn schema_columns(&self, table: &str) -> Result<&[crate::schema::ColumnSpec]> {
        Ok(&self.table(table)?.schema.columns)
    }

    /// Switch updates to lazy buffering (§V-C). Buffered updates overlay
    /// query results until [`DataSource::flush`] pushes them out.
    pub fn set_lazy(&mut self, lazy: bool) {
        self.lazy = lazy;
    }

    /// Enable lazy buffering backed by a durable journal at `path`
    /// (§V-C): every queue mutation is write-ahead logged with
    /// per-record fsync, so queued re-shares survive a client restart.
    /// Recovers whatever an earlier session left in the journal —
    /// entries for already-registered tables overlay immediately; the
    /// rest attach when their table is next registered via
    /// [`DataSource::create_table`]. Returns how many queued updates
    /// were recovered.
    pub fn set_lazy_journal(&mut self, path: &std::path::Path) -> Result<usize> {
        let (journal, recovered) = LazyJournal::open(path)?;
        let mut count = 0usize;
        for (table, entries) in recovered {
            count += entries.len();
            if let Some(state) = self.tables.get_mut(&table) {
                state.pending.extend(entries);
            } else {
                self.orphan_pending
                    .entry(table)
                    .or_default()
                    .extend(entries);
            }
        }
        self.journal = Some(journal);
        self.lazy = true;
        Ok(count)
    }

    // ---- schema & share construction ----

    /// Create a table on every provider.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        if self.tables.contains_key(&schema.name) {
            return Err(ClientError::Schema(format!(
                "table {:?} already exists",
                schema.name
            )));
        }
        let indexed: Vec<bool> = schema
            .columns
            .iter()
            .map(|c| c.mode.supports_equality())
            .collect();
        let req = Request::CreateTable {
            name: schema.name.clone(),
            columns: schema.columns.iter().map(|c| c.name.clone()).collect(),
            indexed,
        };
        self.broadcast_ack(&req)?;
        // Journal-recovered lazy updates queued for this table by an
        // earlier session re-attach here.
        let pending = self.orphan_pending.remove(&schema.name).unwrap_or_default();
        self.tables.insert(
            schema.name.clone(),
            TableState {
                schema,
                next_id: 1,
                ringers: HashMap::new(),
                pending,
                commitments: HashMap::new(),
            },
        );
        Ok(())
    }

    fn table(&self, name: &str) -> Result<&TableState> {
        self.tables
            .get(name)
            .ok_or_else(|| ClientError::Schema(format!("no table {name:?}")))
    }

    fn op_sharing(&mut self, domain: &str, domain_size: u64) -> Result<OpSharing> {
        let key = (domain.to_string(), domain_size);
        if let Some(s) = self.op_cache.get(&key) {
            return Ok(s.clone());
        }
        let s = self.keys.op_sharing(domain, domain_size)?;
        self.op_cache.insert(key, s.clone());
        Ok(s)
    }

    /// Resolve everything encoding needs — column types, domain keys,
    /// OPSS sharers — once per statement, so the per-row loop touches no
    /// table metadata and clones no schema.
    fn encode_plan(&mut self, table: &str) -> Result<EncodePlan> {
        let ncols = self.table(table)?.schema.columns.len();
        let mut columns = Vec::with_capacity(ncols);
        for idx in 0..ncols {
            let col = self.table(table)?.schema.columns[idx].clone();
            let codec = match col.mode {
                ShareMode::Random => ColumnCodec::Random,
                ShareMode::Deterministic => {
                    ColumnCodec::Deterministic(self.keys.domain_key(&col.domain))
                }
                ShareMode::OrderPreserving => ColumnCodec::OrderPreserving(
                    self.op_sharing(&col.domain, col.ctype.domain_size())?,
                ),
            };
            columns.push((col.ctype, codec));
        }
        Ok(EncodePlan { columns })
    }

    /// Encode a batch of rows into per-provider share tuples, shape
    /// `[row][provider][column]`, fanned across scoped worker threads.
    ///
    /// Output is deterministic regardless of worker count: chunk results
    /// are reassembled in row order, and each row's random-mode sharing
    /// draws from its own RNG stream seeded up front from the session RNG.
    fn encode_rows(
        &mut self,
        table: &str,
        plan: &EncodePlan,
        rows: &[Vec<Value>],
    ) -> Result<Vec<Vec<Vec<i128>>>> {
        let ncols = plan.columns.len();
        for values in rows {
            if values.len() != ncols {
                return Err(ClientError::Schema(format!(
                    "row has {} values, table {table:?} has {ncols} columns",
                    values.len()
                )));
            }
        }
        let seeds: Vec<u64> = rows.iter().map(|_| self.rng.gen()).collect();
        let field = self.keys.field();
        let workers = self.workers.min(rows.len()).max(1);
        if workers == 1 {
            return encode_chunk(field, plan, rows, &seeds);
        }
        let chunk = rows.len().div_ceil(workers);
        let results = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = rows
                .chunks(chunk)
                .zip(seeds.chunks(chunk))
                .map(|(rows, seeds)| s.spawn(move |_| encode_chunk(field, plan, rows, seeds)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| ClientError::Worker("encode worker panicked".into()))
                })
                .collect::<Vec<_>>()
        })
        .map_err(|_| ClientError::Worker("encode scope panicked".into()))?;
        let mut out = Vec::with_capacity(rows.len());
        for r in results {
            out.extend(r??);
        }
        Ok(out)
    }

    /// Insert rows; returns the assigned row ids.
    pub fn insert(&mut self, table: &str, rows: &[Vec<Value>]) -> Result<Vec<u64>> {
        let base_id = {
            let state = self
                .tables
                .get_mut(table)
                .ok_or_else(|| ClientError::Schema(format!("no table {table:?}")))?;
            let base = state.next_id;
            state.next_id += rows.len() as u64;
            base
        };
        let ids: Vec<u64> = (0..rows.len() as u64).map(|i| base_id + i).collect();
        self.insert_with_ids(table, &ids, rows)?;
        Ok(ids)
    }

    fn insert_with_ids(&mut self, table: &str, ids: &[u64], rows: &[Vec<Value>]) -> Result<()> {
        let plan = self.encode_plan(table)?;
        let encoded = self.encode_rows(table, &plan, rows)?;
        let n = self.keys.n();
        let mut per_provider: Vec<Vec<Row>> = vec![Vec::with_capacity(rows.len()); n];
        for (id, row_shares) in ids.iter().zip(encoded) {
            for (p, shares) in row_shares.into_iter().enumerate() {
                per_provider[p].push(Row { id: *id, shares });
            }
        }
        let reqs: Vec<(ProviderId, Vec<u8>)> = per_provider
            .into_iter()
            .enumerate()
            .map(|(p, rows)| {
                (
                    p,
                    Request::Insert {
                        table: table.to_string(),
                        rows,
                    }
                    .encode(),
                )
            })
            .collect();
        self.send_all_ack(reqs)
    }

    // ---- predicate rewriting ----

    /// Split a conjunction into (server-evaluable conjuncts, residual).
    fn split_predicate<'p>(
        &self,
        schema: &TableSchema,
        predicate: &'p [Predicate],
    ) -> Result<(Vec<&'p Predicate>, Vec<&'p Predicate>)> {
        let mut server = Vec::new();
        let mut residual = Vec::new();
        for pred in predicate {
            let col = &schema.columns[schema.col(pred.col())?];
            let evaluable = match pred {
                Predicate::Eq { .. } => col.mode.supports_equality(),
                Predicate::Between { .. } | Predicate::Prefix { .. } => col.mode.supports_range(),
            };
            if evaluable {
                server.push(pred);
            } else {
                residual.push(pred);
            }
        }
        Ok((server, residual))
    }

    /// Rewrite server-evaluable conjuncts into provider `p`'s share space.
    fn rewrite_for_provider(
        &mut self,
        schema: &TableSchema,
        server_preds: &[&Predicate],
        provider: ProviderId,
    ) -> Result<Vec<PredAtom>> {
        let mut atoms = Vec::with_capacity(server_preds.len());
        for pred in server_preds {
            let col_idx = schema.col(pred.col())?;
            let col = schema.columns[col_idx].clone();
            let (lo, hi) = pred.code_interval(&col.ctype)?;
            match col.mode {
                ShareMode::Deterministic => {
                    debug_assert_eq!(lo, hi, "split_predicate admits only Eq here");
                    let key = self.keys.domain_key(&col.domain);
                    let share = self
                        .keys
                        .field()
                        .deterministic_share(lo, &key, provider)?
                        .to_u64() as i128;
                    atoms.push(PredAtom::Eq {
                        col: col_idx,
                        share,
                    });
                }
                ShareMode::OrderPreserving => {
                    let sharing = self.op_sharing(&col.domain, col.ctype.domain_size())?;
                    if lo == hi {
                        atoms.push(PredAtom::Eq {
                            col: col_idx,
                            share: sharing.share_for(lo, provider)?,
                        });
                    } else {
                        let (slo, shi) = sharing.range_for(lo, hi, provider)?;
                        atoms.push(PredAtom::Range {
                            col: col_idx,
                            lo: slo,
                            hi: shi,
                        });
                    }
                }
                ShareMode::Random => {
                    return Err(ClientError::Unsupported(
                        "random-mode column cannot be filtered server-side".into(),
                    ))
                }
            }
        }
        Ok(atoms)
    }

    // ---- transport helpers ----

    fn broadcast_ack(&self, req: &Request) -> Result<()> {
        let bytes = req.encode();
        let reqs: Vec<(ProviderId, Vec<u8>)> =
            (0..self.cluster.n()).map(|p| (p, bytes.clone())).collect();
        self.send_all_ack(reqs)
    }

    /// Every listed provider must acknowledge. Writes: [`QuorumMode::All`]
    /// (a write silently skipping a provider would fork the share state)
    /// and no retries (a provider that applied the write but dropped the
    /// ack would apply a retried write twice).
    fn send_all_ack(&self, reqs: Vec<(ProviderId, Vec<u8>)>) -> Result<()> {
        let need = reqs.len();
        let validate = |p: ProviderId, bytes: &[u8]| match Response::decode(bytes) {
            Ok(Response::Ack) => Ok(()),
            Ok(Response::Error(msg)) => Err(format!("provider {p}: {msg}")),
            Ok(other) => Err(format!("provider {p}: unexpected {other:?}")),
            Err(e) => Err(format!("provider {p}: undecodable response: {e}")),
        };
        let opts = QuorumOptions {
            mode: QuorumMode::All,
            validate: Some(&validate),
            ..Default::default()
        };
        self.cluster.call_quorum_opts(reqs, need, &opts)?;
        Ok(())
    }

    /// Fan a per-provider request out through the resilient quorum engine
    /// and return at least `need` (up to `need + extra`) successfully
    /// decoded responses. [`QuorumMode::FirstK`] reads return as soon as
    /// the target is met, retry timed-out attempts, skip providers with
    /// open breakers, and hedge against stragglers; [`QuorumMode::All`]
    /// waits for every provider (verified reads, which want the full
    /// response set for fault identification).
    fn gather(
        &mut self,
        make_req: impl FnMut(&mut Self, ProviderId) -> Result<Vec<u8>>,
        need: usize,
        extra: usize,
        mode: QuorumMode,
    ) -> Result<Vec<(ProviderId, Response)>> {
        let mut make_req = make_req;
        let n = self.cluster.n();
        let mut reqs = Vec::with_capacity(n);
        for p in 0..n {
            reqs.push((p, make_req(self, p)?));
        }
        // An erroring provider (e.g. freshly re-imaged, missing the
        // table) drops out of the quorum like a crashed one; reads must
        // survive any n-k such failures. The rejection reason lands in
        // the QuorumError post-mortem if the quorum collapses entirely.
        let validate = |p: ProviderId, bytes: &[u8]| match Response::decode(bytes) {
            Ok(Response::Error(msg)) => Err(format!("provider {p}: {msg}")),
            Ok(_) => Ok(()),
            Err(e) => Err(format!("provider {p}: undecodable response: {e}")),
        };
        let opts = QuorumOptions {
            retry: self.retry.clone(),
            hedge: self.hedge,
            extra,
            mode,
            validate: Some(&validate),
        };
        self.cluster
            .call_quorum_opts(reqs, need, &opts)?
            .into_iter()
            .map(|(p, bytes)| Ok((p, Response::decode(&bytes)?)))
            .collect()
    }

    // ---- reconstruction ----

    fn decode_column(
        &mut self,
        schema: &TableSchema,
        col_idx: usize,
        shares: &[(ProviderId, i128)],
        verify: bool,
    ) -> Result<u64> {
        let col = schema.columns[col_idx].clone();
        let k = self.keys.k();
        match col.mode {
            ShareMode::OrderPreserving => {
                let sharing = self.op_sharing(&col.domain, col.ctype.domain_size())?;
                if verify {
                    let out = majority_reconstruct_op(&sharing, shares)
                        .map_err(|e| ClientError::Reconstruction(format!("op majority: {e}")))?;
                    for f in out.faulty {
                        if !self.last_faulty.contains(&f) {
                            self.last_faulty.push(f);
                        }
                    }
                    u64::try_from(out.value).map_err(|_| {
                        ClientError::Reconstruction("negative reconstructed value".into())
                    })
                } else {
                    // Fast path: binary-search decode from a single share.
                    let &(p, y) = shares
                        .first()
                        .ok_or_else(|| ClientError::Reconstruction("no shares".into()))?;
                    sharing.reconstruct_search(p, y)?.ok_or_else(|| {
                        ClientError::Reconstruction(
                            "share is not on the expected polynomial".into(),
                        )
                    })
                }
            }
            ShareMode::Deterministic | ShareMode::Random => {
                // Stored field shares are canonical (< p) when written, but
                // provider-side additive increments (§V-C) accumulate
                // without reduction — so reduce mod p here. Corrupt values
                // (including negatives) reduce to *wrong* field elements,
                // lose the majority vote under verification, and thereby
                // both recover the value and name the sender.
                let p_mod = dasp_field::MODULUS as i128;
                let field_shares: Vec<FieldShare> = shares
                    .iter()
                    .map(|&(p, y)| FieldShare {
                        provider: p,
                        y: Fp::from_u64(y.rem_euclid(p_mod) as u64),
                    })
                    .collect();
                if verify {
                    let out = majority_reconstruct_field(self.keys.field(), &field_shares)
                        .map_err(|e| ClientError::Reconstruction(format!("field majority: {e}")))?;
                    for f in out.faulty {
                        if !self.last_faulty.contains(&f) {
                            self.last_faulty.push(f);
                        }
                    }
                    Ok(out.value.to_u64())
                } else {
                    if field_shares.len() < k {
                        return Err(ClientError::Reconstruction(format!(
                            "need {k} shares, have {}",
                            field_shares.len()
                        )));
                    }
                    // Cross-check any shares beyond k instead of silently
                    // trusting the first k — with the quorum layer's one
                    // extra response this turns a Byzantine share into a
                    // loud InconsistentShares error (no-op at exactly k).
                    Ok(self
                        .keys
                        .field()
                        .reconstruct_checked(&field_shares)?
                        .to_u64())
                }
            }
        }
    }

    /// Zip per-provider row lists by row id and reconstruct each row.
    fn reconstruct_rows(
        &mut self,
        schema: &TableSchema,
        responses: Vec<(ProviderId, Vec<Row>)>,
        verify: bool,
    ) -> Result<Vec<DecodedRow>> {
        let k = self.keys.k();
        let mut by_id: HashMap<u64, Vec<(ProviderId, Vec<i128>)>> = HashMap::new();
        for (p, rows) in responses {
            for row in rows {
                let entry = by_id.entry(row.id).or_default();
                // A join result can list the same row several times per
                // provider; keep one copy per provider so Lagrange never
                // sees a duplicated evaluation point.
                if !entry.iter().any(|(ep, _)| *ep == p) {
                    entry.push((p, row.shares));
                }
            }
        }
        // Rows not confirmed by k providers cannot be reconstructed;
        // under verification this is suspicious but non-fatal (the row
        // may genuinely not match at a lagging provider after an update
        // race).
        let mut entries: Vec<ZippedRow> = by_id
            .into_iter()
            .filter(|(_, per_provider)| per_provider.len() >= k)
            .collect();
        entries.sort_by_key(|(id, _)| *id);
        let codes = if verify {
            // Verified reads majority-vote per value and record faulty
            // providers — inherently per-share bookkeeping, kept scalar.
            let mut all = Vec::with_capacity(entries.len());
            for (_, per_provider) in &entries {
                let mut row_codes = Vec::with_capacity(schema.columns.len());
                for col_idx in 0..schema.columns.len() {
                    let shares: Vec<(ProviderId, i128)> = per_provider
                        .iter()
                        .map(|(p, shares)| {
                            shares
                                .get(col_idx)
                                .copied()
                                .map(|s| (*p, s))
                                .ok_or_else(|| {
                                    ClientError::Reconstruction("row arity mismatch".into())
                                })
                        })
                        .collect::<Result<_>>()?;
                    row_codes.push(self.decode_column(schema, col_idx, &shares, true)?);
                }
                all.push(row_codes);
            }
            all
        } else {
            self.decode_rows_batched(schema, &entries)?
        };
        // Decode codes into typed values.
        entries
            .iter()
            .zip(codes)
            .map(|((id, _), row_codes)| {
                let values = row_codes
                    .into_iter()
                    .zip(&schema.columns)
                    .map(|(code, col)| Value::decode(code, &col.ctype))
                    .collect::<Result<Vec<Value>>>()?;
                Ok((*id, values))
            })
            .collect()
    }

    /// Decode all rows' column codes (no verification), batched: rows are
    /// grouped by the provider subset that answered them, each group pays
    /// one Lagrange basis solve (cached across queries) plus one monotone
    /// binary-search pass per order-preserving column, and the field-mode
    /// dot products fan across scoped worker threads.
    fn decode_rows_batched(
        &mut self,
        schema: &TableSchema,
        entries: &[ZippedRow],
    ) -> Result<Vec<Vec<u64>>> {
        let ncols = schema.columns.len();
        for (_, per_provider) in entries {
            if per_provider.iter().any(|(_, shares)| shares.len() < ncols) {
                return Err(ClientError::Reconstruction("row arity mismatch".into()));
            }
        }
        // Resolve per-column decode state once per statement.
        let mut codecs = Vec::with_capacity(ncols);
        for idx in 0..ncols {
            let col = &schema.columns[idx];
            codecs.push(match col.mode {
                ShareMode::OrderPreserving => {
                    let sharing = self.op_sharing(&col.domain, col.ctype.domain_size())?;
                    DecodeCodec::Op(sharing)
                }
                ShareMode::Deterministic | ShareMode::Random => DecodeCodec::Field,
            });
        }
        let field_cols: Vec<usize> = (0..ncols)
            .filter(|&c| matches!(codecs[c], DecodeCodec::Field))
            .collect();
        let mut groups: HashMap<Vec<usize>, Vec<usize>> = HashMap::new();
        for (r, (_, per_provider)) in entries.iter().enumerate() {
            let sig: Vec<usize> = per_provider.iter().map(|&(p, _)| p).collect();
            groups.entry(sig).or_default().push(r);
        }
        let mut out = vec![vec![0u64; ncols]; entries.len()];
        for (providers, rows_idx) in groups {
            // Order-preserving columns: one share per row from the first
            // responder, all decoded in one narrowing binary-search pass.
            for (c, codec) in codecs.iter().enumerate() {
                let DecodeCodec::Op(sharing) = codec else {
                    continue;
                };
                let shares: Vec<i128> = rows_idx.iter().map(|&r| entries[r].1[0].1[c]).collect();
                let decoded = sharing.reconstruct_search_batch(providers[0], &shares)?;
                for (&r, d) in rows_idx.iter().zip(decoded) {
                    out[r][c] = d.ok_or_else(|| {
                        ClientError::Reconstruction(
                            "share is not on the expected polynomial".into(),
                        )
                    })?;
                }
            }
            if field_cols.is_empty() {
                continue;
            }
            let basis = self.cached_basis(&providers)?;
            let workers = self.workers.min(rows_idx.len()).max(1);
            let flat: Vec<Vec<u64>> = if workers == 1 {
                decode_field_chunk(entries, &rows_idx, &field_cols, &basis)?
            } else {
                let chunk = rows_idx.len().div_ceil(workers);
                let results = crossbeam::thread::scope(|s| {
                    let handles: Vec<_> = rows_idx
                        .chunks(chunk)
                        .map(|idx| {
                            let (basis, field_cols) = (&basis, &field_cols);
                            s.spawn(move |_| decode_field_chunk(entries, idx, field_cols, basis))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join()
                                .map_err(|_| ClientError::Worker("decode worker panicked".into()))
                        })
                        .collect::<Vec<_>>()
                })
                .map_err(|_| ClientError::Worker("decode scope panicked".into()))?;
                let mut flat = Vec::with_capacity(rows_idx.len());
                for r in results {
                    flat.extend(r??);
                }
                flat
            };
            for (&r, vals) in rows_idx.iter().zip(flat) {
                for (&c, v) in field_cols.iter().zip(vals) {
                    out[r][c] = v;
                }
            }
        }
        Ok(out)
    }

    /// The cached reconstruction basis for one provider subset.
    fn cached_basis(&mut self, providers: &[usize]) -> Result<FieldBasis> {
        if let Some(b) = self.basis_cache.get(providers) {
            return Ok(b.clone());
        }
        let b = self.keys.field().basis_for(providers)?;
        self.basis_cache.insert(providers.to_vec(), b.clone());
        Ok(b)
    }

    // ---- queries ----

    /// Describe how a query would be rewritten and executed, without
    /// running it: which conjuncts the providers evaluate, the exact
    /// share-space atoms provider 0 would receive, and what each leaks.
    pub fn explain(&mut self, table: &str, predicate: &[Predicate]) -> Result<ExplainReport> {
        let schema = self.table(table)?.schema.clone();
        let (server_preds, residual) = self.split_predicate(&schema, predicate)?;
        let mut conjuncts = Vec::with_capacity(predicate.len());
        for pred in &server_preds {
            let refs = [*pred];
            let atoms = self.rewrite_for_provider(&schema, &refs, 0)?;
            let col = &schema.columns[schema.col(pred.col())?];
            let leaks = match col.mode {
                ShareMode::Deterministic => "equality pattern only",
                ShareMode::OrderPreserving => "equality + order",
                ShareMode::Random => unreachable!("random never server-side"),
            };
            let rewritten = atoms.first().map(|a| match a {
                PredAtom::Eq { col, share } => format!("col{col} = share({share})"),
                PredAtom::Range { col, lo, hi } => {
                    format!("col{col} BETWEEN share({lo}) AND share({hi})")
                }
            });
            conjuncts.push(ExplainConjunct {
                predicate: format!("{pred:?}"),
                server_side: true,
                rewritten,
                leaks,
            });
        }
        for pred in &residual {
            conjuncts.push(ExplainConjunct {
                predicate: format!("{pred:?}"),
                server_side: false,
                rewritten: None,
                leaks: "nothing (information-theoretic)",
            });
        }
        let k = self.keys.k();
        let n = self.keys.n();
        let strategy = if server_preds.is_empty() && !predicate.is_empty() {
            format!(
                "full-table transfer from {k} of {n} providers, filter at client                  (every predicate is on a Random-mode column)"
            )
        } else if conjuncts.iter().any(|c| !c.server_side) {
            format!(
                "provider-side filter on the rewritten atoms, {k}-of-{n} quorum,                  then residual client-side filtering"
            )
        } else if predicate.is_empty() {
            format!("full scan at each provider, {k}-of-{n} quorum")
        } else {
            format!("index probe/range on share space at each provider, {k}-of-{n} quorum")
        };
        Ok(ExplainReport {
            table: table.to_string(),
            conjuncts,
            strategy,
        })
    }

    /// `SELECT * FROM table WHERE conjunction` with default options.
    pub fn select(&mut self, table: &str, predicate: &[Predicate]) -> Result<Vec<DecodedRow>> {
        self.select_opts(table, predicate, QueryOptions::default())
    }

    /// `SELECT *` with explicit options.
    pub fn select_opts(
        &mut self,
        table: &str,
        predicate: &[Predicate],
        opts: QueryOptions,
    ) -> Result<Vec<DecodedRow>> {
        if opts.verify {
            self.last_faulty.clear();
        }
        let schema = self.table(table)?.schema.clone();
        let (server_preds, residual) = self.split_predicate(&schema, predicate)?;
        let (need, extra, mode) = if opts.verify {
            // Verified reads wait for every provider (fault identification
            // wants the full response set); the floor is k+1 so a lone
            // corrupt share is always outvoted.
            ((self.keys.k() + 1).min(self.keys.n()), 0, QuorumMode::All)
        } else {
            // First-k-wins, but ask for one share beyond k when available:
            // reconstruction then cross-checks instead of silently
            // trusting the first k (detects a corrupt share).
            (self.keys.k(), 1, QuorumMode::FirstK)
        };
        let table_name = table.to_string();
        let server_preds: Vec<Predicate> = server_preds.into_iter().cloned().collect();
        let responses = self.gather(
            |ds, p| {
                let refs: Vec<&Predicate> = server_preds.iter().collect();
                let atoms = ds.rewrite_for_provider(&schema, &refs, p)?;
                Ok(Request::Query {
                    table: table_name.clone(),
                    predicate: atoms,
                    agg: None,
                }
                .encode())
            },
            need,
            extra,
            mode,
        )?;
        let residual: Vec<Predicate> = residual.into_iter().cloned().collect();
        self.finish_select(table, predicate, &schema, &residual, responses, opts.verify)
    }

    /// Turn one query's quorum responses into application rows:
    /// reconstruct shares, apply residual client-side predicates, check
    /// and strip ringers, overlay lazily buffered updates. Shared by
    /// [`DataSource::select_opts`] and [`DataSource::query_many`].
    fn finish_select(
        &mut self,
        table: &str,
        predicate: &[Predicate],
        schema: &TableSchema,
        residual: &[Predicate],
        responses: Vec<(ProviderId, Response)>,
        verify: bool,
    ) -> Result<Vec<DecodedRow>> {
        let rows: Vec<(ProviderId, Vec<Row>)> = responses
            .into_iter()
            .map(|(p, resp)| match resp {
                Response::Rows(rows) => Ok((p, rows)),
                other => Err(ClientError::Provider(format!("unexpected {other:?}"))),
            })
            .collect::<Result<_>>()?;
        let mut decoded = self.reconstruct_rows(schema, rows, verify)?;

        // Residual filtering (random-mode columns, unsupported ranges).
        // Column indices are resolved up front so the retain closure is
        // infallible — split_predicate already validated every column.
        if !residual.is_empty() {
            let mut residual_cols: Vec<(usize, &Predicate)> = Vec::with_capacity(residual.len());
            for pred in residual {
                residual_cols.push((schema.col(pred.col())?, pred));
            }
            decoded.retain(|(_, values)| {
                residual_cols.iter().all(|(idx, pred)| {
                    let col = &schema.columns[*idx];
                    values[*idx]
                        .encode(&col.ctype)
                        .map(|code| pred.matches_code(code, &col.ctype))
                        .unwrap_or(false)
                })
            });
        }

        // Ringer check + strip, then lazy overlay.
        self.apply_ringer_checks(table, predicate, &mut decoded)?;
        self.overlay_pending(table, &mut decoded);
        Ok(decoded)
    }

    /// Run a batch of independent `SELECT`s against one table, keeping
    /// many requests in flight at once. Share rewriting happens serially
    /// up front (it owns the client's order-preserving cache), then the
    /// quorum calls fan across up to [`DataSource::set_workers`] scoped
    /// threads — each provider's worker pool interleaves the overlapping
    /// requests, so total latency approaches the slowest single query
    /// rather than the sum. Results are position-matched to `predicates`
    /// and identical to issuing each query through
    /// [`DataSource::select`].
    pub fn query_many(
        &mut self,
        table: &str,
        predicates: &[Vec<Predicate>],
    ) -> Result<Vec<Vec<DecodedRow>>> {
        if predicates.is_empty() {
            return Ok(Vec::new());
        }
        let schema = self.table(table)?.schema.clone();
        let n = self.cluster.n();
        let (need, extra) = (self.keys.k(), 1);

        // Phase 1 (serial, &mut self): rewrite every query for every
        // provider and encode the request bytes.
        let mut batches = Vec::with_capacity(predicates.len());
        let mut residuals = Vec::with_capacity(predicates.len());
        for predicate in predicates {
            let (server_preds, residual) = self.split_predicate(&schema, predicate)?;
            let mut reqs = Vec::with_capacity(n);
            for p in 0..n {
                let atoms = self.rewrite_for_provider(&schema, &server_preds, p)?;
                reqs.push((
                    p,
                    Request::Query {
                        table: table.to_string(),
                        predicate: atoms,
                        agg: None,
                    }
                    .encode(),
                ));
            }
            residuals.push(residual.into_iter().cloned().collect::<Vec<Predicate>>());
            batches.push(reqs);
        }

        // Phase 2 (parallel, &Cluster only): run the quorum engine for
        // each query. First-k-wins with one extra share for the
        // reconstruction cross-check, exactly like a single select.
        let gathered: Vec<Result<Vec<(ProviderId, Response)>>> = {
            let cluster = &self.cluster;
            let retry = self.retry.clone();
            let hedge = self.hedge;
            let quorum = |reqs: Vec<(ProviderId, Vec<u8>)>| -> Result<Vec<(ProviderId, Response)>> {
                let validate = |p: ProviderId, bytes: &[u8]| match Response::decode(bytes) {
                    Ok(Response::Error(msg)) => Err(format!("provider {p}: {msg}")),
                    Ok(_) => Ok(()),
                    Err(e) => Err(format!("provider {p}: undecodable response: {e}")),
                };
                let opts = QuorumOptions {
                    retry: retry.clone(),
                    hedge,
                    extra,
                    mode: QuorumMode::FirstK,
                    validate: Some(&validate),
                };
                cluster
                    .call_quorum_opts(reqs, need, &opts)?
                    .into_iter()
                    .map(|(p, bytes)| Ok((p, Response::decode(&bytes)?)))
                    .collect()
            };
            let workers = self.workers.min(batches.len()).max(1);
            if workers == 1 {
                batches.into_iter().map(quorum).collect()
            } else {
                let chunk = batches.len().div_ceil(workers);
                let chunks: Vec<Vec<_>> = {
                    let mut chunks = Vec::with_capacity(workers);
                    let mut it = batches.into_iter();
                    loop {
                        let group: Vec<_> = it.by_ref().take(chunk).collect();
                        if group.is_empty() {
                            break;
                        }
                        chunks.push(group);
                    }
                    chunks
                };
                let per_chunk = crossbeam::thread::scope(|s| {
                    let quorum = &quorum;
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .map(|group| {
                            s.spawn(move |_| group.into_iter().map(quorum).collect::<Vec<_>>())
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join()
                                .map_err(|_| ClientError::Worker("query worker panicked".into()))
                        })
                        .collect::<Vec<_>>()
                })
                .map_err(|_| ClientError::Worker("query scope panicked".into()))?;
                let mut flat = Vec::with_capacity(predicates.len());
                for group in per_chunk {
                    flat.extend(group?);
                }
                flat
            }
        };

        // Phase 3 (serial, &mut self): reconstruct and post-process each
        // query in batch order.
        let mut out = Vec::with_capacity(predicates.len());
        for ((responses, residual), predicate) in
            gathered.into_iter().zip(residuals).zip(predicates)
        {
            out.push(self.finish_select(table, predicate, &schema, &residual, responses?, false)?);
        }
        Ok(out)
    }

    fn apply_ringer_checks(
        &self,
        table: &str,
        predicate: &[Predicate],
        decoded: &mut Vec<DecodedRow>,
    ) -> Result<()> {
        let state = self.table(table)?;
        if state.ringers.is_empty() {
            return Ok(());
        }
        let ids: Vec<u64> = decoded.iter().map(|(id, _)| *id).collect();
        for pred in predicate {
            if let Some(set) = state.ringers.get(pred.col()) {
                let idx = state.schema.col(pred.col())?;
                let ctype = &state.schema.columns[idx].ctype;
                let (lo, hi) = pred.code_interval(ctype)?;
                set.check_range_result(lo, hi, &ids).map_err(|e| {
                    ClientError::Provider(format!("execution assurance failed: {e}"))
                })?;
            }
        }
        // Strip all ringer rows from what the application sees.
        decoded.retain(|(id, _)| !state.ringers.values().any(|set| set.is_ringer(*id)));
        Ok(())
    }

    fn overlay_pending(&self, table: &str, decoded: &mut [DecodedRow]) {
        if let Some(state) = self.tables.get(table) {
            for (id, values) in decoded.iter_mut() {
                if let Some(newer) = state.pending.get(id) {
                    *values = newer.clone();
                }
            }
        }
    }

    // ---- aggregates ----

    /// `SELECT COUNT(*) WHERE …` (server-side).
    pub fn count(&mut self, table: &str, predicate: &[Predicate]) -> Result<u64> {
        Ok(self.aggregate(table, "", predicate, AggKind::Count)?.count)
    }

    /// `SELECT SUM(col) WHERE …` — providers sum shares, client
    /// reconstructs the true sum from the share sums (§V-A).
    pub fn sum(&mut self, table: &str, col: &str, predicate: &[Predicate]) -> Result<AggResult> {
        self.aggregate(table, col, predicate, AggKind::Sum)
    }

    /// `SELECT AVG(col) WHERE …` as (sum, count) — returned value is the
    /// floor of the mean.
    pub fn avg(&mut self, table: &str, col: &str, predicate: &[Predicate]) -> Result<AggResult> {
        let r = self.aggregate(table, col, predicate, AggKind::Sum)?;
        let value = match (&r.value, r.count) {
            (Some(Value::Int(sum)), c) if c > 0 => Some(Value::Int(sum / c)),
            _ => None,
        };
        Ok(AggResult {
            value,
            count: r.count,
        })
    }

    /// `SELECT MIN(col) WHERE …` (order-preserving columns only).
    pub fn min(&mut self, table: &str, col: &str, predicate: &[Predicate]) -> Result<AggResult> {
        self.aggregate(table, col, predicate, AggKind::Min)
    }

    /// `SELECT MAX(col) WHERE …` (order-preserving columns only).
    pub fn max(&mut self, table: &str, col: &str, predicate: &[Predicate]) -> Result<AggResult> {
        self.aggregate(table, col, predicate, AggKind::Max)
    }

    /// `SELECT MEDIAN(col) WHERE …` (order-preserving columns only).
    pub fn median(&mut self, table: &str, col: &str, predicate: &[Predicate]) -> Result<AggResult> {
        self.aggregate(table, col, predicate, AggKind::Median)
    }

    /// `SELECT * … ORDER BY col [DESC] LIMIT n`, executed server-side on
    /// an order-preserving column: each provider sorts by share (share
    /// order = value order) and returns only the top rows.
    ///
    /// The whole predicate must be server-evaluable — truncating before a
    /// client-side residual filter would be wrong, so residuals fall back
    /// to a full select + client sort.
    pub fn select_top(
        &mut self,
        table: &str,
        order_col: &str,
        desc: bool,
        limit: u64,
        predicate: &[Predicate],
    ) -> Result<Vec<DecodedRow>> {
        let schema = self.table(table)?.schema.clone();
        let col_idx = schema.col(order_col)?;
        let spec = schema.columns[col_idx].clone();
        let (server_preds, residual) = self.split_predicate(&schema, predicate)?;
        let has_overlay =
            !self.table(table)?.pending.is_empty() || !self.table(table)?.ringers.is_empty();
        if !spec.mode.supports_range() || !residual.is_empty() || has_overlay {
            // Fallback: fetch, sort client-side, truncate.
            let mut rows = self.select(table, predicate)?;
            let keyed: Result<Vec<(u64, DecodedRow)>> = rows
                .drain(..)
                .map(|(id, values)| {
                    let code = values[col_idx].encode(&spec.ctype)?;
                    Ok((code, (id, values)))
                })
                .collect();
            let mut keyed = keyed?;
            keyed.sort_by_key(|(code, (id, _))| (*code, *id));
            if desc {
                keyed.reverse();
            }
            keyed.truncate(limit as usize);
            return Ok(keyed.into_iter().map(|(_, row)| row).collect());
        }
        let table_name = table.to_string();
        let server_preds: Vec<Predicate> = server_preds.into_iter().cloned().collect();
        let k = self.keys.k();
        let responses = self.gather(
            |ds, p| {
                let refs: Vec<&Predicate> = server_preds.iter().collect();
                let atoms = ds.rewrite_for_provider(&schema, &refs, p)?;
                Ok(Request::QueryOrdered {
                    table: table_name.clone(),
                    predicate: atoms,
                    order_col: col_idx,
                    desc,
                    limit,
                }
                .encode())
            },
            k,
            0,
            QuorumMode::FirstK,
        )?;
        let rows: Vec<(ProviderId, Vec<Row>)> = responses
            .into_iter()
            .map(|(p, resp)| match resp {
                Response::Rows(rows) => Ok((p, rows)),
                other => Err(ClientError::Provider(format!("unexpected {other:?}"))),
            })
            .collect::<Result<_>>()?;
        // Providers return the SAME logical rows in the SAME order (order
        // preservation is per-provider but consistent); remember it before
        // reconstruction resorts by id.
        let order: Vec<u64> = rows
            .first()
            .map(|(_, r)| r.iter().map(|row| row.id).collect())
            .unwrap_or_default();
        let decoded = self.reconstruct_rows(&schema, rows, false)?;
        let by_id: HashMap<u64, Vec<Value>> = decoded.into_iter().collect();
        Ok(order
            .into_iter()
            .filter_map(|id| by_id.get(&id).map(|v| (id, v.clone())))
            .collect())
    }

    /// `SELECT group_col, SUM(agg_col), COUNT(*) … GROUP BY group_col`,
    /// executed server-side: providers return per-group share partials
    /// which the client zips by representative row id and reconstructs.
    pub fn group_by(
        &mut self,
        table: &str,
        group_col: &str,
        sum_col: Option<&str>,
        predicate: &[Predicate],
    ) -> Result<Vec<GroupRow>> {
        let schema = self.table(table)?.schema.clone();
        let g_idx = schema.col(group_col)?;
        let g_spec = schema.columns[g_idx].clone();
        if !g_spec.mode.supports_equality() {
            return Err(ClientError::Unsupported(
                "GROUP BY needs an equality-capable share mode".into(),
            ));
        }
        let s_spec = match sum_col {
            None => None,
            Some(c) => Some(schema.columns[schema.col(c)?].clone()),
        };
        let (server_preds, residual) = self.split_predicate(&schema, predicate)?;
        let has_overlay =
            !self.table(table)?.pending.is_empty() || !self.table(table)?.ringers.is_empty();
        if !residual.is_empty() || has_overlay {
            return self.group_by_client_side(table, group_col, sum_col, predicate);
        }
        let agg = match sum_col {
            None => AggOp::Count,
            Some(c) => AggOp::Sum {
                col: schema.col(c)?,
            },
        };
        let table_name = table.to_string();
        let server_preds: Vec<Predicate> = server_preds.into_iter().cloned().collect();
        let k = self.keys.k();
        let responses = self.gather(
            |ds, p| {
                let refs: Vec<&Predicate> = server_preds.iter().collect();
                let atoms = ds.rewrite_for_provider(&schema, &refs, p)?;
                Ok(Request::GroupedAggregate {
                    table: table_name.clone(),
                    predicate: atoms,
                    group_col: g_idx,
                    agg,
                }
                .encode())
            },
            k,
            0,
            QuorumMode::FirstK,
        )?;
        // Zip group partials across providers by rep_row.
        let mut by_rep: HashMap<u64, Vec<(ProviderId, dasp_server::proto::GroupPartial)>> =
            HashMap::new();
        for (p, resp) in responses {
            let Response::Groups(groups) = resp else {
                return Err(ClientError::Provider("unexpected group response".into()));
            };
            for g in groups {
                by_rep.entry(g.rep_row).or_default().push((p, g));
            }
        }
        let mut out = Vec::with_capacity(by_rep.len());
        for (rep, partials) in by_rep {
            if partials.len() < k {
                continue; // not confirmed by a quorum
            }
            let count = partials[0].1.count;
            // Reconstruct the group value from its shares.
            let g_shares: Vec<(ProviderId, i128)> =
                partials.iter().map(|(p, g)| (*p, g.group_share)).collect();
            let g_code = self.decode_column(&schema, g_idx, &g_shares, false)?;
            let group = Value::decode(g_code, &g_spec.ctype)?;
            // Reconstruct the sum (mode-dependent), if requested.
            let sum = match &s_spec {
                None => None,
                Some(spec) if count == 0 => {
                    let _ = spec;
                    Some(Value::Int(0))
                }
                Some(spec) => {
                    let code = match spec.mode {
                        ShareMode::OrderPreserving => {
                            let sharing =
                                self.op_sharing(&spec.domain, spec.ctype.domain_size())?;
                            let pairs: Vec<(usize, i128)> =
                                partials.iter().map(|(p, g)| (*p, g.sum)).collect();
                            let v = sharing.reconstruct_interpolate(&pairs)?.ok_or_else(|| {
                                ClientError::Reconstruction("inconsistent group sums".into())
                            })?;
                            u64::try_from(v).map_err(|_| {
                                ClientError::Reconstruction("negative group sum".into())
                            })?
                        }
                        ShareMode::Deterministic | ShareMode::Random => {
                            let p_mod = dasp_field::MODULUS as i128;
                            let shares: Vec<FieldShare> = partials
                                .iter()
                                .map(|(p, g)| FieldShare {
                                    provider: *p,
                                    y: Fp::from_u64(g.sum.rem_euclid(p_mod) as u64),
                                })
                                .collect();
                            self.keys.field().reconstruct(&shares)?.to_u64()
                        }
                    };
                    Some(Value::Int(code))
                }
            };
            out.push(GroupRow {
                rep_row: rep,
                group,
                sum,
                count,
            });
        }
        out.sort_by_key(|g| g.rep_row);
        Ok(out)
    }

    fn group_by_client_side(
        &mut self,
        table: &str,
        group_col: &str,
        sum_col: Option<&str>,
        predicate: &[Predicate],
    ) -> Result<Vec<GroupRow>> {
        let rows = self.select(table, predicate)?;
        let schema = self.table(table)?.schema.clone();
        let g_idx = schema.col(group_col)?;
        let s_idx = match sum_col {
            None => None,
            Some(c) => Some(schema.col(c)?),
        };
        let mut groups: HashMap<Value, GroupRow> = HashMap::new();
        for (id, values) in rows {
            let entry = groups.entry(values[g_idx].clone()).or_insert(GroupRow {
                rep_row: id,
                group: values[g_idx].clone(),
                sum: s_idx.map(|_| Value::Int(0)),
                count: 0,
            });
            entry.rep_row = entry.rep_row.min(id);
            entry.count += 1;
            if let (Some(i), Some(Value::Int(acc))) = (s_idx, entry.sum.as_mut()) {
                let Value::Int(v) = values[i] else {
                    return Err(ClientError::Unsupported("SUM over a text column".into()));
                };
                *acc += v;
            }
        }
        let mut out: Vec<GroupRow> = groups.into_values().collect();
        out.sort_by_key(|g| g.rep_row);
        Ok(out)
    }

    fn aggregate(
        &mut self,
        table: &str,
        col: &str,
        predicate: &[Predicate],
        kind: AggKind,
    ) -> Result<AggResult> {
        let schema = self.table(table)?.schema.clone();
        let (server_preds, residual) = self.split_predicate(&schema, predicate)?;
        let has_pending = !self.table(table)?.pending.is_empty();
        let has_ringers = !self.table(table)?.ringers.is_empty();
        // Server-side aggregation is only sound if the providers see the
        // whole predicate and the data contains no planted/unflushed rows.
        if !residual.is_empty() || has_pending || has_ringers {
            return self.aggregate_client_side(table, col, predicate, kind);
        }
        let col_idx = if matches!(kind, AggKind::Count) {
            0
        } else {
            schema.col(col)?
        };
        let col_spec = schema.columns.get(col_idx).cloned();
        if let (AggKind::Min | AggKind::Max | AggKind::Median, Some(spec)) = (&kind, &col_spec) {
            if !matches!(kind, AggKind::Count) && !spec.mode.supports_range() {
                // Order statistics need order-preserving shares.
                return self.aggregate_client_side(table, col, predicate, kind);
            }
        }
        let agg = match kind {
            AggKind::Count => AggOp::Count,
            AggKind::Sum => AggOp::Sum { col: col_idx },
            AggKind::Min => AggOp::Min { col: col_idx },
            AggKind::Max => AggOp::Max { col: col_idx },
            AggKind::Median => AggOp::Median { col: col_idx },
        };
        let table_name = table.to_string();
        let server_preds: Vec<Predicate> = server_preds.into_iter().cloned().collect();
        let k = self.keys.k();
        let responses = self.gather(
            |ds, p| {
                let refs: Vec<&Predicate> = server_preds.iter().collect();
                let atoms = ds.rewrite_for_provider(&schema, &refs, p)?;
                Ok(Request::Query {
                    table: table_name.clone(),
                    predicate: atoms,
                    agg: Some(agg),
                }
                .encode())
            },
            k,
            0,
            QuorumMode::FirstK,
        )?;
        let partials: Vec<(ProviderId, i128, u64, Option<Row>)> = responses
            .into_iter()
            .map(|(p, resp)| match resp {
                Response::Agg { sum, count, row } => Ok((p, sum, count, row)),
                other => Err(ClientError::Provider(format!("unexpected {other:?}"))),
            })
            .collect::<Result<_>>()?;
        let count = partials[0].2;
        match kind {
            AggKind::Count => Ok(AggResult { value: None, count }),
            AggKind::Sum => {
                if count == 0 {
                    return Ok(AggResult {
                        value: Some(Value::Int(0)),
                        count: 0,
                    });
                }
                let spec =
                    col_spec.ok_or_else(|| ClientError::Schema("SUM requires a column".into()))?;
                let sum_code = match spec.mode {
                    ShareMode::OrderPreserving => {
                        let sharing = self.op_sharing(&spec.domain, spec.ctype.domain_size())?;
                        let pairs: Vec<(usize, i128)> =
                            partials.iter().map(|&(p, s, _, _)| (p, s)).collect();
                        let v = sharing.reconstruct_interpolate(&pairs)?.ok_or_else(|| {
                            ClientError::Reconstruction("inconsistent sum shares".into())
                        })?;
                        u64::try_from(v)
                            .map_err(|_| ClientError::Reconstruction("negative sum".into()))?
                    }
                    ShareMode::Deterministic | ShareMode::Random => {
                        let p_mod = dasp_field::MODULUS as i128;
                        let shares: Vec<FieldShare> = partials
                            .iter()
                            .map(|&(p, s, _, _)| FieldShare {
                                provider: p,
                                y: Fp::from_u64((s.rem_euclid(p_mod)) as u64),
                            })
                            .collect();
                        self.keys.field().reconstruct(&shares)?.to_u64()
                    }
                };
                Ok(AggResult {
                    value: Some(Value::Int(sum_code)),
                    count,
                })
            }
            AggKind::Min | AggKind::Max | AggKind::Median => {
                if count == 0 {
                    return Ok(AggResult {
                        value: None,
                        count: 0,
                    });
                }
                // Every provider returns the same logical row (order is
                // preserved identically); zip and reconstruct it.
                let rows: Vec<(ProviderId, Vec<Row>)> = partials
                    .into_iter()
                    .map(|(p, _, _, row)| {
                        row.map(|r| (p, vec![r]))
                            .ok_or_else(|| ClientError::Provider("missing extremal row".into()))
                    })
                    .collect::<Result<_>>()?;
                let decoded = self.reconstruct_rows(&schema, rows, false)?;
                let (_, values) = decoded.into_iter().next().ok_or_else(|| {
                    ClientError::Reconstruction("extremal row ids disagree".into())
                })?;
                Ok(AggResult {
                    value: Some(values[col_idx].clone()),
                    count,
                })
            }
        }
    }

    /// Fallback: fetch matching rows and aggregate at the client.
    fn aggregate_client_side(
        &mut self,
        table: &str,
        col: &str,
        predicate: &[Predicate],
        kind: AggKind,
    ) -> Result<AggResult> {
        let rows = self.select(table, predicate)?;
        let count = rows.len() as u64;
        if matches!(kind, AggKind::Count) {
            return Ok(AggResult { value: None, count });
        }
        let schema = &self.table(table)?.schema;
        let idx = schema.col(col)?;
        let mut nums: Vec<u64> = rows
            .iter()
            .map(|(_, values)| match &values[idx] {
                Value::Int(v) => Ok(*v),
                Value::Str(_) => Err(ClientError::Unsupported(
                    "numeric aggregate over text column".into(),
                )),
            })
            .collect::<Result<_>>()?;
        if nums.is_empty() {
            let value = matches!(kind, AggKind::Sum).then_some(Value::Int(0));
            return Ok(AggResult { value, count: 0 });
        }
        nums.sort_unstable();
        let value = match kind {
            AggKind::Sum => Value::Int(nums.iter().sum()),
            AggKind::Min => Value::Int(nums[0]),
            AggKind::Max => Value::Int(nums[nums.len() - 1]),
            AggKind::Median => Value::Int(nums[nums.len() / 2]),
            AggKind::Count => unreachable!(),
        };
        Ok(AggResult {
            value: Some(value),
            count,
        })
    }

    // ---- joins ----

    /// Equi-join two tables on same-domain columns, executed provider-side
    /// on share equality (§V-A). Returns (left row, right row) pairs.
    pub fn join(
        &mut self,
        left: &str,
        left_col: &str,
        right: &str,
        right_col: &str,
    ) -> Result<Vec<(DecodedRow, DecodedRow)>> {
        let ls = self.table(left)?.schema.clone();
        let rs = self.table(right)?.schema.clone();
        let li = ls.col(left_col)?;
        let ri = rs.col(right_col)?;
        let lc = &ls.columns[li];
        let rc = &rs.columns[ri];
        if lc.domain != rc.domain {
            return Err(ClientError::Unsupported(format!(
                "join columns are in different domains ({:?} vs {:?}) — the §V-A scheme only joins within a domain",
                lc.domain, rc.domain
            )));
        }
        if lc.mode != rc.mode || !lc.mode.supports_equality() {
            return Err(ClientError::Unsupported(
                "join columns need matching, equality-capable share modes".into(),
            ));
        }
        if lc.ctype.domain_size() != rc.ctype.domain_size() {
            return Err(ClientError::Unsupported(
                "join columns must share a domain size".into(),
            ));
        }
        let req = Request::Join {
            left: left.to_string(),
            right: right.to_string(),
            left_col: li,
            right_col: ri,
        }
        .encode();
        let k = self.keys.k();
        let responses = self.gather(|_, _| Ok(req.clone()), k, 0, QuorumMode::FirstK)?;
        // Zip pairs by (left id, right id); reconstruct each side.
        let mut left_rows: Vec<(ProviderId, Vec<Row>)> = Vec::new();
        let mut right_rows: Vec<(ProviderId, Vec<Row>)> = Vec::new();
        let mut pair_ids: Vec<(u64, u64)> = Vec::new();
        for (p, resp) in responses {
            let Response::Joined(pairs) = resp else {
                return Err(ClientError::Provider("unexpected join response".into()));
            };
            if pair_ids.is_empty() {
                pair_ids = pairs.iter().map(|(l, r)| (l.id, r.id)).collect();
                pair_ids.sort_unstable();
            }
            left_rows.push((p, pairs.iter().map(|(l, _)| l.clone()).collect()));
            right_rows.push((p, pairs.into_iter().map(|(_, r)| r).collect()));
        }
        let left_decoded = self.reconstruct_rows(&ls, left_rows, false)?;
        let right_decoded = self.reconstruct_rows(&rs, right_rows, false)?;
        let lmap: HashMap<u64, Vec<Value>> = left_decoded.into_iter().collect();
        let rmap: HashMap<u64, Vec<Value>> = right_decoded.into_iter().collect();
        let mut out = Vec::with_capacity(pair_ids.len());
        for (lid, rid) in pair_ids {
            if let (Some(lv), Some(rv)) = (lmap.get(&lid), rmap.get(&rid)) {
                out.push(((lid, lv.clone()), (rid, rv.clone())));
            }
        }
        Ok(out)
    }

    // ---- updates (§V-C) ----

    /// Delete matching rows everywhere; returns how many.
    pub fn delete_where(&mut self, table: &str, predicate: &[Predicate]) -> Result<usize> {
        let rows = self.select(table, predicate)?;
        let ids: Vec<u64> = rows.iter().map(|(id, _)| *id).collect();
        if ids.is_empty() {
            return Ok(0);
        }
        let req = Request::Delete {
            table: table.to_string(),
            ids: ids.clone(),
        };
        self.broadcast_ack(&req)?;
        let mut cancelled = Vec::new();
        if let Some(state) = self.tables.get_mut(table) {
            for id in &ids {
                if state.pending.remove(id).is_some() {
                    cancelled.push(*id);
                }
            }
        }
        if !cancelled.is_empty() {
            if let Some(journal) = &self.journal {
                journal.log_cancel(table, &cancelled)?;
            }
        }
        Ok(ids.len())
    }

    /// Update matching rows, setting `assignments` columns to new values.
    /// Eager mode re-shares and pushes immediately (retrieve → reconstruct
    /// → re-share, exactly the paper's description); lazy mode buffers.
    pub fn update_where(
        &mut self,
        table: &str,
        predicate: &[Predicate],
        assignments: &[(&str, Value)],
    ) -> Result<usize> {
        let schema = self.table(table)?.schema.clone();
        let rows = self.select(table, predicate)?;
        let mut updated = Vec::with_capacity(rows.len());
        for (id, mut values) in rows {
            for (col, value) in assignments {
                let idx = schema.col(col)?;
                // Type-check now so lazy mode can't buffer garbage.
                value.encode(&schema.columns[idx].ctype)?;
                values[idx] = value.clone();
            }
            updated.push((id, values));
        }
        let count = updated.len();
        if self.lazy {
            // Journal before the in-memory queue mutation: a crash
            // between the two re-queues the batch on recovery (providers
            // haven't seen it, so replaying is exact, not approximate).
            if let Some(journal) = &self.journal {
                journal.log_pending(table, &updated)?;
            }
            let state = self
                .tables
                .get_mut(table)
                .ok_or_else(|| ClientError::Schema(format!("no table {table:?}")))?;
            for (id, values) in updated {
                state.pending.insert(id, values);
            }
            return Ok(count);
        }
        self.push_updates(table, &updated)?;
        Ok(count)
    }

    fn push_updates(&mut self, table: &str, updated: &[(u64, Vec<Value>)]) -> Result<()> {
        if updated.is_empty() {
            return Ok(());
        }
        let plan = self.encode_plan(table)?;
        let (ids, rows): (Vec<u64>, Vec<Vec<Value>>) = updated.iter().cloned().unzip();
        let encoded = self.encode_rows(table, &plan, &rows)?;
        let n = self.keys.n();
        let mut per_provider: Vec<Vec<Row>> = vec![Vec::with_capacity(updated.len()); n];
        for (id, row_shares) in ids.iter().zip(encoded) {
            for (p, shares) in row_shares.into_iter().enumerate() {
                per_provider[p].push(Row { id: *id, shares });
            }
        }
        let reqs: Vec<(ProviderId, Vec<u8>)> = per_provider
            .into_iter()
            .enumerate()
            .map(|(p, rows)| {
                (
                    p,
                    Request::Update {
                        table: table.to_string(),
                        rows,
                    }
                    .encode(),
                )
            })
            .collect();
        self.send_all_ack(reqs)
    }

    /// §V-C incremental update: add `delta` to a **random-mode** numeric
    /// column of every matching row *without retrieving anything* — the
    /// client splits the delta into fresh random shares and providers add
    /// them in place. The sum of two random sharings is again a uniformly
    /// random sharing of the summed value, so privacy is unchanged.
    ///
    /// One selection round trip (ids only, via the predicate) plus one
    /// increment round trip — versus retrieve-reconstruct-reshare for the
    /// eager path.
    pub fn increment_where(
        &mut self,
        table: &str,
        predicate: &[Predicate],
        col: &str,
        delta: u64,
    ) -> Result<usize> {
        let schema = self.table(table)?.schema.clone();
        let col_idx = schema.col(col)?;
        let spec = schema.columns[col_idx].clone();
        if spec.mode != ShareMode::Random {
            return Err(ClientError::Unsupported(
                "incremental updates require a random-mode column (deterministic and                  order-preserving shares have value-bound structure)"
                    .into(),
            ));
        }
        // Overflow check against the column domain requires values; do a
        // selection (ids + current values) — still one round, and the
        // value check guards domain invariants.
        let rows = self.select(table, predicate)?;
        let mut deltas_per_provider: Vec<Vec<(u64, i128)>> =
            vec![Vec::with_capacity(rows.len()); self.keys.n()];
        for (id, values) in &rows {
            let Value::Int(current) = values[col_idx] else {
                return Err(ClientError::Unsupported("increment on text column".into()));
            };
            let new = current
                .checked_add(delta)
                .ok_or_else(|| ClientError::Schema("increment overflows u64".into()))?;
            if new >= spec.ctype.domain_size() {
                return Err(ClientError::Schema(format!(
                    "row {id}: {current} + {delta} leaves the domain"
                )));
            }
            // Fresh random sharing of the delta, one polynomial per row.
            let shares = self
                .keys
                .field()
                .split_random(Fp::from_u64(delta), &mut self.rng);
            for s in shares {
                deltas_per_provider[s.provider].push((*id, s.y.to_u64() as i128));
            }
        }
        let count = rows.len();
        if count == 0 {
            return Ok(0);
        }
        let reqs: Vec<(ProviderId, Vec<u8>)> = deltas_per_provider
            .into_iter()
            .enumerate()
            .map(|(p, deltas)| {
                (
                    p,
                    Request::Increment {
                        table: table.to_string(),
                        col: col_idx,
                        deltas,
                    }
                    .encode(),
                )
            })
            .collect();
        self.send_all_ack(reqs)?;
        Ok(count)
    }

    /// Flush buffered lazy updates for `table` in one batch per provider.
    ///
    /// With a journal ([`DataSource::set_lazy_journal`]) the queue is
    /// marked flushed only *after* the providers acknowledge, so a crash
    /// mid-flush re-queues the batch on recovery instead of losing it.
    pub fn flush(&mut self, table: &str) -> Result<usize> {
        let pending: Vec<(u64, Vec<Value>)> = {
            let state = self
                .tables
                .get_mut(table)
                .ok_or_else(|| ClientError::Schema(format!("no table {table:?}")))?;
            state.pending.drain().collect()
        };
        let count = pending.len();
        self.push_updates(table, &pending)?;
        if let Some(journal) = &self.journal {
            journal.log_flushed(table)?;
            // A globally drained queue needs no records: truncate.
            let all_empty = self.orphan_pending.values().all(HashMap::is_empty)
                && self.tables.values().all(|t| t.pending.is_empty());
            if all_empty {
                journal.compact()?;
            }
        }
        Ok(count)
    }

    // ---- execution assurance (ringers) ----

    /// Plant `count` ringer rows for `col`; `filler` builds the rest of
    /// each row from the ringer value. Ringers are checked on every query
    /// constraining `col` and stripped from results.
    pub fn plant_ringers(
        &mut self,
        table: &str,
        col: &str,
        count: usize,
        filler: impl Fn(u64) -> Vec<Value>,
    ) -> Result<()> {
        let schema = self.table(table)?.schema.clone();
        let idx = schema.col(col)?;
        let domain = schema.columns[idx].ctype.domain_size();
        // Ringer ids live far above normal ids to avoid collision.
        let id_base = 1 << 40;
        let mut set = self
            .tables
            .get(table)
            .and_then(|t| t.ringers.get(col).cloned())
            .unwrap_or_default();
        let planted = set.plant(count, domain, id_base + set.len() as u64, &mut self.rng);
        let (ids, rows): (Vec<u64>, Vec<Vec<Value>>) =
            planted.iter().map(|&(id, v)| (id, filler(v))).unzip();
        // Sanity: filler must put the ringer value in `col`.
        for (&(_, v), row) in planted.iter().zip(&rows) {
            let encoded = row[idx].encode(&schema.columns[idx].ctype)?;
            if encoded != v {
                return Err(ClientError::Schema(
                    "ringer filler must place the ringer value in the target column".into(),
                ));
            }
        }
        self.insert_with_ids(table, &ids, &rows)?;
        self.tables
            .get_mut(table)
            .ok_or_else(|| ClientError::Schema(format!("no table {table:?}")))?
            .ringers
            .insert(col.to_string(), set);
        Ok(())
    }
}

impl DataSource {
    // ---- disaster recovery (paper §I: "a mechanism to recover the data") ----

    /// Rebuild a wiped/replaced provider's entire state from the
    /// surviving quorum: for every table and row,
    ///
    /// * deterministic and order-preserving shares are recomputed
    ///   directly from the reconstructed values (their construction is
    ///   keyed and deterministic), and
    /// * random-mode shares are *regenerated on the original polynomial*
    ///   by Lagrange-evaluating k surviving shares at the lost provider's
    ///   secret point — so the rebuilt provider is bit-identical to what
    ///   it held before, and existing (k-of-n) invariants are preserved
    ///   without touching any other provider.
    ///
    /// The target provider must be reachable (it is the replacement
    /// node); at least k *other* providers must be alive.
    pub fn rebuild_provider(&mut self, target: ProviderId) -> Result<usize> {
        if target >= self.keys.n() {
            return Err(ClientError::Schema(format!("no provider {target}")));
        }
        // Start the replacement from a clean slate.
        let resp = Response::decode(&self.cluster.call(target, Request::DropAllTables.encode())?)?;
        if !matches!(resp, Response::Ack) {
            return Err(ClientError::Provider(format!("wipe failed: {resp:?}")));
        }
        let tables: Vec<String> = self.tables.keys().cloned().collect();
        let k = self.keys.k();
        let x_target = self.keys.field_point(target)?;
        let mut total_rows = 0usize;
        for table in tables {
            let schema = self.table(&table)?.schema.clone();
            // Fetch full share tables from k healthy *other* providers.
            let req = Request::Query {
                table: table.clone(),
                predicate: vec![],
                agg: None,
            }
            .encode();
            let mut healthy: Vec<(ProviderId, Vec<Row>)> = Vec::new();
            for p in 0..self.keys.n() {
                if p == target || healthy.len() == k {
                    continue;
                }
                let Ok(bytes) = self.cluster.call_with_retry(p, req.clone(), &self.retry) else {
                    continue;
                };
                let Ok(Response::Rows(rows)) = Response::decode(&bytes) else {
                    continue;
                };
                healthy.push((p, rows));
            }
            if healthy.len() < k {
                return Err(ClientError::Reconstruction(format!(
                    "only {} healthy providers, need {k}",
                    healthy.len()
                )));
            }
            // Zip rows by id.
            let mut by_id: HashMap<u64, Vec<(ProviderId, Vec<i128>)>> = HashMap::new();
            for (p, rows) in healthy {
                for row in rows {
                    by_id.entry(row.id).or_default().push((p, row.shares));
                }
            }
            // Recreate the table at the target.
            let indexed: Vec<bool> = schema
                .columns
                .iter()
                .map(|c| c.mode.supports_equality())
                .collect();
            let create = Request::CreateTable {
                name: table.clone(),
                columns: schema.columns.iter().map(|c| c.name.clone()).collect(),
                indexed,
            };
            let resp = Response::decode(&self.cluster.call(target, create.encode())?)?;
            if !matches!(resp, Response::Ack) {
                return Err(ClientError::Provider(format!("recreate failed: {resp:?}")));
            }
            // Regenerate this provider's share for every row/column.
            let mut rebuilt: Vec<Row> = Vec::with_capacity(by_id.len());
            for (id, per_provider) in by_id {
                if per_provider.len() < k {
                    return Err(ClientError::Reconstruction(format!(
                        "row {id} lacks a quorum"
                    )));
                }
                let mut shares = Vec::with_capacity(schema.columns.len());
                for (col_idx, spec) in schema.columns.iter().enumerate() {
                    let col_shares: Vec<(ProviderId, i128)> =
                        per_provider.iter().map(|(p, s)| (*p, s[col_idx])).collect();
                    let regenerated: i128 = match spec.mode {
                        ShareMode::Random => {
                            // Evaluate the original polynomial at x_target.
                            let p_mod = dasp_field::MODULUS as i128;
                            let pts: Vec<(Fp, Fp)> = col_shares[..k]
                                .iter()
                                .map(|&(p, y)| {
                                    Ok((
                                        self.keys.field_point(p)?,
                                        Fp::from_u64(y.rem_euclid(p_mod) as u64),
                                    ))
                                })
                                .collect::<Result<_>>()?;
                            lagrange_eval_at(&pts, x_target)
                                .map_err(|e| ClientError::Reconstruction(e.to_string()))?
                                .to_u64() as i128
                        }
                        ShareMode::Deterministic => {
                            let code = self.decode_column(&schema, col_idx, &col_shares, false)?;
                            let key = self.keys.domain_key(&spec.domain);
                            self.keys
                                .field()
                                .deterministic_share(code, &key, target)?
                                .to_u64() as i128
                        }
                        ShareMode::OrderPreserving => {
                            let code = self.decode_column(&schema, col_idx, &col_shares, false)?;
                            let sharing =
                                self.op_sharing(&spec.domain, spec.ctype.domain_size())?;
                            sharing.share_for(code, target)?
                        }
                    };
                    shares.push(regenerated);
                }
                rebuilt.push(Row { id, shares });
            }
            total_rows += rebuilt.len();
            for chunk in rebuilt.chunks(2000) {
                let req = Request::Insert {
                    table: table.clone(),
                    rows: chunk.to_vec(),
                };
                let resp = Response::decode(&self.cluster.call(target, req.encode())?)?;
                if !matches!(resp, Response::Ack) {
                    return Err(ClientError::Provider(format!("reinsert failed: {resp:?}")));
                }
            }
        }
        Ok(total_rows)
    }

    // ---- authenticated (completeness-proved) range queries ----

    /// Establish Merkle commitments for `table` sorted by `col` at every
    /// provider. The client independently rebuilds each provider's tree
    /// from the share rows it fetches — majority-verifying the values
    /// first — and accepts the provider's root only if it matches, so a
    /// provider cannot commit to tampered data unnoticed (below the
    /// collusion threshold).
    ///
    /// Commitments are invalidated by any subsequent mutation; re-commit
    /// after writes.
    pub fn commit_table(&mut self, table: &str, col: &str) -> Result<usize> {
        let schema = self.table(table)?.schema.clone();
        let col_idx = schema.col(col)?;
        // Fetch every provider's full share table.
        let req = Request::Query {
            table: table.to_string(),
            predicate: vec![],
            agg: None,
        }
        .encode();
        let want = (self.keys.k() + 1).min(self.keys.n());
        let responses = self.gather(|_, _| Ok(req.clone()), want, 0, QuorumMode::All)?;
        let rows: Vec<(ProviderId, Vec<Row>)> = responses
            .into_iter()
            .map(|(p, resp)| match resp {
                Response::Rows(rows) => Ok((p, rows)),
                other => Err(ClientError::Provider(format!("unexpected {other:?}"))),
            })
            .collect::<Result<_>>()?;
        // Majority-verify the data before pinning it.
        self.last_faulty.clear();
        let _decoded = self.reconstruct_rows(&schema, rows.clone(), true)?;
        if !self.last_faulty.is_empty() {
            return Err(ClientError::Reconstruction(format!(
                "providers {:?} returned corrupt shares; refusing to commit",
                self.last_faulty
            )));
        }
        // Build each provider's expected tree locally and challenge it.
        let mut committed = HashMap::new();
        for (provider, provider_rows) in rows {
            if provider_rows.is_empty() {
                return Err(ClientError::Schema("cannot commit an empty table".into()));
            }
            let leaves: Vec<CommittedRow> = provider_rows
                .iter()
                .map(|r| CommittedRow {
                    id: r.id,
                    shares: r.shares.clone(),
                })
                .collect();
            let expected = dasp_verify::AuthenticatedTable::build(leaves, col_idx);
            let resp_bytes = self.cluster.call(
                provider,
                Request::Commit {
                    table: table.to_string(),
                    col: col_idx,
                }
                .encode(),
            )?;
            let resp = Response::decode(&resp_bytes)?;
            let Response::Committed { root, total_rows } = resp else {
                return Err(ClientError::Provider(format!(
                    "provider {provider}: unexpected commit response"
                )));
            };
            if root != expected.root() || total_rows as usize != expected.len() {
                return Err(ClientError::Provider(format!(
                    "provider {provider} committed to a different tree than its data"
                )));
            }
            committed.insert(provider, (root, expected.len()));
        }
        let n = committed.len();
        self.tables
            .get_mut(table)
            .ok_or_else(|| ClientError::Schema(format!("no table {table:?}")))?
            .commitments
            .insert(col.to_string(), committed);
        Ok(n)
    }

    /// Range query with per-provider completeness proofs: any withheld or
    /// forged row fails Merkle verification against the committed root.
    /// Requires a prior [`DataSource::commit_table`] on an
    /// order-preserving column.
    pub fn verified_range(
        &mut self,
        table: &str,
        col: &str,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<DecodedRow>> {
        let schema = self.table(table)?.schema.clone();
        let col_idx = schema.col(col)?;
        let spec = schema.columns[col_idx].clone();
        if !spec.mode.supports_range() {
            return Err(ClientError::Unsupported(
                "verified ranges need an order-preserving column".into(),
            ));
        }
        let commitments = self
            .table(table)?
            .commitments
            .get(col)
            .cloned()
            .ok_or_else(|| {
                ClientError::Unsupported(format!(
                    "no commitment for {table}.{col}; call commit_table first"
                ))
            })?;
        let sharing = self.op_sharing(&spec.domain, spec.ctype.domain_size())?;
        let k = self.keys.k();
        let mut verified_rows: Vec<(ProviderId, Vec<Row>)> = Vec::new();
        for (&provider, &(root, total)) in &commitments {
            if verified_rows.len() >= k {
                break;
            }
            let (slo, shi) = sharing.range_for(lo, hi, provider)?;
            let req = Request::VerifiedRange {
                table: table.to_string(),
                col: col_idx,
                lo: slo,
                hi: shi,
            }
            .encode();
            let Ok(resp_bytes) = self.cluster.call_with_retry(provider, req, &self.retry) else {
                continue; // crashed provider: try others
            };
            let Ok(resp) = Response::decode(&resp_bytes) else {
                continue;
            };
            let Response::ProvedRows { total_rows, proof } = resp else {
                continue;
            };
            if total_rows as usize != total {
                return Err(ClientError::Provider(format!(
                    "provider {provider} changed its table size under a commitment"
                )));
            }
            let range_proof = wire_to_range_proof(&proof);
            range_proof
                .verify(&root, slo, shi, col_idx, total)
                .map_err(|e| {
                    ClientError::Provider(format!(
                        "provider {provider} failed completeness verification: {e}"
                    ))
                })?;
            verified_rows.push((
                provider,
                proof
                    .rows
                    .into_iter()
                    .map(|r| Row {
                        id: r.id,
                        shares: r.shares,
                    })
                    .collect(),
            ));
        }
        if verified_rows.len() < k {
            return Err(ClientError::Reconstruction(format!(
                "only {} providers passed verification, need {k}",
                verified_rows.len()
            )));
        }
        self.reconstruct_rows(&schema, verified_rows, false)
    }
}

fn wire_to_range_proof(p: &WireRangeProof) -> RangeProof {
    let conv = |wp: &WireMerkleProof| MerkleProof {
        index: wp.index as usize,
        siblings: wp.siblings.clone(),
    };
    let row = |r: &Row| CommittedRow {
        id: r.id,
        shares: r.shares.clone(),
    };
    RangeProof {
        start: p.start as usize,
        rows: p.rows.iter().map(row).collect(),
        proofs: p.proofs.iter().map(conv).collect(),
        left_boundary: p.left_boundary.as_ref().map(|(r, wp)| (row(r), conv(wp))),
        right_boundary: p.right_boundary.as_ref().map(|(r, wp)| (row(r), conv(wp))),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AggKind {
    Count,
    Sum,
    Min,
    Max,
    Median,
}
