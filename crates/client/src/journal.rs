//! Durable journal for the §V-C lazy-update reshare queue.
//!
//! Lazy mode buffers re-shares client-side: updates overlay query results
//! until [`crate::DataSource::flush`] pushes them to the providers. That
//! buffer used to live only in memory, so a client crash silently lost
//! every queued re-share. The journal write-ahead-logs each queue
//! mutation — enqueue, cancel, flush — into a [`dasp_storage::Wal`] with
//! per-record fsync, and replays the intact prefix on open, so a
//! restarted client resumes with exactly the queue it had acknowledged.
//!
//! The log compacts by truncation whenever the whole queue drains: the
//! journal's contract is "replay reproduces the queue", and an empty
//! queue needs no records.

use crate::schema::Value;
use crate::{ClientError, Result};
use dasp_net::{WireReader, WireWriter};
use dasp_storage::{Wal, WalConfig};
use std::collections::HashMap;
use std::path::Path;

/// Queue contents recovered from a journal: table → row id → values.
pub type RecoveredQueue = HashMap<String, HashMap<u64, Vec<Value>>>;

const TAG_PENDING: u8 = 0;
const TAG_CANCEL: u8 = 1;
const TAG_FLUSHED: u8 = 2;

const VALUE_INT: u8 = 0;
const VALUE_STR: u8 = 1;

fn journal_err(context: &str, e: impl std::fmt::Display) -> ClientError {
    ClientError::Journal(format!("{context}: {e}"))
}

fn write_value(w: &mut WireWriter, v: &Value) {
    match v {
        Value::Int(n) => {
            w.u8(VALUE_INT).u64(*n);
        }
        Value::Str(s) => {
            w.u8(VALUE_STR).string(s);
        }
    }
}

fn read_value(r: &mut WireReader) -> Result<Value> {
    let tag = r.u8().map_err(|e| journal_err("value tag", e))?;
    match tag {
        VALUE_INT => Ok(Value::Int(
            r.u64().map_err(|e| journal_err("int value", e))?,
        )),
        VALUE_STR => Ok(Value::Str(
            r.string().map_err(|e| journal_err("str value", e))?,
        )),
        other => Err(ClientError::Journal(format!("unknown value tag {other}"))),
    }
}

/// The client-side write-ahead log of the lazy-update queue.
pub struct LazyJournal {
    wal: Wal,
}

impl LazyJournal {
    /// Open (or create) the journal at `path` and replay it into the
    /// queue it represents. A torn tail from a crashed append is
    /// truncated by the WAL layer; every intact record replays.
    pub fn open(path: &Path) -> Result<(Self, RecoveredQueue)> {
        let cfg = WalConfig {
            fsync_every: 1, // queue mutations are rare; never defer them
            ..WalConfig::default()
        };
        // The client journal always runs generation 0: compaction
        // truncates in place instead of switching generations, so an
        // open can never mistake live records for superseded ones.
        let rec = Wal::open(path, 0, cfg).map_err(|e| journal_err("journal open", e))?;
        let mut queue = RecoveredQueue::new();
        for record in &rec.records {
            Self::replay(&mut queue, record)?;
        }
        let journal = LazyJournal { wal: rec.wal };
        // Everything cancelled/flushed again? Start from a clean file.
        if queue.values().all(HashMap::is_empty) {
            queue.clear();
            journal.compact()?;
        }
        Ok((journal, queue))
    }

    fn replay(queue: &mut RecoveredQueue, record: &[u8]) -> Result<()> {
        let mut r = WireReader::new(record);
        let tag = r.u8().map_err(|e| journal_err("record tag", e))?;
        match tag {
            TAG_PENDING => {
                let table = r.string().map_err(|e| journal_err("table name", e))?;
                let count = r.u64().map_err(|e| journal_err("row count", e))? as usize;
                let slot = queue.entry(table).or_default();
                for _ in 0..count {
                    let id = r.u64().map_err(|e| journal_err("row id", e))?;
                    let arity = r.u64().map_err(|e| journal_err("arity", e))? as usize;
                    let mut values = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        values.push(read_value(&mut r)?);
                    }
                    slot.insert(id, values);
                }
            }
            TAG_CANCEL => {
                let table = r.string().map_err(|e| journal_err("table name", e))?;
                let count = r.u64().map_err(|e| journal_err("id count", e))? as usize;
                let slot = queue.entry(table).or_default();
                for _ in 0..count {
                    let id = r.u64().map_err(|e| journal_err("row id", e))?;
                    slot.remove(&id);
                }
            }
            TAG_FLUSHED => {
                let table = r.string().map_err(|e| journal_err("table name", e))?;
                queue.remove(&table);
            }
            other => return Err(ClientError::Journal(format!("unknown record tag {other}"))),
        }
        Ok(())
    }

    fn append(&self, record: &[u8]) -> Result<()> {
        self.wal
            .append_durable(record)
            .map(|_| ())
            .map_err(|e| journal_err("journal append", e))
    }

    /// Record a batch of enqueued lazy updates.
    pub fn log_pending(&self, table: &str, rows: &[(u64, Vec<Value>)]) -> Result<()> {
        let mut w = WireWriter::new();
        w.u8(TAG_PENDING).string(table).u64(rows.len() as u64);
        for (id, values) in rows {
            w.u64(*id).u64(values.len() as u64);
            for v in values {
                write_value(&mut w, v);
            }
        }
        self.append(&w.finish())
    }

    /// Record that queued updates for `ids` were superseded (deleted
    /// rows carry no re-share).
    pub fn log_cancel(&self, table: &str, ids: &[u64]) -> Result<()> {
        let mut w = WireWriter::new();
        w.u8(TAG_CANCEL).string(table).u64(ids.len() as u64);
        for id in ids {
            w.u64(*id);
        }
        self.append(&w.finish())
    }

    /// Record that `table`'s whole queue reached the providers.
    pub fn log_flushed(&self, table: &str) -> Result<()> {
        let mut w = WireWriter::new();
        w.u8(TAG_FLUSHED).string(table);
        self.append(&w.finish())
    }

    /// Truncate the journal. Only sound when the in-memory queue is
    /// empty — replaying an empty file must reproduce the queue.
    pub fn compact(&self) -> Result<()> {
        self.wal
            .switch_generation(0)
            .map_err(|e| journal_err("journal compact", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn journal_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dasp-journal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("lazy.journal")
    }

    fn values(n: u64) -> Vec<Value> {
        vec![Value::Int(n), Value::Str("AB".into())]
    }

    #[test]
    fn queue_survives_reopen() {
        let path = journal_path("reopen");
        {
            let (j, recovered) = LazyJournal::open(&path).unwrap();
            assert!(recovered.is_empty());
            j.log_pending("t", &[(1, values(10)), (2, values(20))])
                .unwrap();
            j.log_pending("u", &[(7, values(70))]).unwrap();
            j.log_cancel("t", &[2]).unwrap();
        }
        let (_j, recovered) = LazyJournal::open(&path).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered["t"].len(), 1);
        assert_eq!(recovered["t"][&1], values(10));
        assert_eq!(recovered["u"][&7], values(70));
    }

    #[test]
    fn flush_empties_table_and_drained_journal_compacts() {
        let path = journal_path("flush");
        {
            let (j, _) = LazyJournal::open(&path).unwrap();
            j.log_pending("t", &[(1, values(1))]).unwrap();
            j.log_flushed("t").unwrap();
        }
        let (_j, recovered) = LazyJournal::open(&path).unwrap();
        assert!(recovered.is_empty());
        // The drained journal was truncated back to a bare header.
        let len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(len, 16, "journal not compacted: {len} bytes");
    }

    #[test]
    fn torn_tail_recovers_committed_prefix() {
        let path = journal_path("torn");
        {
            let (j, _) = LazyJournal::open(&path).unwrap();
            j.log_pending("t", &[(1, values(1))]).unwrap();
            j.log_pending("t", &[(2, values(2))]).unwrap();
        }
        // Tear the final record mid-frame.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);
        let (_j, recovered) = LazyJournal::open(&path).unwrap();
        assert_eq!(recovered["t"].len(), 1);
        assert_eq!(recovered["t"][&1], values(1));
    }
}
