//! End-to-end tests of the data source against a live simulated cluster.

use dasp_client::{
    BucketJoin, ClientError, ClientKeys, ColumnSpec, DataSource, Predicate, QueryOptions,
    TableSchema, Value,
};
use dasp_net::{Cluster, FailureMode};
use dasp_server::service::{provider_fleet, shared_provider_fleet};
use dasp_sss::ShareMode;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn source(k: usize, n: usize) -> DataSource {
    let mut rng = StdRng::seed_from_u64(0xdab);
    let keys = ClientKeys::generate(k, n, &mut rng).unwrap();
    let cluster = Cluster::spawn(provider_fleet(n), Duration::from_millis(500));
    DataSource::with_seed(keys, cluster, 7).unwrap()
}

fn employees_schema() -> TableSchema {
    TableSchema::new(
        "employees",
        vec![
            ColumnSpec::text("name", 8, ShareMode::Deterministic),
            ColumnSpec::numeric("salary", 1 << 20, ShareMode::OrderPreserving),
            ColumnSpec::numeric("ssn", 1 << 30, ShareMode::Random),
        ],
    )
    .unwrap()
}

fn setup_employees(ds: &mut DataSource) -> Vec<u64> {
    ds.create_table(employees_schema()).unwrap();
    let rows: Vec<Vec<Value>> = vec![
        vec!["JOHN".into(), Value::Int(10_000), Value::Int(111)],
        vec!["MARY".into(), Value::Int(20_000), Value::Int(222)],
        vec!["JOHN".into(), Value::Int(40_000), Value::Int(333)],
        vec!["ALICE".into(), Value::Int(60_000), Value::Int(444)],
        vec!["BOB".into(), Value::Int(80_000), Value::Int(555)],
    ];
    ds.insert("employees", &rows).unwrap()
}

#[test]
fn exact_match_on_deterministic_text() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    let rows = ds
        .select("employees", &[Predicate::eq("name", "JOHN")])
        .unwrap();
    assert_eq!(rows.len(), 2);
    for (_, values) in &rows {
        assert_eq!(values[0], Value::from("JOHN"));
    }
    let salaries: Vec<&Value> = rows.iter().map(|(_, v)| &v[1]).collect();
    assert_eq!(salaries, vec![&Value::Int(10_000), &Value::Int(40_000)]);
}

#[test]
fn range_on_order_preserving_salary() {
    // The paper's running example: salaries between 10K and 40K.
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    let rows = ds
        .select(
            "employees",
            &[Predicate::between("salary", 10_000u64, 40_000u64)],
        )
        .unwrap();
    let salaries: Vec<u64> = rows
        .iter()
        .map(|(_, v)| match v[1] {
            Value::Int(s) => s,
            _ => panic!(),
        })
        .collect();
    assert_eq!(salaries, vec![10_000, 20_000, 40_000]);
}

#[test]
fn random_mode_column_is_filtered_client_side() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    let before = ds.cluster().stats().snapshot();
    let rows = ds
        .select("employees", &[Predicate::eq("ssn", 333u64)])
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1[0], Value::from("JOHN"));
    // Residual filtering forces full-table transfer — the paper's
    // privacy/performance trade-off in action.
    let delta = ds.cluster().stats().snapshot().since(&before);
    assert!(delta.bytes_received > 0);
}

#[test]
fn conjunction_mixing_modes() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    let rows = ds
        .select(
            "employees",
            &[
                Predicate::eq("name", "JOHN"),
                Predicate::between("salary", 30_000u64, 90_000u64),
            ],
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1[1], Value::Int(40_000));
}

#[test]
fn prefix_query_on_text_needs_op_mode() {
    // name is Deterministic → prefix falls back to residual filtering.
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    let rows = ds
        .select("employees", &[Predicate::prefix("name", "JO")])
        .unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn prefix_query_server_side_with_op_text() {
    let mut ds = source(2, 3);
    ds.create_table(
        TableSchema::new(
            "contacts",
            vec![ColumnSpec::text("name", 6, ShareMode::OrderPreserving)],
        )
        .unwrap(),
    )
    .unwrap();
    ds.insert(
        "contacts",
        &[
            vec!["ABE".into()],
            vec!["ABEL".into()],
            vec!["ADAM".into()],
            vec!["JACK".into()],
        ],
    )
    .unwrap();
    let rows = ds
        .select("contacts", &[Predicate::prefix("name", "AB")])
        .unwrap();
    assert_eq!(rows.len(), 2);
    // String BETWEEN (§V-B example: between "Albert" and "Jack").
    let rows = ds
        .select("contacts", &[Predicate::between("name", "ABEL", "JACK")])
        .unwrap();
    assert_eq!(rows.len(), 3);
}

#[test]
fn aggregates_server_side() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    // SUM over a range (the paper's §III example query).
    let pred = [Predicate::between("salary", 10_000u64, 40_000u64)];
    let sum = ds.sum("employees", "salary", &pred).unwrap();
    assert_eq!(sum.value, Some(Value::Int(70_000)));
    assert_eq!(sum.count, 3);

    let avg = ds.avg("employees", "salary", &pred).unwrap();
    assert_eq!(avg.value, Some(Value::Int(70_000 / 3)));

    assert_eq!(ds.count("employees", &pred).unwrap(), 3);

    let min = ds.min("employees", "salary", &[]).unwrap();
    assert_eq!(min.value, Some(Value::Int(10_000)));
    let max = ds.max("employees", "salary", &[]).unwrap();
    assert_eq!(max.value, Some(Value::Int(80_000)));
    let med = ds.median("employees", "salary", &[]).unwrap();
    assert_eq!(med.value, Some(Value::Int(40_000)));
}

#[test]
fn aggregate_over_exact_match() {
    // "Average of the salaries of all employees whose name is John."
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    let avg = ds
        .avg("employees", "salary", &[Predicate::eq("name", "JOHN")])
        .unwrap();
    assert_eq!(avg.value, Some(Value::Int(25_000)));
    assert_eq!(avg.count, 2);
}

#[test]
fn empty_aggregates() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    let pred = [Predicate::eq("name", "NOBODY")];
    let sum = ds.sum("employees", "salary", &pred).unwrap();
    assert_eq!(sum.value, Some(Value::Int(0)));
    assert_eq!(sum.count, 0);
    let min = ds.min("employees", "salary", &pred).unwrap();
    assert_eq!(min.value, None);
    assert_eq!(ds.count("employees", &pred).unwrap(), 0);
}

#[test]
fn sum_on_deterministic_column_via_field_shares() {
    let mut ds = source(2, 3);
    ds.create_table(
        TableSchema::new(
            "sales",
            vec![
                ColumnSpec::numeric("region", 100, ShareMode::Deterministic),
                ColumnSpec::numeric("amount", 1 << 30, ShareMode::Deterministic),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    ds.insert(
        "sales",
        &[
            vec![Value::Int(1), Value::Int(500)],
            vec![Value::Int(1), Value::Int(700)],
            vec![Value::Int(2), Value::Int(900)],
        ],
    )
    .unwrap();
    let sum = ds
        .sum("sales", "amount", &[Predicate::eq("region", 1u64)])
        .unwrap();
    assert_eq!(sum.value, Some(Value::Int(1200)));
}

#[test]
fn join_on_shared_domain() {
    // Employees ⋈ Managers on EID (§V-A join example).
    let mut ds = source(2, 3);
    ds.create_table(
        TableSchema::new(
            "employees",
            vec![
                ColumnSpec::numeric("eid", 1 << 20, ShareMode::Deterministic).in_domain("eid"),
                ColumnSpec::numeric("salary", 1 << 20, ShareMode::OrderPreserving),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    ds.create_table(
        TableSchema::new(
            "managers",
            vec![
                ColumnSpec::numeric("eid", 1 << 20, ShareMode::Deterministic).in_domain("eid"),
                ColumnSpec::numeric("level", 16, ShareMode::Random),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    ds.insert(
        "employees",
        &[
            vec![Value::Int(100), Value::Int(50_000)],
            vec![Value::Int(101), Value::Int(60_000)],
            vec![Value::Int(102), Value::Int(70_000)],
        ],
    )
    .unwrap();
    ds.insert(
        "managers",
        &[
            vec![Value::Int(101), Value::Int(3)],
            vec![Value::Int(102), Value::Int(5)],
            vec![Value::Int(999), Value::Int(1)],
        ],
    )
    .unwrap();
    let pairs = ds.join("employees", "eid", "managers", "eid").unwrap();
    assert_eq!(pairs.len(), 2);
    let mut salaries: Vec<&Value> = pairs.iter().map(|((_, l), _)| &l[1]).collect();
    salaries.sort();
    assert_eq!(salaries, vec![&Value::Int(60_000), &Value::Int(70_000)]);
    // Random-mode manager level reconstructs too.
    for ((_, _l), (_, r)) in &pairs {
        assert!(matches!(r[1], Value::Int(3) | Value::Int(5)));
    }
}

#[test]
fn join_rejects_mismatched_domains() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    ds.create_table(
        TableSchema::new(
            "other",
            vec![ColumnSpec::numeric("x", 1 << 20, ShareMode::Deterministic)],
        )
        .unwrap(),
    )
    .unwrap();
    let err = ds.join("employees", "salary", "other", "x").unwrap_err();
    assert!(matches!(err, ClientError::Unsupported(_)));
}

#[test]
fn delete_and_update() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    // Give everyone called JOHN a raise (eager update).
    let n = ds
        .update_where(
            "employees",
            &[Predicate::eq("name", "JOHN")],
            &[("salary", Value::Int(99_000))],
        )
        .unwrap();
    assert_eq!(n, 2);
    let rows = ds
        .select("employees", &[Predicate::eq("salary", 99_000u64)])
        .unwrap();
    assert_eq!(rows.len(), 2);

    // Fire BOB.
    assert_eq!(
        ds.delete_where("employees", &[Predicate::eq("name", "BOB")])
            .unwrap(),
        1
    );
    assert_eq!(ds.count("employees", &[]).unwrap(), 4);
}

#[test]
fn lazy_updates_buffer_then_flush() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    ds.set_lazy(true);
    ds.update_where(
        "employees",
        &[Predicate::eq("name", "MARY")],
        &[("salary", Value::Int(77_777))],
    )
    .unwrap();
    // Overlay: the client sees the new value...
    let rows = ds
        .select("employees", &[Predicate::eq("name", "MARY")])
        .unwrap();
    assert_eq!(rows[0].1[1], Value::Int(77_777));
    // ...while providers still hold the old shares (range query for the
    // new salary matches nothing server-side before the flush, and the
    // overlay cannot resurrect rows the providers did not return).
    let traffic_before = ds.cluster().stats().snapshot();
    let flushed = ds.flush("employees").unwrap();
    assert_eq!(flushed, 1);
    assert!(
        ds.cluster()
            .stats()
            .snapshot()
            .since(&traffic_before)
            .messages_sent
            > 0,
        "flush must talk to providers"
    );
    ds.set_lazy(false);
    let rows = ds
        .select(
            "employees",
            &[Predicate::between("salary", 77_000u64, 78_000u64)],
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1[0], Value::from("MARY"));
}

#[test]
fn survives_crashed_minority() {
    let mut ds = source(2, 4);
    setup_employees(&mut ds);
    ds.cluster().set_failure(1, FailureMode::Crashed);
    ds.cluster().set_failure(3, FailureMode::Crashed);
    // k = 2 of 4 still up → queries succeed.
    let rows = ds
        .select(
            "employees",
            &[Predicate::between("salary", 10_000u64, 40_000u64)],
        )
        .unwrap();
    assert_eq!(rows.len(), 3);
    // Aggregates too.
    let sum = ds
        .sum(
            "employees",
            "salary",
            &[Predicate::between("salary", 10_000u64, 40_000u64)],
        )
        .unwrap();
    assert_eq!(sum.value, Some(Value::Int(70_000)));
}

#[test]
fn fails_cleanly_when_quorum_lost() {
    let mut ds = source(3, 4);
    setup_employees(&mut ds);
    for p in 0..2 {
        ds.cluster().set_failure(p, FailureMode::Crashed);
    }
    let err = ds.select("employees", &[]).unwrap_err();
    // The typed quorum post-mortem names the crashed providers.
    let ClientError::Quorum(q) = err else {
        panic!("expected ClientError::Quorum, got {err:?}");
    };
    assert!(q.got < q.needed, "{q:?}");
    for p in 0..2u32 {
        let (_, outcome) = q
            .per_provider
            .iter()
            .find(|(id, _)| *id == p as usize)
            .expect("crashed provider present in post-mortem");
        assert!(
            !matches!(outcome, dasp_net::ProviderOutcome::Ok),
            "crashed provider {p} reported Ok"
        );
    }
}

#[test]
fn verified_queries_identify_byzantine_provider() {
    let mut ds = source(2, 4);
    setup_employees(&mut ds);
    ds.cluster().set_failure(2, FailureMode::Byzantine(1.0));
    let rows = ds
        .select_opts(
            "employees",
            &[Predicate::between("salary", 10_000u64, 80_000u64)],
            QueryOptions { verify: true },
        )
        .unwrap();
    assert_eq!(rows.len(), 5, "majority reconstruction survives corruption");
    // The corrupted provider is identified (if its responses decoded at
    // all — a mangled frame drops it from the quorum instead, which is
    // also detection).
    if !ds.last_faulty.is_empty() {
        assert_eq!(ds.last_faulty, vec![2]);
    }
}

#[test]
fn ringers_detect_withheld_rows() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    ds.plant_ringers("employees", "salary", 8, |v| {
        vec!["RINGER".into(), Value::Int(v), Value::Int(0)]
    })
    .unwrap();
    // Honest providers: queries pass and ringers never surface.
    let rows = ds
        .select(
            "employees",
            &[Predicate::between("salary", 0u64, 1_000_000u64)],
        )
        .unwrap();
    assert_eq!(rows.len(), 5, "ringers are stripped");
    assert!(rows.iter().all(|(_, v)| v[0] != Value::from("RINGER")));
    // Aggregates exclude ringers via the client-side fallback.
    let sum = ds.sum("employees", "salary", &[]).unwrap();
    assert_eq!(sum.value, Some(Value::Int(210_000)));
}

#[test]
fn mashup_bucketed_public_join() {
    let mut ds = source(2, 3);
    // Private friends table.
    ds.create_table(
        TableSchema::new(
            "friends",
            vec![
                ColumnSpec::text("name", 8, ShareMode::Deterministic),
                ColumnSpec::numeric("location", 1 << 20, ShareMode::Random),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    ds.insert("friends", &[vec!["CAROL".into(), Value::Int(5_430)]])
        .unwrap();
    // Public restaurants table at provider 0.
    let restaurants: Vec<(u64, Vec<u64>)> = (0..200u64).map(|i| (i, vec![i * 50, i])).collect(); // locations 0, 50, ..., 9950
    BucketJoin::new(ds.cluster(), 0)
        .upload_public("restaurants", &["location", "rid"], 0, &restaurants)
        .unwrap();
    // Reconstruct Carol's location privately…
    let rows = ds
        .select("friends", &[Predicate::eq("name", "CAROL")])
        .unwrap();
    let Value::Int(loc) = rows[0].1[1] else {
        panic!()
    };
    assert_eq!(loc, 5_430);
    // …and fetch nearby restaurants through a bucket.
    let (near, stats) = BucketJoin::new(ds.cluster(), 0)
        .near("restaurants", 0, loc, 100, 1000)
        .unwrap();
    let ids: Vec<u64> = near.iter().map(|(_, v)| v[1]).collect();
    // Restaurants within [5330, 5530]: locations 5350..=5500 → ids 107..=110.
    assert_eq!(ids, vec![107, 108, 109, 110]);
    assert!(stats.rows_fetched >= near.len() as u64);
    assert_eq!(stats.leaked_interval, 1000);
    // The provider learned a 1000-wide interval, not the address.
    assert!(stats.leaked_interval > 2 * 100);
}

#[test]
fn group_by_server_side() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    // GROUP BY name, SUM(salary).
    let groups = ds
        .group_by("employees", "name", Some("salary"), &[])
        .unwrap();
    assert_eq!(groups.len(), 4); // JOHN, MARY, ALICE, BOB
    let john = groups
        .iter()
        .find(|g| g.group == Value::from("JOHN"))
        .unwrap();
    assert_eq!(john.sum, Some(Value::Int(50_000)));
    assert_eq!(john.count, 2);
    let bob = groups
        .iter()
        .find(|g| g.group == Value::from("BOB"))
        .unwrap();
    assert_eq!(bob.sum, Some(Value::Int(80_000)));
    assert_eq!(bob.count, 1);

    // COUNT-only grouping with a predicate.
    let groups = ds
        .group_by(
            "employees",
            "name",
            None,
            &[Predicate::between("salary", 0u64, 45_000u64)],
        )
        .unwrap();
    assert_eq!(groups.len(), 2); // JOHN (x2), MARY
    let john = groups
        .iter()
        .find(|g| g.group == Value::from("JOHN"))
        .unwrap();
    assert_eq!((john.count, john.sum.clone()), (2, None));
}

#[test]
fn group_by_on_op_column_and_errors() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    // Grouping by an order-preserving column works too (equality-capable).
    let groups = ds
        .group_by("employees", "salary", Some("salary"), &[])
        .unwrap();
    assert_eq!(groups.len(), 5);
    // Grouping by a Random column must fail loudly.
    let err = ds.group_by("employees", "ssn", None, &[]).unwrap_err();
    assert!(matches!(err, ClientError::Unsupported(_)));
}

#[test]
fn group_by_falls_back_with_residual_predicate() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    // ssn is Random → residual → client-side fallback still correct.
    let groups = ds
        .group_by(
            "employees",
            "name",
            Some("salary"),
            &[Predicate::between("ssn", 0u64, 400u64)],
        )
        .unwrap();
    // ssn ≤ 400: rows 1 (JOHN/10000/111), 2 (MARY/20000/222), 3 (JOHN/40000/333).
    assert_eq!(groups.len(), 2);
    let john = groups
        .iter()
        .find(|g| g.group == Value::from("JOHN"))
        .unwrap();
    assert_eq!(john.sum, Some(Value::Int(50_000)));
}

#[test]
fn top_k_server_side() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    let before = ds.cluster().stats().snapshot();
    let top = ds.select_top("employees", "salary", true, 2, &[]).unwrap();
    assert_eq!(top.len(), 2);
    assert_eq!(top[0].1[1], Value::Int(80_000));
    assert_eq!(top[1].1[1], Value::Int(60_000));
    // Only the top rows crossed the wire.
    let delta = ds.cluster().stats().snapshot().since(&before);
    assert!(
        delta.bytes_received < 1000,
        "{} bytes",
        delta.bytes_received
    );

    // Ascending bottom-3 with a predicate.
    let bottom = ds
        .select_top(
            "employees",
            "salary",
            false,
            3,
            &[Predicate::between("salary", 15_000u64, 90_000u64)],
        )
        .unwrap();
    let got: Vec<&Value> = bottom.iter().map(|(_, v)| &v[1]).collect();
    assert_eq!(
        got,
        vec![
            &Value::Int(20_000),
            &Value::Int(40_000),
            &Value::Int(60_000)
        ]
    );
}

#[test]
fn top_k_fallback_on_deterministic_column() {
    // name is Deterministic (no order support) → client-side sort path.
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    let top = ds.select_top("employees", "name", false, 2, &[]).unwrap();
    assert_eq!(top[0].1[0], Value::from("ALICE"));
    assert_eq!(top[1].1[0], Value::from("BOB"));
}

#[test]
fn incremental_update_without_retrieval() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    // Give JOHNs +1000 on their (random-mode) ssn column, repeatedly —
    // repeated increments exercise the mod-p share accumulation.
    for round in 1..=10u64 {
        let n = ds
            .increment_where("employees", &[Predicate::eq("name", "JOHN")], "ssn", 1000)
            .unwrap();
        assert_eq!(n, 2, "round {round}");
    }
    let rows = ds
        .select("employees", &[Predicate::eq("name", "JOHN")])
        .unwrap();
    let mut ssns: Vec<&Value> = rows.iter().map(|(_, v)| &v[2]).collect();
    ssns.sort();
    assert_eq!(
        ssns,
        vec![&Value::Int(111 + 10_000), &Value::Int(333 + 10_000)]
    );
    // Untouched rows unchanged.
    let rows = ds
        .select("employees", &[Predicate::eq("name", "MARY")])
        .unwrap();
    assert_eq!(rows[0].1[2], Value::Int(222));
}

#[test]
fn incremental_update_guards() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    // Structured (deterministic/OP) columns refuse increments.
    for col in ["name", "salary"] {
        let err = ds.increment_where("employees", &[], col, 1).unwrap_err();
        assert!(matches!(err, ClientError::Unsupported(_)), "{col}");
    }
    // Domain overflow is caught before any provider is touched.
    let err = ds
        .increment_where(
            "employees",
            &[Predicate::eq("name", "BOB")],
            "ssn",
            u64::MAX / 2,
        )
        .unwrap_err();
    assert!(matches!(err, ClientError::Schema(_)));
    // Empty selection is a no-op.
    assert_eq!(
        ds.increment_where("employees", &[Predicate::eq("name", "NOBODY")], "ssn", 5)
            .unwrap(),
        0
    );
}

#[test]
fn incremental_update_is_cheaper_than_eager() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    let before = ds.cluster().stats().snapshot();
    ds.increment_where("employees", &[Predicate::eq("name", "ALICE")], "ssn", 7)
        .unwrap();
    let inc = ds.cluster().stats().snapshot().since(&before);
    let before = ds.cluster().stats().snapshot();
    ds.update_where(
        "employees",
        &[Predicate::eq("name", "ALICE")],
        &[("ssn", Value::Int(999))],
    )
    .unwrap();
    let eager = ds.cluster().stats().snapshot().since(&before);
    assert!(
        inc.bytes_sent < eager.bytes_sent,
        "increment sent {} vs eager {}",
        inc.bytes_sent,
        eager.bytes_sent
    );
}

#[test]
fn rebuild_provider_restores_bit_identical_shares() {
    let mut ds = source(2, 4);
    setup_employees(&mut ds);
    // Snapshot provider 2's exact share table before the "disk loss".
    let snapshot_req = dasp_server::proto::Request::Query {
        table: "employees".into(),
        predicate: vec![],
        agg: None,
    }
    .encode();
    let before =
        dasp_server::proto::Response::decode(&ds.cluster().call(2, snapshot_req.clone()).unwrap())
            .unwrap();

    // Wipe provider 2, then rebuild it from the other three.
    ds.cluster()
        .call(2, dasp_server::proto::Request::DropAllTables.encode())
        .unwrap();
    let rebuilt = ds.rebuild_provider(2).unwrap();
    assert_eq!(rebuilt, 5);

    let after =
        dasp_server::proto::Response::decode(&ds.cluster().call(2, snapshot_req).unwrap()).unwrap();
    let (dasp_server::proto::Response::Rows(mut b), dasp_server::proto::Response::Rows(mut a)) =
        (before, after)
    else {
        panic!()
    };
    b.sort_by_key(|r| r.id);
    a.sort_by_key(|r| r.id);
    assert_eq!(a, b, "rebuilt provider must hold bit-identical shares");

    // And the fleet behaves normally, including through provider 2.
    let rows = ds
        .select(
            "employees",
            &[Predicate::between("salary", 10_000u64, 40_000u64)],
        )
        .unwrap();
    assert_eq!(rows.len(), 3);
}

#[test]
fn rebuild_provider_works_while_another_is_down() {
    let mut ds = source(2, 4);
    setup_employees(&mut ds);
    // Provider 1 is down; provider 3 lost its disk. k=2 others survive.
    ds.cluster().set_failure(1, FailureMode::Crashed);
    ds.cluster()
        .call(3, dasp_server::proto::Request::DropAllTables.encode())
        .unwrap();
    let rebuilt = ds.rebuild_provider(3).unwrap();
    assert_eq!(rebuilt, 5);
    // Now crash another one: queries still answer via {0, 3}.
    ds.cluster().set_failure(2, FailureMode::Crashed);
    let rows = ds
        .select("employees", &[Predicate::eq("name", "JOHN")])
        .unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn rebuild_fails_without_quorum() {
    let mut ds = source(3, 4);
    setup_employees(&mut ds);
    ds.cluster().set_failure(0, FailureMode::Crashed);
    ds.cluster().set_failure(1, FailureMode::Crashed);
    // Only 2 healthy others < k=3.
    let err = ds.rebuild_provider(3).unwrap_err();
    assert!(matches!(err, ClientError::Reconstruction(_)));
}

#[test]
fn authenticated_range_happy_path() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    let n = ds.commit_table("employees", "salary").unwrap();
    assert_eq!(n, 3, "all providers committed");
    let rows = ds
        .verified_range("employees", "salary", 10_000, 40_000)
        .unwrap();
    let salaries: Vec<&Value> = rows.iter().map(|(_, v)| &v[1]).collect();
    assert_eq!(
        salaries,
        vec![
            &Value::Int(10_000),
            &Value::Int(20_000),
            &Value::Int(40_000)
        ]
    );
    // Empty and full ranges verify too.
    assert!(ds
        .verified_range("employees", "salary", 90_000, 95_000)
        .unwrap()
        .is_empty());
    assert_eq!(
        ds.verified_range("employees", "salary", 0, 1_000_000)
            .unwrap()
            .len(),
        5
    );
}

#[test]
fn authenticated_range_requires_commit_and_op_column() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    // No commitment yet.
    let err = ds
        .verified_range("employees", "salary", 0, 100)
        .unwrap_err();
    assert!(matches!(err, ClientError::Unsupported(_)));
    // Deterministic column refused.
    ds.commit_table("employees", "salary").unwrap();
    let err = ds.verified_range("employees", "name", 0, 100).unwrap_err();
    assert!(matches!(err, ClientError::Unsupported(_)));
}

#[test]
fn authenticated_range_detects_stale_commitment() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    ds.commit_table("employees", "salary").unwrap();
    // Mutate: providers drop their commitment, so verified reads must
    // fail (loudly) until the client re-commits.
    ds.insert(
        "employees",
        &[vec!["NEW".into(), Value::Int(33_333), Value::Int(9)]],
    )
    .unwrap();
    let err = ds
        .verified_range("employees", "salary", 0, 100_000)
        .unwrap_err();
    assert!(matches!(err, ClientError::Reconstruction(_)), "{err:?}");
    // Re-commit restores verified reads, now including the new row.
    ds.commit_table("employees", "salary").unwrap();
    let rows = ds
        .verified_range("employees", "salary", 33_000, 34_000)
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1[0], Value::from("NEW"));
}

#[test]
fn commit_refused_when_provider_data_corrupt() {
    let mut ds = source(2, 4);
    setup_employees(&mut ds);
    ds.cluster().set_failure(1, FailureMode::Byzantine(1.0));
    // Either the majority check names the provider, or its mangled frames
    // drop it below full participation — both must prevent a clean commit
    // from covering provider 1.
    match ds.commit_table("employees", "salary") {
        Err(_) => {}
        Ok(n) => assert!(n < 4, "corrupt provider must not be committed"),
    }
}

#[test]
fn dictionary_codec_handles_arbitrary_text_end_to_end() {
    // §V-B "compressed data": arbitrary-alphabet strings are interned
    // client-side; the providers only ever see shares of dense codes.
    use dasp_sss::DictionaryCodec;
    let mut ds = source(2, 3);
    ds.create_table(
        TableSchema::new(
            "notes",
            vec![ColumnSpec::numeric(
                "author",
                1 << 20,
                ShareMode::Deterministic,
            )],
        )
        .unwrap(),
    )
    .unwrap();
    let mut dict = DictionaryCodec::new();
    let authors = ["Dr. Müller", "山田 太郎", "O'Brien, Jr.", "Dr. Müller"];
    let rows: Vec<Vec<Value>> = authors
        .iter()
        .map(|a| vec![Value::Int(dict.intern(a))])
        .collect();
    ds.insert("notes", &rows).unwrap();
    // Query by arbitrary string: rewrite through the dictionary.
    let code = dict.lookup("Dr. Müller").unwrap();
    let hits = ds
        .select("notes", &[Predicate::eq("author", code)])
        .unwrap();
    assert_eq!(hits.len(), 2);
    for (_, v) in &hits {
        let Value::Int(c) = v[0] else { panic!() };
        assert_eq!(dict.resolve(c), Some("Dr. Müller"));
    }
    // Unknown strings short-circuit without touching a provider.
    assert_eq!(dict.lookup("not present"), None);
}

#[test]
fn top_k_deterministic_under_duplicate_order_keys() {
    let mut ds = source(2, 3);
    ds.create_table(
        TableSchema::new(
            "t",
            vec![ColumnSpec::numeric(
                "v",
                1 << 20,
                ShareMode::OrderPreserving,
            )],
        )
        .unwrap(),
    )
    .unwrap();
    // Many rows share the same order key: ties must break identically at
    // every provider (by row id) so zip-by-id never drops rows.
    let rows: Vec<Vec<Value>> = (0..30).map(|i| vec![Value::Int(i % 3)]).collect();
    ds.insert("t", &rows).unwrap();
    for _ in 0..5 {
        let top = ds.select_top("t", "v", true, 7, &[]).unwrap();
        assert_eq!(top.len(), 7);
        // Highest key is 2 (10 rows); the 7 returned are the lowest-id ones.
        for (_, v) in &top {
            assert_eq!(v[0], Value::Int(2));
        }
        // DESC reverses the (share, then id) ascending sort, so ties
        // break by descending row id — identically at every provider.
        let ids: Vec<u64> = top.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![30, 27, 24, 21, 18, 15, 12]);
    }
}

#[test]
fn group_by_stays_correct_across_updates_and_deletes() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    ds.update_where(
        "employees",
        &[Predicate::eq("name", "BOB")],
        &[("salary", Value::Int(5))],
    )
    .unwrap();
    ds.delete_where("employees", &[Predicate::eq("name", "MARY")])
        .unwrap();
    let groups = ds
        .group_by("employees", "name", Some("salary"), &[])
        .unwrap();
    assert_eq!(groups.len(), 3); // JOHN, ALICE, BOB
    let bob = groups
        .iter()
        .find(|g| g.group == Value::from("BOB"))
        .unwrap();
    assert_eq!(bob.sum, Some(Value::Int(5)));
    assert!(groups.iter().all(|g| g.group != Value::from("MARY")));
}

#[test]
fn increment_then_aggregate_consistency() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    // ssn is Random mode: increments then a client-side-summed aggregate
    // (residual predicate forces the fallback path) must agree.
    ds.increment_where("employees", &[Predicate::eq("name", "JOHN")], "ssn", 100)
        .unwrap();
    let sum = ds
        .sum("employees", "ssn", &[Predicate::eq("name", "JOHN")])
        .unwrap();
    // Originals 111 + 333, both +100.
    assert_eq!(sum.value, Some(Value::Int(111 + 333 + 200)));
    // Server-side SUM over the whole (random) column also reconstructs.
    let total = ds.sum("employees", "ssn", &[]).unwrap();
    assert_eq!(
        total.value,
        Some(Value::Int(111 + 222 + 333 + 444 + 555 + 200))
    );
}

#[test]
fn explain_reports_placement_without_executing() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    let before = ds.cluster().stats().snapshot();
    let plan = ds
        .explain(
            "employees",
            &[
                Predicate::eq("name", "JOHN"),
                Predicate::between("salary", 1u64, 2u64),
                Predicate::eq("ssn", 111u64),
            ],
        )
        .unwrap();
    // EXPLAIN must not talk to any provider.
    let delta = ds.cluster().stats().snapshot().since(&before);
    assert_eq!(delta.messages_sent, 0);
    assert_eq!(plan.conjuncts.len(), 3);
    assert_eq!(plan.conjuncts.iter().filter(|c| c.server_side).count(), 2);
    assert!(plan.strategy.contains("residual"));
}

#[test]
fn schema_errors_are_clean() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    assert!(ds.create_table(employees_schema()).is_err(), "duplicate");
    assert!(ds.select("nope", &[]).is_err());
    assert!(ds
        .select("employees", &[Predicate::eq("bogus", 1u64)])
        .is_err());
    assert!(
        ds.insert("employees", &[vec![Value::Int(1)]]).is_err(),
        "arity"
    );
    assert!(ds
        .insert(
            "employees",
            &[vec![
                Value::Int(1), // type mismatch: name is text
                Value::Int(1),
                Value::Int(1),
            ]]
        )
        .is_err());
}

#[test]
fn providers_never_see_plaintext() {
    // Structural leak test: scan every byte every provider received and
    // check the secret salary values never appear on the wire in the
    // clear. (Shares are huge i128s; a plaintext u64 salary would appear
    // as its little-endian encoding.)
    struct Recorder {
        inner: dasp_server::ProviderService,
        seen: std::sync::Arc<parking_lot::Mutex<Vec<u8>>>,
    }
    impl dasp_net::Service for Recorder {
        fn handle(&mut self, request: &[u8]) -> Vec<u8> {
            self.seen.lock().extend_from_slice(request);
            dasp_net::Service::handle(&mut self.inner, request)
        }
    }
    let seen: Vec<std::sync::Arc<parking_lot::Mutex<Vec<u8>>>> =
        (0..3).map(|_| Default::default()).collect();
    let services: Vec<Box<dyn dasp_net::Service>> = seen
        .iter()
        .map(|s| {
            Box::new(Recorder {
                inner: dasp_server::ProviderService::new(),
                seen: std::sync::Arc::clone(s),
            }) as Box<dyn dasp_net::Service>
        })
        .collect();
    let cluster = Cluster::spawn(services, Duration::from_millis(500));
    let mut rng = StdRng::seed_from_u64(99);
    let keys = ClientKeys::generate(2, 3, &mut rng).unwrap();
    let mut ds = DataSource::with_seed(keys, cluster, 3).unwrap();

    ds.create_table(
        TableSchema::new(
            "secrets",
            vec![ColumnSpec::numeric(
                "salary",
                1 << 32,
                ShareMode::OrderPreserving,
            )],
        )
        .unwrap(),
    )
    .unwrap();
    // A distinctive secret unlikely to occur in framing bytes.
    let secret: u64 = 0x1357_9BDF;
    ds.insert("secrets", &[vec![Value::Int(secret)]]).unwrap();
    ds.select(
        "secrets",
        &[Predicate::between("salary", secret - 5, secret + 5)],
    )
    .unwrap();

    let needle = secret.to_le_bytes();
    for (p, log) in seen.iter().enumerate() {
        let bytes = log.lock();
        let found = bytes.windows(8).any(|w| w == needle);
        assert!(!found, "provider {p} saw the plaintext secret on the wire");
    }
}

#[test]
fn query_many_matches_individual_selects() {
    let mut ds = source(2, 3);
    setup_employees(&mut ds);
    let batch: Vec<Vec<Predicate>> = vec![
        vec![Predicate::eq("name", "JOHN")],
        vec![Predicate::between("salary", 10_000u64, 40_000u64)],
        vec![Predicate::eq("ssn", 333u64)], // residual: filtered client-side
        vec![],                             // full scan
    ];
    let expected: Vec<_> = batch
        .iter()
        .map(|p| ds.select("employees", p).unwrap())
        .collect();
    // The batch must be position-matched and identical to per-query
    // selects at every fan-out width.
    for workers in [1usize, 4] {
        ds.set_workers(workers);
        let got = ds.query_many("employees", &batch).unwrap();
        assert_eq!(got, expected, "workers={workers}");
    }
    assert!(ds.query_many("employees", &[]).unwrap().is_empty());
}

#[test]
fn query_many_over_concurrent_provider_pool() {
    // End-to-end pipelining: a batched client drives providers that each
    // serve requests from a multi-worker pool. Responses may return out
    // of order (token-multiplexed); results must still match serial
    // selects exactly.
    let mut rng = StdRng::seed_from_u64(0xdab);
    let keys = ClientKeys::generate(2, 3, &mut rng).unwrap();
    let cluster = Cluster::spawn_concurrent(shared_provider_fleet(3), Duration::from_secs(2), 4);
    let mut ds = DataSource::with_seed(keys, cluster, 7).unwrap();
    setup_employees(&mut ds);
    let batch: Vec<Vec<Predicate>> = (0..8u64)
        .map(|i| {
            vec![Predicate::between(
                "salary",
                10_000 * (i % 4 + 1),
                80_000u64,
            )]
        })
        .collect();
    ds.set_workers(4);
    let got = ds.query_many("employees", &batch).unwrap();
    ds.set_workers(1);
    for (preds, rows) in batch.iter().zip(&got) {
        assert_eq!(rows, &ds.select("employees", preds).unwrap());
    }
}
