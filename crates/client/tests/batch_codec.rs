//! Batch-codec determinism and equivalence at the DataSource level: the
//! worker-thread fan-out must not change what providers store or what
//! queries return, for any worker count and any share mode.

use dasp_client::{
    ClientKeys, ColumnSpec, DataSource, Predicate, QueryOptions, TableSchema, Value,
};
use dasp_net::Cluster;
use dasp_server::service::provider_fleet;
use dasp_sss::ShareMode;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn source(k: usize, n: usize, seed: u64) -> DataSource {
    let mut rng = StdRng::seed_from_u64(0xdab);
    let keys = ClientKeys::generate(k, n, &mut rng).unwrap();
    let cluster = Cluster::spawn(provider_fleet(n), Duration::from_millis(500));
    DataSource::with_seed(keys, cluster, seed).unwrap()
}

fn mixed_schema() -> TableSchema {
    TableSchema::new(
        "mixed",
        vec![
            ColumnSpec::text("name", 8, ShareMode::Deterministic),
            ColumnSpec::numeric("salary", 1 << 20, ShareMode::OrderPreserving),
            ColumnSpec::numeric("ssn", 1 << 30, ShareMode::Random),
        ],
    )
    .unwrap()
}

fn mixed_rows(count: u64) -> Vec<Vec<Value>> {
    (0..count)
        .map(|i| {
            vec![
                Value::from(["ANA", "BOB", "CARA", "DAN"][(i % 4) as usize]),
                Value::Int((i * 37) % (1 << 20)),
                Value::Int(i * 1001),
            ]
        })
        .collect()
}

/// The stored shares and every query answer must be bit-identical for
/// workers = 1, 2, 4: rows keep their order and random-mode polynomials
/// come from per-row seeded RNG streams, not from the thread schedule.
#[test]
fn insert_and_select_identical_across_worker_counts() {
    let mut baseline = None;
    for workers in [1usize, 2, 4] {
        let mut ds = source(2, 4, 99);
        ds.set_workers(workers);
        ds.create_table(mixed_schema()).unwrap();
        ds.insert("mixed", &mixed_rows(120)).unwrap();
        let all = ds.select("mixed", &[]).unwrap();
        assert_eq!(all.len(), 120, "workers={workers}");
        let ranged = ds
            .select("mixed", &[Predicate::between("salary", 100u64, 2_000u64)])
            .unwrap();
        let named = ds
            .select("mixed", &[Predicate::eq("name", "CARA")])
            .unwrap();
        match &baseline {
            None => baseline = Some((all, ranged, named)),
            Some((a, r, n)) => {
                assert_eq!(&all, a, "full scan differs at workers={workers}");
                assert_eq!(&ranged, r, "range query differs at workers={workers}");
                assert_eq!(&named, n, "equality query differs at workers={workers}");
            }
        }
    }
}

/// The batched fast path must agree with the scalar majority-verify path
/// on an honest cluster (both reconstruct the same values).
#[test]
fn batched_decode_agrees_with_verified_decode() {
    let mut ds = source(2, 4, 7);
    ds.set_workers(4);
    ds.create_table(mixed_schema()).unwrap();
    ds.insert("mixed", &mixed_rows(64)).unwrap();
    let fast = ds.select("mixed", &[]).unwrap();
    let verified = ds
        .select_opts("mixed", &[], QueryOptions { verify: true })
        .unwrap();
    assert_eq!(fast, verified);
    assert!(ds.last_faulty.is_empty());
}

/// Updates re-share through the same batch encoder; a parallel source
/// must converge to the same state as a serial one.
#[test]
fn updates_and_aggregates_survive_worker_fanout() {
    let mut serial = source(2, 3, 1234);
    let mut parallel = source(2, 3, 1234);
    parallel.set_workers(4);
    for ds in [&mut serial, &mut parallel] {
        ds.create_table(mixed_schema()).unwrap();
        ds.insert("mixed", &mixed_rows(50)).unwrap();
        let n = ds
            .update_where(
                "mixed",
                &[Predicate::eq("name", "BOB")],
                &[("salary", Value::Int(123_456))],
            )
            .unwrap();
        assert_eq!(n, 13);
    }
    let q = [Predicate::eq("name", "BOB")];
    assert_eq!(
        serial.select("mixed", &q).unwrap(),
        parallel.select("mixed", &q).unwrap()
    );
    assert_eq!(
        serial.sum("mixed", "salary", &[]).unwrap(),
        parallel.sum("mixed", "salary", &[]).unwrap()
    );
    assert_eq!(
        serial.median("mixed", "salary", &[]).unwrap(),
        parallel.median("mixed", "salary", &[]).unwrap()
    );
}

/// Single-row statements and empty batches go through the same code path
/// without tripping the fan-out.
#[test]
fn tiny_batches_roundtrip() {
    let mut ds = source(3, 5, 5);
    ds.set_workers(8); // more workers than rows
    ds.create_table(mixed_schema()).unwrap();
    let ids = ds.insert("mixed", &mixed_rows(1)).unwrap();
    assert_eq!(ids.len(), 1);
    let empty: Vec<Vec<Value>> = Vec::new();
    assert!(ds.insert("mixed", &empty).unwrap().is_empty());
    let rows = ds.select("mixed", &[]).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1[1], Value::Int(0));
}
