//! From-scratch cryptographic substrate for `dasp`.
//!
//! The paper positions secret sharing *against* encryption-based
//! outsourcing, so a faithful reproduction needs the encryption side too.
//! The offline crate set has no crypto, so everything here is implemented
//! from the primary specifications:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256 and RFC 2104 HMAC.
//! * [`siphash`] — SipHash-2-4 keyed PRF (used for order-preserving slot
//!   selection in `dasp-sss` and for cheap fingerprints).
//! * [`aes`] — FIPS 197 AES-128 with ECB (deterministic encryption
//!   baseline) and CTR modes.
//! * [`ope`] — deterministic order-preserving encryption via recursive
//!   keyed interval splitting (a practical stand-in for Boldyreva et al.,
//!   the scheme the paper's reference \[3\] inspired).
//! * [`paillier`] — additively homomorphic encryption (the Ge–Zdonik
//!   secure-aggregation baseline, paper reference \[23\]).
//! * [`commutative`] — Pohlig–Hellman exponentiation cipher (the
//!   Agrawal–Evfimievski–Srikant intersection protocol, reference \[26\]).
//! * [`merkle`] — Merkle hash trees for the trust mechanisms in
//!   `dasp-verify`.
//!
//! **These are benchmarking-grade reference implementations.** They are
//! functionally correct (test vectors included) but make no constant-time
//! or side-channel claims; do not deploy them against real adversaries.

pub mod aes;
pub mod commutative;
pub mod merkle;
pub mod ope;
pub mod paillier;
pub mod sha256;
pub mod siphash;

pub use aes::{Aes128, CtrMode};
pub use commutative::CommutativeCipher;
pub use merkle::{MerkleProof, MerkleTree};
pub use ope::OpeCipher;
pub use paillier::{PaillierCiphertext, PaillierKeypair, PaillierPublicKey};
pub use sha256::{hmac_sha256, sha256, Sha256};
pub use siphash::SipHash24;
