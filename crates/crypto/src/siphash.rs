//! SipHash-2-4 (Aumasson & Bernstein) — a fast 128-bit-keyed 64-bit PRF.
//!
//! `dasp-sss` uses it as the keyed hash `h_a`, `h_b`, `h_c` that maps a
//! secret value into its coefficient slot for order-preserving polynomial
//! construction (paper §IV): cheap, deterministic, and keyed so providers
//! cannot recompute it.

/// A SipHash-2-4 instance with a fixed 128-bit key.
#[derive(Clone, Copy, Debug)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
}

impl SipHash24 {
    /// Create from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        SipHash24 {
            k0: u64::from_le_bytes(key[0..8].try_into().expect("8 bytes")),
            k1: u64::from_le_bytes(key[8..16].try_into().expect("8 bytes")),
        }
    }

    /// Create from two 64-bit key words.
    pub fn from_words(k0: u64, k1: u64) -> Self {
        SipHash24 { k0, k1 }
    }

    /// Hash a byte string to 64 bits.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut v0 = self.k0 ^ 0x736f6d6570736575;
        let mut v1 = self.k1 ^ 0x646f72616e646f6d;
        let mut v2 = self.k0 ^ 0x6c7967656e657261;
        let mut v3 = self.k1 ^ 0x7465646279746573;

        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            v3 ^= m;
            for _ in 0..2 {
                sipround(&mut v0, &mut v1, &mut v2, &mut v3);
            }
            v0 ^= m;
        }

        // Final block: remaining bytes plus the length in the top byte.
        let rem = chunks.remainder();
        let mut last = (data.len() as u64 & 0xff) << 56;
        for (i, &b) in rem.iter().enumerate() {
            last |= (b as u64) << (8 * i);
        }
        v3 ^= last;
        for _ in 0..2 {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^= last;

        v2 ^= 0xff;
        for _ in 0..4 {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^ v1 ^ v2 ^ v3
    }

    /// Hash a `u64` (little-endian encoding).
    pub fn hash_u64(&self, v: u64) -> u64 {
        self.hash(&v.to_le_bytes())
    }

    /// Hash a `u128` (little-endian encoding).
    pub fn hash_u128(&self, v: u128) -> u64 {
        self.hash(&v.to_le_bytes())
    }
}

#[inline]
fn sipround(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the SipHash paper's appendix: key
    /// 000102…0f, messages 00, 0001, 000102, … of increasing length.
    #[test]
    fn reference_vectors() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let sip = SipHash24::new(&key);
        let expected: [u64; 8] = [
            0x726fdb47dd0e0e31, // len 0
            0x74f839c593dc67fd, // len 1
            0x0d6c8009d9a94f5a, // len 2
            0x85676696d7fb7e2d,
            0xcf2794e0277187b7,
            0x18765564cd99a68d,
            0xcbc9466e58fee3ce,
            0xab0200f58b01d137,
        ];
        let msg: Vec<u8> = (0..8u8).collect();
        for (len, &want) in expected.iter().enumerate() {
            assert_eq!(sip.hash(&msg[..len]), want, "len={len}");
        }
    }

    #[test]
    fn longer_than_eight_bytes() {
        // len 15 crosses a block boundary; vector from the same table.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let sip = SipHash24::new(&key);
        let msg: Vec<u8> = (0..15u8).collect();
        assert_eq!(sip.hash(&msg), 0xa129ca6149be45e5);
    }

    #[test]
    fn keyed_hashes_differ() {
        let a = SipHash24::from_words(1, 2);
        let b = SipHash24::from_words(1, 3);
        assert_ne!(a.hash_u64(42), b.hash_u64(42));
    }

    #[test]
    fn deterministic() {
        let sip = SipHash24::from_words(0xdead, 0xbeef);
        assert_eq!(sip.hash_u64(7), sip.hash_u64(7));
        assert_eq!(sip.hash_u128(7), sip.hash_u128(7));
        assert_ne!(sip.hash_u64(7), sip.hash_u64(8));
    }
}
