//! Deterministic order-preserving encryption (OPE).
//!
//! The encryption-model baseline for range queries (paper reference \[3\],
//! Agrawal et al. SIGMOD'04). This implementation uses recursive keyed
//! interval splitting: the domain is halved at fixed midpoints while the
//! ciphertext range is split at a keyed-PRF-chosen point that always
//! leaves each side enough room. The result is a strictly increasing,
//! deterministic mapping from `u64` plaintexts into a `u128` range.
//!
//! Like all OPE, ciphertexts leak order (and approximate magnitude) — the
//! very weakness the paper's §IV discussion echoes ("order preservation
//! may weaken data security"). That leakage is part of experiment E5.

use crate::siphash::SipHash24;

/// Extra low-order bits of ciphertext space per plaintext, which is what
/// hides exact plaintext distances.
const EXPANSION_BITS: u32 = 32;

/// A keyed order-preserving cipher over the domain `[0, domain_size)`.
#[derive(Clone, Debug)]
pub struct OpeCipher {
    prf: SipHash24,
    domain_size: u64,
    range_size: u128,
}

impl OpeCipher {
    /// Create a cipher for plaintexts in `[0, domain_size)`.
    ///
    /// # Panics
    ///
    /// Panics if `domain_size` is zero.
    pub fn new(key: &[u8; 16], domain_size: u64) -> Self {
        assert!(domain_size > 0, "OPE domain must be non-empty");
        OpeCipher {
            prf: SipHash24::new(key),
            domain_size,
            range_size: (domain_size as u128) << EXPANSION_BITS,
        }
    }

    /// The exclusive upper bound of the ciphertext range.
    pub fn range_size(&self) -> u128 {
        self.range_size
    }

    /// Encrypt `v`. Strictly monotone: `a < b ⇒ encrypt(a) < encrypt(b)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the domain.
    pub fn encrypt(&self, v: u64) -> u128 {
        assert!(v < self.domain_size, "plaintext {v} outside OPE domain");
        let (mut dlo, mut dn) = (0u64, self.domain_size);
        let (mut rlo, mut rn) = (0u128, self.range_size);
        while dn > 1 {
            let left_n = dn / 2;
            let right_n = dn - left_n;
            // Range split leaving ≥ left_n on the left, ≥ right_n on the right.
            let min_left = left_n as u128;
            let max_left = rn - right_n as u128;
            let span = max_left - min_left + 1;
            let tag = self
                .prf
                .hash_u128(((dlo as u128) << 64) | (dn as u128) ^ (rlo << 1));
            let split = min_left + (tag as u128) % span;
            if v < dlo + left_n {
                dn = left_n;
                rn = split;
            } else {
                dlo += left_n;
                dn = right_n;
                rlo += split;
                rn -= split;
            }
        }
        // Single plaintext left: pick a deterministic point in its interval.
        let tag = self.prf.hash_u128(0xa5a5_0000_0000_0000_0000 ^ dlo as u128);
        rlo + (tag as u128) % rn
    }

    /// Decrypt by binary search over the (monotone, deterministic) map.
    ///
    /// Returns `None` if `c` is not a valid ciphertext of any plaintext.
    pub fn decrypt(&self, c: u128) -> Option<u64> {
        let (mut lo, mut hi) = (0u64, self.domain_size - 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.encrypt(mid) < c {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if self.encrypt(lo) == c {
            Some(lo)
        } else {
            None
        }
    }

    /// Smallest ciphertext ≥ every ciphertext of plaintexts < `v`; used to
    /// translate plaintext range bounds into ciphertext range bounds.
    pub fn encrypt_lower_bound(&self, v: u64) -> u128 {
        if v == 0 {
            0
        } else if v >= self.domain_size {
            self.range_size
        } else {
            self.encrypt(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cipher() -> OpeCipher {
        OpeCipher::new(b"0123456789abcdef", 100_000)
    }

    #[test]
    fn strictly_monotone_dense_prefix() {
        let c = cipher();
        let mut prev = None;
        for v in 0..2000u64 {
            let e = c.encrypt(v);
            if let Some(p) = prev {
                assert!(e > p, "v={v}");
            }
            prev = Some(e);
        }
    }

    #[test]
    fn deterministic() {
        let c = cipher();
        assert_eq!(c.encrypt(12345), c.encrypt(12345));
    }

    #[test]
    fn different_keys_differ() {
        let a = OpeCipher::new(b"0123456789abcdef", 1000);
        let b = OpeCipher::new(b"fedcba9876543210", 1000);
        let diffs = (0..100).filter(|&v| a.encrypt(v) != b.encrypt(v)).count();
        assert!(diffs > 90, "keys should give different mappings");
    }

    #[test]
    fn decrypt_roundtrip() {
        let c = cipher();
        for v in [0u64, 1, 17, 999, 54321, 99_999] {
            assert_eq!(c.decrypt(c.encrypt(v)), Some(v));
        }
    }

    #[test]
    fn decrypt_rejects_non_ciphertexts() {
        let c = OpeCipher::new(b"0123456789abcdef", 10);
        let e5 = c.encrypt(5);
        let e6 = c.encrypt(6);
        // Gap between consecutive ciphertexts is huge; a midpoint is invalid.
        let mid = (e5 + e6) / 2;
        if mid != e5 && mid != e6 {
            assert_eq!(c.decrypt(mid), None);
        }
    }

    #[test]
    fn domain_boundaries() {
        let c = OpeCipher::new(b"0123456789abcdef", 2);
        let e0 = c.encrypt(0);
        let e1 = c.encrypt(1);
        assert!(e0 < e1);
        assert!(e1 < c.range_size());
        assert_eq!(c.encrypt_lower_bound(0), 0);
        assert_eq!(c.encrypt_lower_bound(2), c.range_size());
    }

    #[test]
    #[should_panic(expected = "outside OPE domain")]
    fn out_of_domain_panics() {
        cipher().encrypt(100_000);
    }

    proptest! {
        #[test]
        fn prop_order_preserved(a in 0u64..100_000, b in 0u64..100_000) {
            let c = cipher();
            prop_assert_eq!(a.cmp(&b), c.encrypt(a).cmp(&c.encrypt(b)));
        }

        #[test]
        fn prop_roundtrip(v in 0u64..100_000) {
            let c = cipher();
            prop_assert_eq!(c.decrypt(c.encrypt(v)), Some(v));
        }
    }
}
