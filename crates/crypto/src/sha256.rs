//! SHA-256 (FIPS 180-4) and HMAC-SHA-256 (RFC 2104).

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        // Fill a partial buffer first.
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            let (head, rest) = data.split_at(take);
            for (slot, byte) in self.buffer.iter_mut().skip(self.buffer_len).zip(head) {
                *slot = *byte;
            }
            self.buffer_len += take;
            data = rest;
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            for (slot, byte) in self.buffer.iter_mut().zip(data) {
                *slot = *byte;
            }
            self.buffer_len = data.len();
        }
    }

    /// Finish and produce the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        // Manual length append (update would recount it).
        for (slot, byte) in self.buffer.iter_mut().skip(56).zip(bit_len.to_be_bytes()) {
            *slot = byte;
        }
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        // Message schedule as a 16-word rolling window: round i consumes
        // the window head w0 and appends
        // w[i+16] = w[i] + σ0(w[i+1]) + w[i+9] + σ1(w[i+14]),
        // which is FIPS 180-4 §6.2.2 re-indexed so no w[i-k] lookups
        // (and no panic-capable indexing) are needed.
        let mut win = [0u32; 16];
        for (slot, chunk) in win.iter_mut().zip(block.chunks_exact(4)) {
            if let [b0, b1, b2, b3] = *chunk {
                *slot = u32::from_be_bytes([b0, b1, b2, b3]);
            }
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for &k in K.iter() {
            let [w0, w1, w2, w3, w4, w5, w6, w7, w8, w9, w10, w11, w12, w13, w14, w15] = win;
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k)
                .wrapping_add(w0);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
            // Slide the schedule window one word (the words produced in
            // the last 16 rounds are computed but never consumed).
            let lo = w1.rotate_right(7) ^ w1.rotate_right(18) ^ (w1 >> 3);
            let hi = w14.rotate_right(17) ^ w14.rotate_right(19) ^ (w14 >> 10);
            let next = w0.wrapping_add(lo).wrapping_add(w9).wrapping_add(hi);
            win = [
                w1, w2, w3, w4, w5, w6, w7, w8, w9, w10, w11, w12, w13, w14, w15, next,
            ];
        }
        let [h0, h1, h2, h3, h4, h5, h6, h7] = self.state;
        self.state = [
            h0.wrapping_add(a),
            h1.wrapping_add(b),
            h2.wrapping_add(c),
            h3.wrapping_add(d),
            h4.wrapping_add(e),
            h5.wrapping_add(f),
            h6.wrapping_add(g),
            h7.wrapping_add(h),
        ];
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA-256 (RFC 2104).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

fn hex(d: &[u8]) -> String {
    d.iter().map(|b| format!("{b:02x}")).collect()
}

/// Render a digest as lowercase hex (test/display helper).
pub fn digest_hex(d: &[u8; 32]) -> String {
    hex(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            digest_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            digest_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            digest_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            digest_hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split={split}");
        }
    }

    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0bu8; 20];
        let got = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&got),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        let got = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&got),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_hashed() {
        // RFC 4231 case 6: 131-byte key forces the key-hash path.
        let key = [0xaau8; 131];
        let got = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&got),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }
}
