//! Paillier additively homomorphic encryption.
//!
//! The paper's reference \[23\] (Ge & Zdonik, VLDB'07) outsources aggregates
//! under an additively homomorphic scheme; `dasp-baseline` uses this
//! implementation for the encryption-model aggregation comparator in E6.
//!
//! Standard scheme with g = n + 1: Enc(m, r) = (1 + m·n) · rⁿ mod n²,
//! Dec(c) = L(c^λ mod n²) · λ⁻¹ mod n where L(x) = (x − 1)/n.

use dasp_bigint::{gcd, lcm, mod_inv, mod_mul, mod_pow, BigUint};
use rand::Rng;

/// Public encryption key (n, n²).
#[derive(Clone, Debug)]
pub struct PaillierPublicKey {
    n: BigUint,
    n_squared: BigUint,
}

/// Full keypair with the private λ and μ = λ⁻¹ mod n.
#[derive(Clone, Debug)]
pub struct PaillierKeypair {
    public: PaillierPublicKey,
    lambda: BigUint,
    mu: BigUint,
}

/// A Paillier ciphertext (element of Z*_{n²}).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PaillierCiphertext(pub BigUint);

impl PaillierPublicKey {
    /// The modulus n.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Encrypt `m` (must be < n) with fresh randomness from `rng`.
    pub fn encrypt<R: Rng + ?Sized>(&self, m: &BigUint, rng: &mut R) -> PaillierCiphertext {
        assert!(m < &self.n, "plaintext must be < n");
        // r uniform in [1, n) with gcd(r, n) = 1 (overwhelmingly likely).
        let r = loop {
            let r = BigUint::random_below(&self.n, rng);
            if !r.is_zero() && gcd(&r, &self.n).is_one() {
                break r;
            }
        };
        // (1 + m·n) mod n²
        let g_m = BigUint::one().add(&m.mul(&self.n)).rem(&self.n_squared);
        let r_n = mod_pow(&r, &self.n, &self.n_squared);
        PaillierCiphertext(mod_mul(&g_m, &r_n, &self.n_squared))
    }

    /// Encrypt a `u64` convenience wrapper.
    pub fn encrypt_u64<R: Rng + ?Sized>(&self, m: u64, rng: &mut R) -> PaillierCiphertext {
        self.encrypt(&BigUint::from_u64(m), rng)
    }

    /// Homomorphic addition: Dec(a ⊞ b) = Dec(a) + Dec(b) mod n.
    pub fn add(&self, a: &PaillierCiphertext, b: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext(mod_mul(&a.0, &b.0, &self.n_squared))
    }

    /// Homomorphic scalar multiplication: Dec(a ⊠ k) = k·Dec(a) mod n.
    pub fn mul_scalar(&self, a: &PaillierCiphertext, k: &BigUint) -> PaillierCiphertext {
        PaillierCiphertext(mod_pow(&a.0, k, &self.n_squared))
    }

    /// The ciphertext of zero with trivial randomness (identity for ⊞).
    pub fn one_ciphertext(&self) -> PaillierCiphertext {
        PaillierCiphertext(BigUint::one())
    }

    /// Ciphertext size in bytes (for communication accounting).
    pub fn ciphertext_bytes(&self) -> usize {
        self.n_squared.bits().div_ceil(8)
    }
}

impl PaillierKeypair {
    /// Generate a keypair with an `n` of roughly `bits` bits.
    ///
    /// Benchmark configurations use 512–1024-bit n; key generation cost is
    /// excluded from query-time measurements.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 16, "modulus too small");
        loop {
            let p = dasp_bigint::gen_prime(bits / 2, rng);
            let q = dasp_bigint::gen_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let p1 = p.checked_sub(&BigUint::one()).expect("p > 1");
            let q1 = q.checked_sub(&BigUint::one()).expect("q > 1");
            let lambda = lcm(&p1, &q1);
            // μ = λ⁻¹ mod n exists iff gcd(λ, n) = 1.
            let Some(mu) = mod_inv(&lambda, &n) else {
                continue;
            };
            let n_squared = n.mul(&n);
            return PaillierKeypair {
                public: PaillierPublicKey { n, n_squared },
                lambda,
                mu,
            };
        }
    }

    /// The public half.
    pub fn public(&self) -> &PaillierPublicKey {
        &self.public
    }

    /// Decrypt a ciphertext to its plaintext in `[0, n)`.
    pub fn decrypt(&self, c: &PaillierCiphertext) -> BigUint {
        let pk = &self.public;
        let x = mod_pow(&c.0, &self.lambda, &pk.n_squared);
        // L(x) = (x - 1) / n
        let l = x
            .checked_sub(&BigUint::one())
            .expect("x >= 1 in Z*_{n^2}")
            .div_rem(&pk.n)
            .0;
        mod_mul(&l, &self.mu, &pk.n)
    }

    /// Decrypt to `u64` (panics if the plaintext exceeds 64 bits).
    pub fn decrypt_u64(&self, c: &PaillierCiphertext) -> u64 {
        let m = self.decrypt(c);
        assert!(m.bits() <= 64, "plaintext exceeds u64");
        m.low_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> (PaillierKeypair, StdRng) {
        let mut rng = StdRng::seed_from_u64(99);
        let kp = PaillierKeypair::generate(128, &mut rng);
        (kp, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (kp, mut rng) = keypair();
        for m in [0u64, 1, 42, 1_000_000, u32::MAX as u64] {
            let c = kp.public().encrypt_u64(m, &mut rng);
            assert_eq!(kp.decrypt_u64(&c), m);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let (kp, mut rng) = keypair();
        let a = kp.public().encrypt_u64(7, &mut rng);
        let b = kp.public().encrypt_u64(7, &mut rng);
        assert_ne!(a, b, "same plaintext must yield different ciphertexts");
        assert_eq!(kp.decrypt_u64(&a), kp.decrypt_u64(&b));
    }

    #[test]
    fn homomorphic_addition() {
        let (kp, mut rng) = keypair();
        let a = kp.public().encrypt_u64(100, &mut rng);
        let b = kp.public().encrypt_u64(230, &mut rng);
        let sum = kp.public().add(&a, &b);
        assert_eq!(kp.decrypt_u64(&sum), 330);
    }

    #[test]
    fn homomorphic_sum_of_many() {
        let (kp, mut rng) = keypair();
        let values = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let mut acc = kp.public().one_ciphertext();
        for &v in &values {
            let c = kp.public().encrypt_u64(v, &mut rng);
            acc = kp.public().add(&acc, &c);
        }
        assert_eq!(kp.decrypt_u64(&acc), values.iter().sum::<u64>());
    }

    #[test]
    fn homomorphic_scalar_multiplication() {
        let (kp, mut rng) = keypair();
        let c = kp.public().encrypt_u64(12, &mut rng);
        let scaled = kp.public().mul_scalar(&c, &BigUint::from_u64(5));
        assert_eq!(kp.decrypt_u64(&scaled), 60);
    }

    #[test]
    fn ciphertext_bytes_reasonable() {
        let (kp, _) = keypair();
        // n ~128 bits ⇒ n² ~256 bits ⇒ 32-ish bytes.
        let b = kp.public().ciphertext_bytes();
        assert!((28..=36).contains(&b), "got {b}");
    }
}
