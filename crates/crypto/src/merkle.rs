//! Merkle hash trees with membership proofs.
//!
//! The trust mechanisms in `dasp-verify` (query-result completeness and
//! correctness, paper §I issue 3 and references \[17\]–\[21\]) are built on
//! these trees: each provider commits to its share table, the client keeps
//! only the root, and results carry membership proofs.
//!
//! Leaf and interior hashes are domain-separated (`0x00` / `0x01`
//! prefixes) to prevent second-preimage splicing attacks.

use crate::sha256::Sha256;

/// A 32-byte node hash.
pub type Digest = [u8; 32];

fn leaf_hash(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// A Merkle tree over an ordered sequence of leaves.
///
/// Odd nodes are promoted (not duplicated), so the tree over `n` leaves
/// has height ⌈log₂ n⌉ and a proof has at most that many siblings.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels\[0\] = leaf hashes, levels.last() = [root].
    levels: Vec<Vec<Digest>>,
}

/// A membership proof: the leaf index plus sibling hashes bottom-up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling digests from leaf level to just below the root. `None`
    /// marks levels where the node was promoted without a sibling.
    pub siblings: Vec<Option<Digest>>,
}

impl MerkleTree {
    /// Build a tree over `leaves` (each leaf is arbitrary bytes).
    ///
    /// # Panics
    ///
    /// Panics on an empty leaf set — an empty commitment is meaningless
    /// for result verification; commit to a sentinel row instead.
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let mut levels = Vec::new();
        let mut current: Vec<Digest> = leaves.iter().map(|l| leaf_hash(l.as_ref())).collect();
        levels.push(current.clone());
        while current.len() > 1 {
            let mut next = Vec::with_capacity(current.len().div_ceil(2));
            for pair in current.chunks(2) {
                if pair.len() == 2 {
                    next.push(node_hash(&pair[0], &pair[1]));
                } else {
                    next.push(pair[0]); // promote odd node
                }
            }
            levels.push(next.clone());
            current = next;
        }
        MerkleTree { levels }
    }

    /// The root commitment.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True iff the tree has exactly one leaf.
    pub fn is_empty(&self) -> bool {
        false // construction forbids empty trees
    }

    /// Produce a membership proof for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(index < self.len(), "leaf index out of bounds");
        let mut siblings = Vec::with_capacity(self.levels.len() - 1);
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            siblings.push(level.get(sibling_idx).copied());
            idx /= 2;
        }
        MerkleProof { index, siblings }
    }

    /// Verify that `leaf_data` is the leaf at `proof.index` under `root`.
    pub fn verify(root: &Digest, leaf_data: &[u8], proof: &MerkleProof) -> bool {
        let mut hash = leaf_hash(leaf_data);
        let mut idx = proof.index;
        for sibling in &proof.siblings {
            match sibling {
                Some(s) => {
                    hash = if idx.is_multiple_of(2) {
                        node_hash(&hash, s)
                    } else {
                        node_hash(s, &hash)
                    };
                }
                None => { /* promoted node: hash unchanged */ }
            }
            idx /= 2;
        }
        &hash == root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_rejected() {
        let empty: Vec<Vec<u8>> = Vec::new();
        MerkleTree::build(&empty);
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::build(&[b"only".to_vec()]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        let proof = tree.prove(0);
        assert!(MerkleTree::verify(&tree.root(), b"only", &proof));
    }

    #[test]
    fn all_leaves_provable_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            let data = leaves(n);
            let tree = MerkleTree::build(&data);
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i);
                assert!(
                    MerkleTree::verify(&tree.root(), leaf, &proof),
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let data = leaves(8);
        let tree = MerkleTree::build(&data);
        let proof = tree.prove(3);
        assert!(!MerkleTree::verify(&tree.root(), b"leaf-4", &proof));
        assert!(!MerkleTree::verify(&tree.root(), b"tampered", &proof));
    }

    #[test]
    fn wrong_index_fails() {
        let data = leaves(8);
        let tree = MerkleTree::build(&data);
        let mut proof = tree.prove(3);
        proof.index = 4;
        assert!(!MerkleTree::verify(&tree.root(), b"leaf-3", &proof));
    }

    #[test]
    fn tampered_sibling_fails() {
        let data = leaves(8);
        let tree = MerkleTree::build(&data);
        let mut proof = tree.prove(0);
        if let Some(Some(s)) = proof.siblings.first_mut().map(|s| s.as_mut()) {
            s[0] ^= 1;
        }
        assert!(!MerkleTree::verify(&tree.root(), b"leaf-0", &proof));
    }

    #[test]
    fn roots_differ_on_content_change() {
        let a = MerkleTree::build(&leaves(10));
        let mut changed = leaves(10);
        changed[5] = b"leaf-5-modified".to_vec();
        let b = MerkleTree::build(&changed);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn domain_separation_prevents_splicing() {
        // A two-leaf tree's root must differ from a single leaf whose data
        // is the concatenation of the two child hashes.
        let tree = MerkleTree::build(&[b"a".to_vec(), b"b".to_vec()]);
        let mut concat = Vec::new();
        concat.extend_from_slice(&leaf_hash(b"a"));
        concat.extend_from_slice(&leaf_hash(b"b"));
        let fake = MerkleTree::build(&[concat]);
        assert_ne!(tree.root(), fake.root());
    }

    proptest! {
        #[test]
        fn prop_every_leaf_verifies(n in 1usize..64, probe in 0usize..64) {
            let data = leaves(n);
            let tree = MerkleTree::build(&data);
            let i = probe % n;
            let proof = tree.prove(i);
            prop_assert!(MerkleTree::verify(&tree.root(), &data[i], &proof));
        }
    }
}
