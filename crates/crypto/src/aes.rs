//! AES-128 (FIPS 197) with ECB-style single-block access and CTR mode.
//!
//! The encryption-model DBSP baseline (`dasp-baseline`) uses:
//! * single-block deterministic encryption (ECB over fixed-width encoded
//!   values) for exact-match indexes — the Hacigümüş et al. model, and
//! * CTR for bulk tuple payloads.
//!
//! Table-based implementation; no constant-time claims.

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box.
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// S-box lookup. A `u8` index can never reach past a 256-entry table,
/// so the `unwrap_or` arm is unreachable; `get` keeps the whole cipher
/// free of panic-capable indexing (P3).
#[inline]
fn sbox_at(b: u8) -> u8 {
    SBOX.get(usize::from(b)).copied().unwrap_or(0)
}

/// Inverse S-box lookup (same bounds argument as [`sbox_at`]).
#[inline]
fn inv_sbox_at(b: u8) -> u8 {
    INV_SBOX.get(usize::from(b)).copied().unwrap_or(0)
}

/// An AES-128 key schedule (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

#[inline]
fn gmul(a: u8, b: u8) -> u8 {
    let mut a = a;
    let mut b = b;
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 == 1 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

impl Aes128 {
    /// Expand a 16-byte key. Round key *r+1* depends only on round key
    /// *r*, so the schedule is derived key-by-key with destructuring —
    /// no 44-word scratch array, no panic-capable indexing.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut round_keys = [[0u8; 16]; 11];
        let mut prev = *key;
        let mut rcon = RCON.iter();
        for rk in round_keys.iter_mut() {
            *rk = prev;
            if let Some(&r) = rcon.next() {
                prev = expand_round(&prev, r);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let Some((first, rest)) = self.round_keys.split_first() else {
            return;
        };
        let Some((last, middle)) = rest.split_last() else {
            return;
        };
        add_round_key(block, first);
        for rk in middle {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, rk);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, last);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        let Some((first, rest)) = self.round_keys.split_first() else {
            return;
        };
        let Some((last, middle)) = rest.split_last() else {
            return;
        };
        add_round_key(block, last);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for rk in middle.iter().rev() {
            add_round_key(block, rk);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, first);
    }

    /// Deterministically encrypt a `u128` value (one block). Used by the
    /// det-enc exact-match baseline: equality of plaintexts ⇒ equality of
    /// ciphertexts, so the provider can filter without learning values.
    pub fn encrypt_u128(&self, v: u128) -> u128 {
        let mut b = v.to_be_bytes();
        self.encrypt_block(&mut b);
        u128::from_be_bytes(b)
    }

    /// Inverse of [`Aes128::encrypt_u128`].
    pub fn decrypt_u128(&self, c: u128) -> u128 {
        let mut b = c.to_be_bytes();
        self.decrypt_block(&mut b);
        u128::from_be_bytes(b)
    }
}

/// One AES-128 key-schedule step: derive round key *r+1* from round key
/// *r* (FIPS 197 §5.2, specialised to Nk=4 so every word it needs lives
/// in `prev`).
fn expand_round(prev: &[u8; 16], rcon: u8) -> [u8; 16] {
    let [p0, p1, p2, p3, p4, p5, p6, p7, p8, p9, p10, p11, p12, p13, p14, p15] = *prev;
    // temp = SubWord(RotWord(w3)) ^ [rcon, 0, 0, 0]
    let (t0, t1, t2, t3) = (
        sbox_at(p13) ^ rcon,
        sbox_at(p14),
        sbox_at(p15),
        sbox_at(p12),
    );
    let (a0, a1, a2, a3) = (p0 ^ t0, p1 ^ t1, p2 ^ t2, p3 ^ t3);
    let (b0, b1, b2, b3) = (p4 ^ a0, p5 ^ a1, p6 ^ a2, p7 ^ a3);
    let (c0, c1, c2, c3) = (p8 ^ b0, p9 ^ b1, p10 ^ b2, p11 ^ b3);
    let (d0, d1, d2, d3) = (p12 ^ c0, p13 ^ c1, p14 ^ c2, p15 ^ c3);
    [
        a0, a1, a2, a3, b0, b1, b2, b3, c0, c1, c2, c3, d0, d1, d2, d3,
    ]
}

fn add_round_key(state: &mut [u8; 16], key: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(key) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = sbox_at(*b);
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = inv_sbox_at(*b);
    }
}

// State layout: state[4*c + r] = byte at row r, column c (FIPS column-major).
// Row r rotates left by r columns; written as one explicit permutation so
// the transform stays index-free.
fn shift_rows(state: &mut [u8; 16]) {
    let [s0, s1, s2, s3, s4, s5, s6, s7, s8, s9, s10, s11, s12, s13, s14, s15] = *state;
    *state = [
        s0, s5, s10, s15, s4, s9, s14, s3, s8, s13, s2, s7, s12, s1, s6, s11,
    ];
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let [s0, s1, s2, s3, s4, s5, s6, s7, s8, s9, s10, s11, s12, s13, s14, s15] = *state;
    *state = [
        s0, s13, s10, s7, s4, s1, s14, s11, s8, s5, s2, s15, s12, s9, s6, s3,
    ];
}

fn mix_columns(state: &mut [u8; 16]) {
    for col in state.chunks_exact_mut(4) {
        if let [a, b, c, d] = *col {
            col.copy_from_slice(&[
                gmul(a, 2) ^ gmul(b, 3) ^ c ^ d,
                a ^ gmul(b, 2) ^ gmul(c, 3) ^ d,
                a ^ b ^ gmul(c, 2) ^ gmul(d, 3),
                gmul(a, 3) ^ b ^ c ^ gmul(d, 2),
            ]);
        }
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for col in state.chunks_exact_mut(4) {
        if let [a, b, c, d] = *col {
            col.copy_from_slice(&[
                gmul(a, 14) ^ gmul(b, 11) ^ gmul(c, 13) ^ gmul(d, 9),
                gmul(a, 9) ^ gmul(b, 14) ^ gmul(c, 11) ^ gmul(d, 13),
                gmul(a, 13) ^ gmul(b, 9) ^ gmul(c, 14) ^ gmul(d, 11),
                gmul(a, 11) ^ gmul(b, 13) ^ gmul(c, 9) ^ gmul(d, 14),
            ]);
        }
    }
}

/// AES-128-CTR streaming encryption/decryption (symmetric).
pub struct CtrMode {
    cipher: Aes128,
    nonce: u64,
}

impl CtrMode {
    /// Create with a key and a per-message nonce.
    pub fn new(key: &[u8; 16], nonce: u64) -> Self {
        CtrMode {
            cipher: Aes128::new(key),
            nonce,
        }
    }

    /// XOR `data` with the keystream in place. Applying twice decrypts.
    pub fn apply(&self, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(16).enumerate() {
            let mut block = [0u8; 16];
            let (hi, lo) = block.split_at_mut(8);
            hi.copy_from_slice(&self.nonce.to_be_bytes());
            lo.copy_from_slice(&(i as u64).to_be_bytes());
            self.cipher.encrypt_block(&mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 197 Appendix C.1 known-answer test.
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let mut block: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        let expect: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(block, expect);
        aes.decrypt_block(&mut block);
        let plain: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        assert_eq!(block, plain);
    }

    /// NIST SP 800-38A F.1.1 ECB-AES128 first block.
    #[test]
    fn nist_ecb_vector() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block: [u8; 16] = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        Aes128::new(&key).encrypt_block(&mut block);
        let expect: [u8; 16] = [
            0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66,
            0xef, 0x97,
        ];
        assert_eq!(block, expect);
    }

    #[test]
    fn u128_roundtrip_and_determinism() {
        let aes = Aes128::new(b"0123456789abcdef");
        for v in [0u128, 1, 42, u128::MAX, 0xdead_beef] {
            let c = aes.encrypt_u128(v);
            assert_eq!(aes.decrypt_u128(c), v);
            assert_eq!(aes.encrypt_u128(v), c, "deterministic");
        }
        assert_ne!(aes.encrypt_u128(1), aes.encrypt_u128(2));
    }

    #[test]
    fn ctr_roundtrip_various_lengths() {
        let key = b"fedcba9876543210";
        for len in [0usize, 1, 15, 16, 17, 100, 1000] {
            let mut data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let orig = data.clone();
            let ctr = CtrMode::new(key, 7);
            ctr.apply(&mut data);
            if len > 0 {
                assert_ne!(data, orig, "len={len} should change");
            }
            ctr.apply(&mut data);
            assert_eq!(data, orig, "len={len} roundtrip");
        }
    }

    #[test]
    fn ctr_nonce_separates_streams() {
        let key = b"fedcba9876543210";
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        CtrMode::new(key, 1).apply(&mut a);
        CtrMode::new(key, 2).apply(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn gmul_known_values() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS 197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
    }
}
