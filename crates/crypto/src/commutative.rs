//! Pohlig–Hellman commutative encryption over a safe prime.
//!
//! This is the primitive behind the Agrawal–Evfimievski–Srikant private
//! set intersection protocol (paper reference \[26\], SIGMOD'03) whose cost
//! — "2 hours of computation and ~3 Gbit of transfer" for a modest
//! document workload — motivates the paper's move away from encryption.
//! `dasp-baseline` uses it to reproduce that experiment (E2).
//!
//! E_k(m) = m^k mod p over a safe prime p = 2q + 1, with k odd and
//! invertible mod p − 1. Commutativity: E_a(E_b(m)) = E_b(E_a(m)).

use crate::sha256::sha256;
use dasp_bigint::{gcd, mod_inv, mod_pow, BigUint};
use rand::Rng;

/// A commutative cipher: a key `k` over a shared safe-prime group.
#[derive(Clone, Debug)]
pub struct CommutativeCipher {
    p: BigUint,
    key: BigUint,
    key_inv: BigUint,
}

impl CommutativeCipher {
    /// Generate a fresh key for the shared prime `p` (must be a safe
    /// prime so that invertible exponents are plentiful).
    pub fn generate<R: Rng + ?Sized>(p: &BigUint, rng: &mut R) -> Self {
        let p_minus_1 = p.checked_sub(&BigUint::one()).expect("p >= 2");
        loop {
            let key = BigUint::random_below(&p_minus_1, rng);
            if key.is_zero() || key.is_one() || !gcd(&key, &p_minus_1).is_one() {
                continue;
            }
            let key_inv = mod_inv(&key, &p_minus_1).expect("gcd checked");
            return CommutativeCipher {
                p: p.clone(),
                key,
                key_inv,
            };
        }
    }

    /// The shared prime modulus.
    pub fn prime(&self) -> &BigUint {
        &self.p
    }

    /// Hash an arbitrary byte string into the group (quadratic residues
    /// avoided for simplicity; collision-resistance comes from SHA-256).
    pub fn hash_to_group(&self, data: &[u8]) -> BigUint {
        let digest = sha256(data);
        let h = BigUint::from_be_bytes(&digest);
        // Map into [2, p): rejection would be cleaner; modular reduction
        // suffices for benchmarking purposes.
        let two = BigUint::from_u64(2);
        let span = self.p.checked_sub(&two).expect("p > 2");
        h.rem(&span).add(&two)
    }

    /// Encrypt a group element: `m^k mod p`.
    pub fn encrypt(&self, m: &BigUint) -> BigUint {
        mod_pow(m, &self.key, &self.p)
    }

    /// Remove this key's layer: `c^(k⁻¹) mod p`.
    pub fn decrypt(&self, c: &BigUint) -> BigUint {
        mod_pow(c, &self.key_inv, &self.p)
    }

    /// Ciphertext size in bytes (for communication accounting).
    pub fn ciphertext_bytes(&self) -> usize {
        self.p.bits().div_ceil(8)
    }
}

/// A shared 128-bit safe prime for tests and benchmarks, generated once
/// per process from a fixed seed (safe-prime generation is too slow to
/// repeat per experiment; its cost is excluded from measurements anyway).
pub fn shared_test_prime() -> BigUint {
    use std::sync::OnceLock;
    static PRIME: OnceLock<BigUint> = OnceLock::new();
    PRIME
        .get_or_init(|| {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(0xc0ffee);
            dasp_bigint::gen_safe_prime(128, &mut rng)
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (BigUint, StdRng) {
        (shared_test_prime(), StdRng::seed_from_u64(5))
    }

    #[test]
    fn shared_prime_is_safe() {
        let (p, mut rng) = setup();
        assert!(dasp_bigint::is_probable_prime(&p, 24, &mut rng));
        let q = p.checked_sub(&BigUint::one()).unwrap().shr(1);
        assert!(dasp_bigint::is_probable_prime(&q, 24, &mut rng));
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (p, mut rng) = setup();
        let cipher = CommutativeCipher::generate(&p, &mut rng);
        let m = cipher.hash_to_group(b"alice@example.com");
        assert_eq!(cipher.decrypt(&cipher.encrypt(&m)), m);
    }

    #[test]
    fn commutativity() {
        let (p, mut rng) = setup();
        let a = CommutativeCipher::generate(&p, &mut rng);
        let b = CommutativeCipher::generate(&p, &mut rng);
        let m = a.hash_to_group(b"record-17");
        let ab = a.encrypt(&b.encrypt(&m));
        let ba = b.encrypt(&a.encrypt(&m));
        assert_eq!(ab, ba, "E_a(E_b(m)) must equal E_b(E_a(m))");
    }

    #[test]
    fn intersection_protocol_core() {
        // Equal plaintexts collide under double encryption; unequal don't.
        let (p, mut rng) = setup();
        let alice = CommutativeCipher::generate(&p, &mut rng);
        let bob = CommutativeCipher::generate(&p, &mut rng);
        let shared = alice.hash_to_group(b"common-item");
        let only_a = alice.hash_to_group(b"alice-only");
        let only_b = alice.hash_to_group(b"bob-only");

        let a_items = [shared.clone(), only_a];
        let b_items = [shared, only_b];
        let a_double: Vec<_> = a_items
            .iter()
            .map(|m| bob.encrypt(&alice.encrypt(m)))
            .collect();
        let b_double: Vec<_> = b_items
            .iter()
            .map(|m| alice.encrypt(&bob.encrypt(m)))
            .collect();
        let matches = a_double.iter().filter(|c| b_double.contains(c)).count();
        assert_eq!(matches, 1);
    }

    #[test]
    fn different_keys_encrypt_differently() {
        let (p, mut rng) = setup();
        let a = CommutativeCipher::generate(&p, &mut rng);
        let b = CommutativeCipher::generate(&p, &mut rng);
        let m = a.hash_to_group(b"x");
        assert_ne!(a.encrypt(&m), b.encrypt(&m));
    }

    #[test]
    fn hash_to_group_in_range() {
        let (p, mut rng) = setup();
        let c = CommutativeCipher::generate(&p, &mut rng);
        for s in [&b"a"[..], b"b", b"a longer input string"] {
            let h = c.hash_to_group(s);
            assert!(h >= BigUint::from_u64(2) && h < p);
        }
    }
}
