//! Tokenizer for the SQL subset.

use crate::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Bare identifier or keyword (uppercased for keywords at parse time).
    Ident(String),
    /// Integer literal.
    Number(u64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `=`
    Eq,
    /// `*`
    Star,
    /// `.`
    Dot,
}

/// A token plus its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of its first character.
    pub offset: usize,
}

/// Tokenize `input`.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    offset: i,
                });
                i += 1;
            }
            ';' => {
                out.push(Spanned {
                    token: Token::Semicolon,
                    offset: i,
                });
                i += 1;
            }
            '=' => {
                out.push(Spanned {
                    token: Token::Eq,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    token: Token::Star,
                    offset: i,
                });
                i += 1;
            }
            '.' => {
                out.push(Spanned {
                    token: Token::Dot,
                    offset: i,
                });
                i += 1;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ParseError {
                                message: "unterminated string literal".into(),
                                offset: start,
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let n: u64 = text.parse().map_err(|_| ParseError {
                    message: format!("number {text} out of range"),
                    offset: start,
                })?;
                out.push(Spanned {
                    token: Token::Number(n),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Ident(input[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {other:?}"),
                    offset: i,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("SELECT * FROM t;"),
            vec![
                Token::Ident("SELECT".into()),
                Token::Star,
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            toks("42 'hello' 'it''s'"),
            vec![
                Token::Number(42),
                Token::Str("hello".into()),
                Token::Str("it's".into()),
            ]
        );
    }

    #[test]
    fn punctuation_and_qualified_names() {
        assert_eq!(
            toks("a.b = (1, 2)"),
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into()),
                Token::Eq,
                Token::LParen,
                Token::Number(1),
                Token::Comma,
                Token::Number(2),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("SELECT -- the works\n *"),
            vec![Token::Ident("SELECT".into()), Token::Star]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = tokenize("a ? b").unwrap_err();
        assert_eq!(err.offset, 2);
        let err = tokenize("'open").unwrap_err();
        assert_eq!(err.offset, 0);
        let err = tokenize("99999999999999999999999").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn offsets_point_at_tokens() {
        let spanned = tokenize("ab  12").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 4);
    }
}
