//! Recursive-descent parser over the token stream.

use crate::ast::*;
use crate::lexer::{tokenize, Spanned, Token};
use crate::ParseError;

/// Parse one statement (a trailing semicolon is optional).
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_optional(&Token::Semicolon);
    if let Some(t) = p.peek() {
        return Err(p.err_at(format!("unexpected trailing {:?}", t.token)));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_at(&self, message: String) -> ParseError {
        let offset = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.offset)
            .unwrap_or(0);
        ParseError { message, offset }
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t.token == *want => Ok(()),
            Some(t) => Err(ParseError {
                message: format!("expected {want:?}, found {:?}", t.token),
                offset: t.offset,
            }),
            None => Err(ParseError {
                message: format!("expected {want:?}, found end of input"),
                offset: self.tokens.last().map(|t| t.offset).unwrap_or(0),
            }),
        }
    }

    fn eat_optional(&mut self, want: &Token) {
        if self.peek().map(|t| &t.token) == Some(want) {
            self.pos += 1;
        }
    }

    /// Consume a keyword (case-insensitive identifier).
    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Spanned {
                token: Token::Ident(s),
                ..
            }) if s.eq_ignore_ascii_case(kw) => Ok(()),
            Some(t) => Err(ParseError {
                message: format!("expected keyword {kw}, found {:?}", t.token),
                offset: t.offset,
            }),
            None => Err(ParseError {
                message: format!("expected keyword {kw}, found end of input"),
                offset: 0,
            }),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(
            self.peek(),
            Some(Spanned { token: Token::Ident(s), .. }) if s.eq_ignore_ascii_case(kw)
        )
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Spanned {
                token: Token::Ident(s),
                ..
            }) => Ok(s),
            Some(t) => Err(ParseError {
                message: format!("expected identifier, found {:?}", t.token),
                offset: t.offset,
            }),
            None => Err(ParseError {
                message: "expected identifier, found end of input".into(),
                offset: 0,
            }),
        }
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        match self.next() {
            Some(Spanned {
                token: Token::Number(n),
                ..
            }) => Ok(n),
            Some(t) => Err(ParseError {
                message: format!("expected number, found {:?}", t.token),
                offset: t.offset,
            }),
            None => Err(ParseError {
                message: "expected number, found end of input".into(),
                offset: 0,
            }),
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.next() {
            Some(Spanned {
                token: Token::Number(n),
                ..
            }) => Ok(Literal::Int(n)),
            Some(Spanned {
                token: Token::Str(s),
                ..
            }) => Ok(Literal::Str(s)),
            Some(t) => Err(ParseError {
                message: format!("expected literal, found {:?}", t.token),
                offset: t.offset,
            }),
            None => Err(ParseError {
                message: "expected literal, found end of input".into(),
                offset: 0,
            }),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        let head = match self.peek() {
            Some(Spanned {
                token: Token::Ident(s),
                ..
            }) => s.to_ascii_uppercase(),
            _ => return Err(self.err_at("expected a statement".into())),
        };
        match head.as_str() {
            "EXPLAIN" => {
                self.keyword("EXPLAIN")?;
                let inner = self.statement()?;
                if !matches!(inner, Statement::Select { .. }) {
                    return Err(self.err_at("EXPLAIN supports only SELECT".into()));
                }
                Ok(Statement::Explain(Box::new(inner)))
            }
            "CREATE" => self.create_table(),
            "INSERT" => self.insert(),
            "SELECT" => self.select(),
            "UPDATE" => self.update(),
            "DELETE" => self.delete(),
            other => Err(self.err_at(format!("unsupported statement {other}"))),
        }
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        self.keyword("CREATE")?;
        self.keyword("TABLE")?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.column_def()?);
            match self.next() {
                Some(Spanned {
                    token: Token::Comma,
                    ..
                }) => continue,
                Some(Spanned {
                    token: Token::RParen,
                    ..
                }) => break,
                Some(t) => {
                    return Err(ParseError {
                        message: format!("expected , or ) in column list, found {:?}", t.token),
                        offset: t.offset,
                    })
                }
                None => return Err(self.err_at("unterminated column list".into())),
            }
        }
        Ok(Statement::CreateTable { name, columns })
    }

    fn column_def(&mut self) -> Result<ColumnDef, ParseError> {
        let name = self.ident()?;
        let type_name = self.ident()?.to_ascii_uppercase();
        self.expect(&Token::LParen)?;
        let arg = self.number()?;
        self.expect(&Token::RParen)?;
        let ctype = match type_name.as_str() {
            "INT" | "INTEGER" => ColumnTypeDef::Int { domain_size: arg },
            "VARCHAR" => ColumnTypeDef::Varchar { width: arg },
            other => return Err(self.err_at(format!("unknown type {other}"))),
        };
        let mut mode = ColumnMode::Deterministic;
        let mut domain = None;
        loop {
            if self.peek_keyword("MODE") {
                self.keyword("MODE")?;
                let m = self.ident()?.to_ascii_uppercase();
                mode = match m.as_str() {
                    "RANDOM" => ColumnMode::Random,
                    "DETERMINISTIC" => ColumnMode::Deterministic,
                    "ORDERED" => ColumnMode::Ordered,
                    other => return Err(self.err_at(format!("unknown mode {other}"))),
                };
            } else if self.peek_keyword("DOMAIN") {
                self.keyword("DOMAIN")?;
                match self.next() {
                    Some(Spanned {
                        token: Token::Str(s),
                        ..
                    }) => domain = Some(s),
                    Some(t) => {
                        return Err(ParseError {
                            message: "DOMAIN expects a quoted name".into(),
                            offset: t.offset,
                        })
                    }
                    None => return Err(self.err_at("DOMAIN expects a quoted name".into())),
                }
            } else {
                break;
            }
        }
        Ok(ColumnDef {
            name,
            ctype,
            mode,
            domain,
        })
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.keyword("INSERT")?;
        self.keyword("INTO")?;
        let table = self.ident()?;
        self.keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                match self.next() {
                    Some(Spanned {
                        token: Token::Comma,
                        ..
                    }) => continue,
                    Some(Spanned {
                        token: Token::RParen,
                        ..
                    }) => break,
                    Some(t) => {
                        return Err(ParseError {
                            message: format!("expected , or ) in row, found {:?}", t.token),
                            offset: t.offset,
                        })
                    }
                    None => return Err(self.err_at("unterminated row".into())),
                }
            }
            rows.push(row);
            if self.peek().map(|t| &t.token) == Some(&Token::Comma) {
                self.pos += 1;
                continue;
            }
            break;
        }
        Ok(Statement::Insert { table, rows })
    }

    fn select(&mut self) -> Result<Statement, ParseError> {
        self.keyword("SELECT")?;
        let projection = self.projection()?;
        self.keyword("FROM")?;
        let table = self.ident()?;
        let join = if self.peek_keyword("JOIN") {
            self.keyword("JOIN")?;
            let join_table = self.ident()?;
            self.keyword("ON")?;
            let (t1, c1) = self.qualified()?;
            self.expect(&Token::Eq)?;
            let (t2, c2) = self.qualified()?;
            // Normalize so left_col belongs to the FROM table.
            let (left_col, right_col) = if t1 == table && t2 == join_table {
                (c1, c2)
            } else if t1 == join_table && t2 == table {
                (c2, c1)
            } else {
                return Err(
                    self.err_at("JOIN ON must reference both tables as table.column".into())
                );
            };
            Some(JoinClause {
                table: join_table,
                left_col,
                right_col,
            })
        } else {
            None
        };
        let conditions = self.where_clause()?;
        let group_by = if self.peek_keyword("GROUP") {
            self.keyword("GROUP")?;
            self.keyword("BY")?;
            Some(self.ident()?)
        } else {
            None
        };
        let order_by = if self.peek_keyword("ORDER") {
            self.keyword("ORDER")?;
            self.keyword("BY")?;
            let col = self.ident()?;
            let desc = if self.peek_keyword("DESC") {
                self.keyword("DESC")?;
                true
            } else {
                if self.peek_keyword("ASC") {
                    self.keyword("ASC")?;
                }
                false
            };
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.peek_keyword("LIMIT") {
            self.keyword("LIMIT")?;
            Some(self.number()?)
        } else {
            None
        };
        Ok(Statement::Select {
            projection,
            table,
            join,
            conditions,
            group_by,
            order_by,
            limit,
        })
    }

    fn qualified(&mut self) -> Result<(String, String), ParseError> {
        let t = self.ident()?;
        self.expect(&Token::Dot)?;
        let c = self.ident()?;
        Ok((t, c))
    }

    fn projection(&mut self) -> Result<Projection, ParseError> {
        if self.peek().map(|t| &t.token) == Some(&Token::Star) {
            self.pos += 1;
            return Ok(Projection::All);
        }
        // Aggregate?
        if let Some(Spanned {
            token: Token::Ident(name),
            ..
        }) = self.peek()
        {
            let upper = name.to_ascii_uppercase();
            if matches!(
                upper.as_str(),
                "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "MEDIAN"
            ) && self.tokens.get(self.pos + 1).map(|t| &t.token) == Some(&Token::LParen)
            {
                self.pos += 2; // name (
                let agg = if upper == "COUNT" {
                    self.expect(&Token::Star)?;
                    Aggregate::Count
                } else {
                    let col = self.ident()?;
                    match upper.as_str() {
                        "SUM" => Aggregate::Sum(col),
                        "AVG" => Aggregate::Avg(col),
                        "MIN" => Aggregate::Min(col),
                        "MAX" => Aggregate::Max(col),
                        "MEDIAN" => Aggregate::Median(col),
                        _ => unreachable!(),
                    }
                };
                self.expect(&Token::RParen)?;
                return Ok(Projection::Aggregate(agg));
            }
        }
        // Column list.
        let mut cols = vec![self.ident()?];
        while self.peek().map(|t| &t.token) == Some(&Token::Comma) {
            self.pos += 1;
            cols.push(self.ident()?);
        }
        Ok(Projection::Columns(cols))
    }

    fn where_clause(&mut self) -> Result<Vec<Condition>, ParseError> {
        if !self.peek_keyword("WHERE") {
            return Ok(Vec::new());
        }
        self.keyword("WHERE")?;
        let mut conds = vec![self.condition()?];
        while self.peek_keyword("AND") {
            self.keyword("AND")?;
            conds.push(self.condition()?);
        }
        Ok(conds)
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        let col = self.ident()?;
        if self.peek().map(|t| &t.token) == Some(&Token::Eq) {
            self.pos += 1;
            return Ok(Condition::Eq {
                col,
                value: self.literal()?,
            });
        }
        if self.peek_keyword("BETWEEN") {
            self.keyword("BETWEEN")?;
            let lo = self.literal()?;
            self.keyword("AND")?;
            let hi = self.literal()?;
            return Ok(Condition::Between { col, lo, hi });
        }
        if self.peek_keyword("LIKE") {
            self.keyword("LIKE")?;
            let pat = match self.next() {
                Some(Spanned {
                    token: Token::Str(s),
                    ..
                }) => s,
                _ => return Err(self.err_at("LIKE expects a string pattern".into())),
            };
            let Some(prefix) = pat.strip_suffix('%') else {
                return Err(self.err_at("only 'prefix%' LIKE patterns are supported".into()));
            };
            if prefix.contains('%') || prefix.contains('_') {
                return Err(self.err_at("only 'prefix%' LIKE patterns are supported".into()));
            }
            return Ok(Condition::Prefix {
                col,
                prefix: prefix.to_string(),
            });
        }
        Err(self.err_at("expected =, BETWEEN or LIKE".into()))
    }

    fn update(&mut self) -> Result<Statement, ParseError> {
        self.keyword("UPDATE")?;
        let table = self.ident()?;
        self.keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            assignments.push((col, self.literal()?));
            if self.peek().map(|t| &t.token) == Some(&Token::Comma) {
                self.pos += 1;
                continue;
            }
            break;
        }
        let conditions = self.where_clause()?;
        Ok(Statement::Update {
            table,
            assignments,
            conditions,
        })
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        self.keyword("DELETE")?;
        self.keyword("FROM")?;
        let table = self.ident()?;
        let conditions = self.where_clause()?;
        Ok(Statement::Delete { table, conditions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_modes() {
        let stmt = parse(
            "CREATE TABLE emp (name VARCHAR(8) MODE DETERMINISTIC, \
             salary INT(1048576) MODE ORDERED, \
             ssn INT(100) MODE RANDOM DOMAIN 'national_id')",
        )
        .unwrap();
        let Statement::CreateTable { name, columns } = stmt else {
            panic!()
        };
        assert_eq!(name, "emp");
        assert_eq!(columns.len(), 3);
        assert_eq!(columns[0].mode, ColumnMode::Deterministic);
        assert_eq!(columns[1].mode, ColumnMode::Ordered);
        assert_eq!(
            columns[1].ctype,
            ColumnTypeDef::Int {
                domain_size: 1048576
            }
        );
        assert_eq!(columns[2].mode, ColumnMode::Random);
        assert_eq!(columns[2].domain.as_deref(), Some("national_id"));
    }

    #[test]
    fn default_mode_is_deterministic() {
        let stmt = parse("CREATE TABLE t (a INT(10))").unwrap();
        let Statement::CreateTable { columns, .. } = stmt else {
            panic!()
        };
        assert_eq!(columns[0].mode, ColumnMode::Deterministic);
        assert_eq!(columns[0].domain, None);
    }

    #[test]
    fn insert_multi_row() {
        let stmt = parse("INSERT INTO emp VALUES ('JOHN', 10000), ('MARY', 20000);").unwrap();
        let Statement::Insert { table, rows } = stmt else {
            panic!()
        };
        assert_eq!(table, "emp");
        assert_eq!(
            rows,
            vec![
                vec![Literal::Str("JOHN".into()), Literal::Int(10000)],
                vec![Literal::Str("MARY".into()), Literal::Int(20000)],
            ]
        );
    }

    #[test]
    fn select_star_where_between() {
        let stmt =
            parse("SELECT * FROM emp WHERE salary BETWEEN 10000 AND 40000 AND name = 'JOHN'")
                .unwrap();
        let Statement::Select {
            projection,
            table,
            join,
            conditions,
            ..
        } = stmt
        else {
            panic!()
        };
        assert_eq!(projection, Projection::All);
        assert_eq!(table, "emp");
        assert!(join.is_none());
        assert_eq!(conditions.len(), 2);
        assert_eq!(
            conditions[0],
            Condition::Between {
                col: "salary".into(),
                lo: Literal::Int(10000),
                hi: Literal::Int(40000),
            }
        );
    }

    #[test]
    fn select_aggregates() {
        for (sql, agg) in [
            ("SELECT COUNT(*) FROM t", Aggregate::Count),
            ("SELECT SUM(salary) FROM t", Aggregate::Sum("salary".into())),
            ("SELECT AVG(salary) FROM t", Aggregate::Avg("salary".into())),
            ("SELECT MIN(salary) FROM t", Aggregate::Min("salary".into())),
            ("SELECT MAX(salary) FROM t", Aggregate::Max("salary".into())),
            (
                "SELECT MEDIAN(salary) FROM t",
                Aggregate::Median("salary".into()),
            ),
        ] {
            let Statement::Select { projection, .. } = parse(sql).unwrap() else {
                panic!()
            };
            assert_eq!(projection, Projection::Aggregate(agg), "{sql}");
        }
    }

    #[test]
    fn select_column_list() {
        let Statement::Select { projection, .. } = parse("SELECT name, salary FROM emp").unwrap()
        else {
            panic!()
        };
        assert_eq!(
            projection,
            Projection::Columns(vec!["name".into(), "salary".into()])
        );
    }

    #[test]
    fn select_join_normalizes_sides() {
        let sql = "SELECT * FROM employees JOIN managers ON managers.eid = employees.eid";
        let Statement::Select {
            join: Some(join), ..
        } = parse(sql).unwrap()
        else {
            panic!()
        };
        assert_eq!(join.table, "managers");
        assert_eq!(join.left_col, "eid");
        assert_eq!(join.right_col, "eid");
    }

    #[test]
    fn like_prefix() {
        let Statement::Select { conditions, .. } =
            parse("SELECT * FROM t WHERE name LIKE 'AB%'").unwrap()
        else {
            panic!()
        };
        assert_eq!(
            conditions[0],
            Condition::Prefix {
                col: "name".into(),
                prefix: "AB".into()
            }
        );
        assert!(parse("SELECT * FROM t WHERE name LIKE '%AB'").is_err());
        assert!(parse("SELECT * FROM t WHERE name LIKE 'A_B%'").is_err());
    }

    #[test]
    fn update_and_delete() {
        let stmt = parse("UPDATE emp SET salary = 99000, bonus = 1 WHERE name = 'JOHN'").unwrap();
        let Statement::Update {
            table,
            assignments,
            conditions,
        } = stmt
        else {
            panic!()
        };
        assert_eq!(table, "emp");
        assert_eq!(assignments.len(), 2);
        assert_eq!(conditions.len(), 1);

        let stmt = parse("DELETE FROM emp WHERE name = 'BOB'").unwrap();
        let Statement::Delete { table, conditions } = stmt else {
            panic!()
        };
        assert_eq!(table, "emp");
        assert_eq!(conditions.len(), 1);

        let stmt = parse("DELETE FROM emp").unwrap();
        let Statement::Delete { conditions, .. } = stmt else {
            panic!()
        };
        assert!(conditions.is_empty());
    }

    #[test]
    fn group_by_order_by_limit() {
        let stmt = parse("SELECT SUM(salary) FROM emp WHERE salary BETWEEN 1 AND 9 GROUP BY dept")
            .unwrap();
        let Statement::Select { group_by, .. } = stmt else {
            panic!()
        };
        assert_eq!(group_by.as_deref(), Some("dept"));

        let stmt = parse("SELECT * FROM emp ORDER BY salary DESC LIMIT 10").unwrap();
        let Statement::Select {
            order_by, limit, ..
        } = stmt
        else {
            panic!()
        };
        assert_eq!(order_by, Some(("salary".into(), true)));
        assert_eq!(limit, Some(10));

        let stmt = parse("SELECT * FROM emp ORDER BY salary ASC").unwrap();
        let Statement::Select {
            order_by, limit, ..
        } = stmt
        else {
            panic!()
        };
        assert_eq!(order_by, Some(("salary".into(), false)));
        assert_eq!(limit, None);

        let stmt = parse("SELECT * FROM emp LIMIT 3").unwrap();
        let Statement::Select {
            order_by, limit, ..
        } = stmt
        else {
            panic!()
        };
        assert_eq!(order_by, None);
        assert_eq!(limit, Some(3));

        assert!(parse("SELECT * FROM emp GROUP dept").is_err());
        assert!(parse("SELECT * FROM emp ORDER salary").is_err());
        assert!(parse("SELECT * FROM emp LIMIT").is_err());
    }

    #[test]
    fn explain_wraps_select() {
        let stmt = parse("EXPLAIN SELECT * FROM t WHERE a = 1").unwrap();
        let Statement::Explain(inner) = stmt else {
            panic!()
        };
        assert!(matches!(*inner, Statement::Select { .. }));
        assert!(parse("EXPLAIN DELETE FROM t").is_err());
        assert!(parse("EXPLAIN").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse("select * from t where a = 1").is_ok());
        assert!(parse("Select Count(*) From t").is_ok());
    }

    #[test]
    fn error_cases() {
        for bad in [
            "",
            "DROP TABLE t",
            "SELECT FROM t",
            "SELECT * FROM",
            "INSERT INTO t VALUES",
            "INSERT INTO t VALUES (1",
            "CREATE TABLE t ()",
            "CREATE TABLE t (a BLOB(4))",
            "CREATE TABLE t (a INT(4) MODE SECRET)",
            "SELECT * FROM t WHERE a",
            "SELECT * FROM t WHERE a BETWEEN 1",
            "SELECT * FROM a JOIN b ON c.x = d.y",
            "SELECT * FROM t; garbage",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn errors_have_useful_offsets() {
        let err = parse("SELECT * FROM t WHERE a ! 1").unwrap_err();
        assert!(err.offset >= 24);
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The parser must return Err — never panic — on arbitrary
            /// input, including near-SQL garbage.
            #[test]
            fn prop_never_panics_on_garbage(s in ".*") {
                let _ = parse(&s);
            }

            #[test]
            fn prop_never_panics_on_sql_like(
                head in "(SELECT|INSERT|UPDATE|DELETE|CREATE)",
                middle in "[A-Za-z0-9 '(),*=.%]{0,60}",
            ) {
                let _ = parse(&format!("{head} {middle}"));
            }

            /// Anything that parses must re-parse identically after a
            /// round through Debug (stability smoke check).
            #[test]
            fn prop_parse_is_deterministic(
                tail in "[A-Za-z0-9 '(),*=]{0,40}",
            ) {
                let sql = format!("SELECT * FROM t {tail}");
                let a = parse(&sql);
                let b = parse(&sql);
                prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
            }
        }
    }
}
