//! SQL front end for the outsourced database.
//!
//! The paper's interface to the data source is SQL ("Retrieve all
//! information about employees whose salary is between 10K and 40K");
//! this crate parses exactly the subset those examples need:
//!
//! ```sql
//! CREATE TABLE employees (
//!     name  VARCHAR(8)  MODE DETERMINISTIC,
//!     salary INT(1048576) MODE ORDERED,
//!     ssn   INT(1073741824) MODE RANDOM DOMAIN 'national_id'
//! );
//! INSERT INTO employees VALUES ('JOHN', 10000, 111), ('MARY', 20000, 222);
//! SELECT * FROM employees WHERE salary BETWEEN 10000 AND 40000;
//! SELECT AVG(salary) FROM employees WHERE name = 'JOHN';
//! SELECT * FROM employees JOIN managers ON employees.eid = managers.eid;
//! UPDATE employees SET salary = 99000 WHERE name = 'JOHN';
//! DELETE FROM employees WHERE name = 'BOB';
//! ```
//!
//! `MODE` picks the share mode per column (the privacy dial); `DOMAIN`
//! assigns the value domain used for cross-table joins (§V-A).
//!
//! The output is a typed [`ast::Statement`]; execution lives in
//! `dasp-core`, which lowers statements onto the `dasp-client` API.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    Aggregate, ColumnDef, ColumnMode, ColumnTypeDef, Condition, Literal, Projection, Statement,
};
pub use parser::parse;

/// Parse errors with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}
