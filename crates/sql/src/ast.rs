//! Abstract syntax of the supported SQL subset.

/// A literal value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Literal {
    /// Integer literal.
    Int(u64),
    /// String literal.
    Str(String),
}

/// Per-column share mode keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnMode {
    /// `MODE RANDOM` — information-theoretic, no server filtering.
    Random,
    /// `MODE DETERMINISTIC` — server-side exact match / joins.
    Deterministic,
    /// `MODE ORDERED` — server-side ranges too.
    Ordered,
}

/// Column type syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnTypeDef {
    /// `INT(domain_size)`.
    Int {
        /// Exclusive domain bound.
        domain_size: u64,
    },
    /// `VARCHAR(width)`.
    Varchar {
        /// Maximum string length.
        width: u64,
    },
}

/// One column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Type.
    pub ctype: ColumnTypeDef,
    /// Share mode (defaults to `Deterministic`).
    pub mode: ColumnMode,
    /// Optional `DOMAIN 'name'` override for cross-table joins.
    pub domain: Option<String>,
}

/// A WHERE conjunct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// `col = literal`.
    Eq {
        /// Column name.
        col: String,
        /// Comparison literal.
        value: Literal,
    },
    /// `col BETWEEN lo AND hi`.
    Between {
        /// Column name.
        col: String,
        /// Lower bound.
        lo: Literal,
        /// Upper bound.
        hi: Literal,
    },
    /// `col LIKE 'prefix%'` (only trailing-% patterns are supported).
    Prefix {
        /// Column name.
        col: String,
        /// The prefix before `%`.
        prefix: String,
    },
}

/// Aggregate function in a SELECT projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)`.
    Count,
    /// `SUM(col)`.
    Sum(String),
    /// `AVG(col)`.
    Avg(String),
    /// `MIN(col)`.
    Min(String),
    /// `MAX(col)`.
    Max(String),
    /// `MEDIAN(col)`.
    Median(String),
}

/// SELECT projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// `*`.
    All,
    /// Explicit column list.
    Columns(Vec<String>),
    /// A single aggregate.
    Aggregate(Aggregate),
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `EXPLAIN <select>` — describe the rewriting instead of running it.
    Explain(Box<Statement>),
    /// `CREATE TABLE name (col defs…)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `INSERT INTO table VALUES (…), (…)`.
    Insert {
        /// Target table.
        table: String,
        /// Row literals.
        rows: Vec<Vec<Literal>>,
    },
    /// `SELECT projection FROM table [JOIN …] [WHERE …] [GROUP BY col]
    /// [ORDER BY col [DESC]] [LIMIT n]`.
    Select {
        /// What to return.
        projection: Projection,
        /// Source table.
        table: String,
        /// Optional `JOIN other ON table.col = other.col`.
        join: Option<JoinClause>,
        /// Conjunctive WHERE clause.
        conditions: Vec<Condition>,
        /// Optional `GROUP BY col`.
        group_by: Option<String>,
        /// Optional `ORDER BY col` with descending flag.
        order_by: Option<(String, bool)>,
        /// Optional `LIMIT n`.
        limit: Option<u64>,
    },
    /// `UPDATE table SET col = lit, … [WHERE …]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        assignments: Vec<(String, Literal)>,
        /// Conjunctive WHERE clause.
        conditions: Vec<Condition>,
    },
    /// `DELETE FROM table [WHERE …]`.
    Delete {
        /// Target table.
        table: String,
        /// Conjunctive WHERE clause.
        conditions: Vec<Condition>,
    },
}

/// The JOIN clause of a SELECT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinClause {
    /// Joined table.
    pub table: String,
    /// Column of the left (FROM) table.
    pub left_col: String,
    /// Column of the joined table.
    pub right_col: String,
}
