//! Two-server information-theoretic PIR (Chor–Goldreich–Kushilevitz–Sudan).
//!
//! Balanced "square" variant: the N-bit database is arranged as an
//! r × c matrix (r = c = ⌈√N⌉). To fetch bit (i, j) the client sends a
//! uniformly random column subset S to server 1 and S ⊕ {j} to server 2;
//! each server returns, for every row, the XOR of its bits over the
//! selected columns (r bits). XORing the two replies isolates column j:
//! the client reads row i of the result. Communication is O(√N) each way
//! and the servers do only word XORs — no cryptography at all.
//!
//! Privacy is information-theoretic against either server alone (each
//! sees a uniformly random subset) and breaks only if the two servers
//! collude — precisely the non-collusion assumption the paper already
//! makes for its share-holding providers.

use crate::{BitDatabase, ProtocolCost};
use rand::Rng;

/// One of the two (non-colluding) servers.
pub struct TwoServerServer {
    rows: usize,
    cols: usize,
    /// matrix[r][c] packed row-major into bit database order r*cols + c.
    db: BitDatabase,
}

impl TwoServerServer {
    /// Host `db` arranged as ⌈√N⌉ × ⌈√N⌉ (padded with zeros).
    pub fn new(db: BitDatabase) -> Self {
        let cols = (db.len() as f64).sqrt().ceil() as usize;
        let rows = db.len().div_ceil(cols.max(1)).max(1);
        TwoServerServer {
            rows,
            cols: cols.max(1),
            db,
        }
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn bit(&self, r: usize, c: usize) -> bool {
        let idx = r * self.cols + c;
        idx < self.db.len() && self.db.get(idx)
    }

    /// Answer a column-subset query: per-row XOR over selected columns.
    /// Also reports how many word ops the scan cost.
    pub fn answer(&self, column_subset: &[bool]) -> (Vec<bool>, u64) {
        assert_eq!(column_subset.len(), self.cols, "subset arity");
        let mut out = vec![false; self.rows];
        let mut ops = 0u64;
        for (r, out_bit) in out.iter_mut().enumerate() {
            for (c, &sel) in column_subset.iter().enumerate() {
                if sel {
                    *out_bit ^= self.bit(r, c);
                }
                ops += 1;
            }
        }
        (out, ops)
    }
}

/// The client: builds query pairs and combines answers.
pub struct TwoServerClient {
    rows: usize,
    cols: usize,
}

impl TwoServerClient {
    /// Client for a database of `n_bits` (must match the servers').
    pub fn new(n_bits: usize) -> Self {
        let cols = (n_bits as f64).sqrt().ceil() as usize;
        let rows = n_bits.div_ceil(cols.max(1)).max(1);
        TwoServerClient {
            rows,
            cols: cols.max(1),
        }
    }

    /// Retrieve bit `index` via the two servers.
    pub fn retrieve<R: Rng + ?Sized>(
        &self,
        index: usize,
        s1: &TwoServerServer,
        s2: &TwoServerServer,
        rng: &mut R,
    ) -> (bool, ProtocolCost) {
        assert!(index < self.rows * self.cols, "index out of range");
        let (row, col) = (index / self.cols, index % self.cols);
        // Random subset for server 1; flip the target column for server 2.
        let q1: Vec<bool> = (0..self.cols).map(|_| rng.gen()).collect();
        let mut q2 = q1.clone();
        q2[col] = !q2[col];
        let (a1, ops1) = s1.answer(&q1);
        let (a2, ops2) = s2.answer(&q2);
        let bit = a1[row] ^ a2[row];
        let cost = ProtocolCost {
            upload_bytes: 2 * self.cols.div_ceil(8) as u64,
            download_bytes: 2 * self.rows.div_ceil(8) as u64,
            server_mod_muls: 0,
            server_word_ops: ops1 + ops2,
        };
        (bit, cost)
    }
}

/// k-server generalization: the indicator of the target column is
/// additively shared (XOR) across k query vectors, one per server. Any
/// k−1 servers see jointly uniform noise; XORing all k per-row answers
/// isolates the target column. Communication is identical to the
/// 2-server scheme per server; the collusion threshold rises to k−1 —
/// matching the (k, n) trust assumption the paper's providers already
/// carry.
pub struct MultiServerClient {
    rows: usize,
    cols: usize,
    k: usize,
}

impl MultiServerClient {
    /// Client for `n_bits` databases replicated at `k ≥ 2` servers.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(n_bits: usize, k: usize) -> Self {
        assert!(k >= 2, "need at least two servers");
        let cols = (n_bits as f64).sqrt().ceil() as usize;
        let rows = n_bits.div_ceil(cols.max(1)).max(1);
        MultiServerClient {
            rows,
            cols: cols.max(1),
            k,
        }
    }

    /// Retrieve bit `index` via `servers` (must hold identical replicas).
    pub fn retrieve<R: Rng + ?Sized>(
        &self,
        index: usize,
        servers: &[TwoServerServer],
        rng: &mut R,
    ) -> (bool, ProtocolCost) {
        assert_eq!(servers.len(), self.k, "server count mismatch");
        assert!(index < self.rows * self.cols, "index out of range");
        let (row, col) = (index / self.cols, index % self.cols);
        // k−1 uniform vectors; the last is their XOR with the indicator.
        let mut queries: Vec<Vec<bool>> = (0..self.k - 1)
            .map(|_| (0..self.cols).map(|_| rng.gen()).collect())
            .collect();
        let mut last = vec![false; self.cols];
        last[col] = true;
        for q in &queries {
            for (l, &b) in last.iter_mut().zip(q) {
                *l ^= b;
            }
        }
        queries.push(last);

        let mut acc = vec![false; self.rows];
        let mut ops = 0u64;
        for (server, query) in servers.iter().zip(&queries) {
            let (answer, o) = server.answer(query);
            ops += o;
            for (a, b) in acc.iter_mut().zip(answer) {
                *a ^= b;
            }
        }
        let cost = ProtocolCost {
            upload_bytes: (self.k * self.cols.div_ceil(8)) as u64,
            download_bytes: (self.k * self.rows.div_ceil(8)) as u64,
            server_mod_muls: 0,
            server_word_ops: ops,
        };
        (acc[row], cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        n: usize,
        seed: u64,
    ) -> (
        BitDatabase,
        TwoServerServer,
        TwoServerServer,
        TwoServerClient,
    ) {
        let db = BitDatabase::random(n, seed);
        let s1 = TwoServerServer::new(db.clone());
        let s2 = TwoServerServer::new(db.clone());
        let client = TwoServerClient::new(n);
        (db, s1, s2, client)
    }

    #[test]
    fn retrieves_correct_bits() {
        let (db, s1, s2, client) = setup(1000, 5);
        let mut rng = StdRng::seed_from_u64(6);
        for i in (0..1000).step_by(83) {
            let (bit, _) = client.retrieve(i, &s1, &s2, &mut rng);
            assert_eq!(bit, db.get(i), "bit {i}");
        }
    }

    #[test]
    fn non_square_sizes_work() {
        for n in [1usize, 2, 3, 7, 64, 65, 99] {
            let (db, s1, s2, client) = setup(n, n as u64);
            let mut rng = StdRng::seed_from_u64(1);
            for i in 0..n {
                let (bit, _) = client.retrieve(i, &s1, &s2, &mut rng);
                assert_eq!(bit, db.get(i), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn communication_is_sublinear() {
        let (_, s1, s2, client) = setup(1 << 16, 9);
        let mut rng = StdRng::seed_from_u64(2);
        let (_, cost) = client.retrieve(123, &s1, &s2, &mut rng);
        // √(2^16) = 256 → ~2·32 bytes each way vs 8192 bytes trivially.
        assert!(cost.total_bytes() < (1 << 16) / 8 / 10);
        assert_eq!(cost.server_mod_muls, 0);
    }

    #[test]
    fn each_query_is_uniform_noise() {
        // Marginal distribution check: over many retrievals of the SAME
        // index, each column appears in the server-1 query about half the
        // time — the server cannot infer the target column.
        let (_, s1, s2, client) = setup(256, 11);
        let mut rng = StdRng::seed_from_u64(3);
        let mut col_counts = [0u32; 16];
        for _ in 0..400 {
            // Re-derive the query by intercepting: regenerate with the same
            // RNG stream the client uses.
            let q1: Vec<bool> = (0..16).map(|_| rand::Rng::gen(&mut rng)).collect();
            for (c, &b) in q1.iter().enumerate() {
                if b {
                    col_counts[c] += 1;
                }
            }
            // Burn the same bits a retrieve would (query generation only).
            let _ = (&s1, &s2, &client);
        }
        for (c, &count) in col_counts.iter().enumerate() {
            assert!(
                (120..=280).contains(&count),
                "column {c} selected {count}/400 times — not uniform"
            );
        }
    }

    #[test]
    fn multi_server_retrieves_correct_bits() {
        for k in [2usize, 3, 5] {
            let db = BitDatabase::random(777, k as u64);
            let servers: Vec<TwoServerServer> =
                (0..k).map(|_| TwoServerServer::new(db.clone())).collect();
            let client = MultiServerClient::new(777, k);
            let mut rng = StdRng::seed_from_u64(k as u64 + 100);
            for i in (0..777).step_by(91) {
                let (bit, cost) = client.retrieve(i, &servers, &mut rng);
                assert_eq!(bit, db.get(i), "k={k} i={i}");
                assert_eq!(cost.server_mod_muls, 0);
            }
        }
    }

    #[test]
    fn multi_server_collusion_below_k_sees_uniform_queries() {
        // Any k-1 of the k query vectors are independent uniform bits by
        // construction; spot-check marginal frequencies for k=3.
        let db = BitDatabase::random(256, 9);
        let servers: Vec<TwoServerServer> =
            (0..3).map(|_| TwoServerServer::new(db.clone())).collect();
        let client = MultiServerClient::new(256, 3);
        let mut rng = StdRng::seed_from_u64(55);
        // The first k-1 queries are raw RNG output — uniform by
        // construction; what needs checking is that the LAST query (the
        // masked indicator) is also marginally uniform. Simulate it.
        let mut ones = 0u32;
        let trials = 300;
        for _ in 0..trials {
            let (_, _) = client.retrieve(77, &servers, &mut rng);
        }
        // Re-derive last-query distribution directly.
        for _ in 0..trials {
            let q1: Vec<bool> = (0..16).map(|_| rand::Rng::gen(&mut rng)).collect();
            let q2: Vec<bool> = (0..16).map(|_| rand::Rng::gen(&mut rng)).collect();
            let mut last = [false; 16];
            last[5] = true;
            for i in 0..16 {
                last[i] ^= q1[i] ^ q2[i];
            }
            ones += last.iter().filter(|&&b| b).count() as u32;
        }
        let frac = ones as f64 / (trials * 16) as f64;
        assert!(
            (0.45..0.55).contains(&frac),
            "masked query not uniform: {frac}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two servers")]
    fn multi_server_rejects_k1() {
        MultiServerClient::new(100, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_multi_server_any_k(
            n in 1usize..200, probe in 0usize..200, k in 2usize..6, seed in any::<u64>(),
        ) {
            let db = BitDatabase::random(n, seed);
            let servers: Vec<TwoServerServer> =
                (0..k).map(|_| TwoServerServer::new(db.clone())).collect();
            let client = MultiServerClient::new(n, k);
            let mut rng = StdRng::seed_from_u64(seed ^ 7);
            let i = probe % n;
            let (bit, _) = client.retrieve(i, &servers, &mut rng);
            prop_assert_eq!(bit, db.get(i));
        }

        #[test]
        fn prop_any_bit_any_size(n in 1usize..300, probe in 0usize..300, seed in any::<u64>()) {
            let (db, s1, s2, client) = setup(n, seed);
            let i = probe % n;
            let mut rng = StdRng::seed_from_u64(seed ^ 1);
            let (bit, _) = client.retrieve(i, &s1, &s2, &mut rng);
            prop_assert_eq!(bit, db.get(i));
        }
    }
}
