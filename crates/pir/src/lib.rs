//! Private information retrieval (paper §II-B).
//!
//! The paper surveys PIR as the classic answer to query privacy and cites
//! Sion & Carbunar's NDSS'07 result that single-server *computational*
//! PIR is orders of magnitude slower than the trivial protocol of
//! shipping the whole database. Experiment E3 reproduces that comparison;
//! this crate supplies the three contenders:
//!
//! * [`trivial`] — download everything; maximal bandwidth, zero crypto.
//! * [`itpir`] — the two-server information-theoretic scheme of Chor,
//!   Goldreich, Kushilevitz & Sudan (balanced "square" variant,
//!   O(√N) communication), which is the PIR family the paper's
//!   multi-provider world view actually matches.
//! * [`cpir`] — Kushilevitz–Ostrovsky quadratic-residuosity PIR: one
//!   server, O(√N·|n|) communication, and — crucially — one modular
//!   multiplication *per database bit* on the server, which is where the
//!   Sion–Carbunar wall comes from.
//!
//! Every protocol reports a [`ProtocolCost`] so the bench harness can
//! apply a network model uniformly.

pub mod cpir;
pub mod itpir;
pub mod trivial;

pub use cpir::{QrClient, QrServer};
pub use itpir::{MultiServerClient, TwoServerClient, TwoServerServer};
pub use trivial::TrivialPir;

/// Measured cost of one PIR retrieval.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolCost {
    /// Bytes from client to server(s).
    pub upload_bytes: u64,
    /// Bytes from server(s) to client.
    pub download_bytes: u64,
    /// Big-number modular multiplications performed by the server(s).
    pub server_mod_muls: u64,
    /// Plain word operations (XORs etc.) performed by the server(s).
    pub server_word_ops: u64,
}

impl ProtocolCost {
    /// Total bytes both directions.
    pub fn total_bytes(&self) -> u64 {
        self.upload_bytes + self.download_bytes
    }
}

/// A bit-addressable database shared by all protocol implementations.
#[derive(Debug, Clone)]
pub struct BitDatabase {
    bits: Vec<u8>, // packed, LSB-first within each byte
    len: usize,
}

impl BitDatabase {
    /// Create from a bit vector.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut packed = vec![0u8; bits.len().div_ceil(8)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        BitDatabase {
            bits: packed,
            len: bits.len(),
        }
    }

    /// A pseudorandom database of `len` bits (deterministic in `seed`).
    pub fn random(len: usize, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let bits: Vec<bool> = (0..len).map(|_| rng.gen()).collect();
        Self::from_bits(&bits)
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        (self.bits[i / 8] >> (i % 8)) & 1 == 1
    }

    /// The packed bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_database_roundtrip() {
        let bits = vec![true, false, true, true, false, false, true, false, true];
        let db = BitDatabase::from_bits(&bits);
        assert_eq!(db.len(), 9);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(db.get(i), b, "bit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bit_panics() {
        BitDatabase::from_bits(&[true]).get(1);
    }

    #[test]
    fn random_is_deterministic() {
        let a = BitDatabase::random(100, 7);
        let b = BitDatabase::random(100, 7);
        assert_eq!(a.bytes(), b.bytes());
        let c = BitDatabase::random(100, 8);
        assert_ne!(a.bytes(), c.bytes());
    }

    #[test]
    fn cost_totals() {
        let c = ProtocolCost {
            upload_bytes: 10,
            download_bytes: 30,
            server_mod_muls: 5,
            server_word_ops: 9,
        };
        assert_eq!(c.total_bytes(), 40);
    }
}
