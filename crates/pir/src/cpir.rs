//! Kushilevitz–Ostrovsky computational PIR from quadratic residuosity.
//!
//! The database is an s × t bit matrix. To fetch bit (i*, j*) the client
//! sends one group element per column: a random quadratic residue for
//! every column except j*, and a quadratic **non**-residue with Jacobi
//! symbol +1 for column j* (indistinguishable without factoring n). For
//! each row r the server returns
//!
//! ```text
//! z_r = ∏_j  (x_j²  if M[r,j] = 0 else x_j)   mod n
//! ```
//!
//! z_{i*} is a non-residue iff M[i*, j*] = 1; the client decides residuosity
//! with Euler's criterion mod p and q (it knows the factorization).
//!
//! The cost that matters for E3: the server performs ~2 modular
//! multiplications of |n|-bit numbers **per database bit** — this is the
//! computational wall Sion & Carbunar measured against trivial transfer.

use crate::{BitDatabase, ProtocolCost};
use dasp_bigint::{gen_prime, mod_mul, mod_pow, BigUint};
use rand::Rng;

/// The server: holds the matrix and the public modulus.
pub struct QrServer {
    rows: usize,
    cols: usize,
    db: BitDatabase,
    n: BigUint,
}

/// The client: knows p, q and drives retrieval.
pub struct QrClient {
    p: BigUint,
    q: BigUint,
    n: BigUint,
    rows: usize,
    cols: usize,
}

fn shape(n_bits: usize) -> (usize, usize) {
    let cols = (n_bits as f64).sqrt().ceil() as usize;
    let cols = cols.max(1);
    let rows = n_bits.div_ceil(cols).max(1);
    (rows, cols)
}

impl QrClient {
    /// Generate a keypair for databases of `n_bits` bits, with primes of
    /// `prime_bits` each. Primes are forced ≡ 3 (mod 4) (Blum integer)
    /// so −1 is a non-residue mod each factor.
    pub fn generate<R: Rng + ?Sized>(n_bits: usize, prime_bits: usize, rng: &mut R) -> Self {
        let gen_blum = |rng: &mut R| loop {
            let p = gen_prime(prime_bits, rng);
            if p.low_u64() % 4 == 3 {
                return p;
            }
        };
        let p = gen_blum(rng);
        let q = loop {
            let q = gen_blum(rng);
            if q != p {
                break q;
            }
        };
        let n = p.mul(&q);
        let (rows, cols) = shape(n_bits);
        QrClient {
            p,
            q,
            n,
            rows,
            cols,
        }
    }

    /// The public modulus the server uses.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Is `x` a quadratic residue mod n? (Client-only: needs p, q.)
    fn is_qr(&self, x: &BigUint) -> bool {
        let euler = |x: &BigUint, m: &BigUint| {
            let exp = m.checked_sub(&BigUint::one()).expect("m >= 2").shr(1);
            mod_pow(&x.rem(m), &exp, m).is_one()
        };
        euler(x, &self.p) && euler(x, &self.q)
    }

    /// Sample a random QR mod n.
    fn random_qr<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        let r = BigUint::random_below(&self.n, rng);
        mod_mul(&r, &r, &self.n)
    }

    /// Sample a QNR with Jacobi symbol +1 (QNR mod both p and q).
    fn random_qnr<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        loop {
            let y = BigUint::random_below(&self.n, rng);
            if y.is_zero() {
                continue;
            }
            let euler = |x: &BigUint, m: &BigUint| {
                let exp = m.checked_sub(&BigUint::one()).expect("m >= 2").shr(1);
                mod_pow(&x.rem(m), &exp, m).is_one()
            };
            if !euler(&y, &self.p) && !euler(&y, &self.q) {
                return y;
            }
        }
    }

    /// Retrieve bit `index` from the server.
    pub fn retrieve<R: Rng + ?Sized>(
        &self,
        index: usize,
        server: &QrServer,
        rng: &mut R,
    ) -> (bool, ProtocolCost) {
        assert!(index < self.rows * self.cols, "index out of range");
        let (row, col) = (index / self.cols, index % self.cols);
        let query: Vec<BigUint> = (0..self.cols)
            .map(|j| {
                if j == col {
                    self.random_qnr(rng)
                } else {
                    self.random_qr(rng)
                }
            })
            .collect();
        let (answers, mod_muls) = server.answer(&query);
        let bit = !self.is_qr(&answers[row]);
        let elem_bytes = self.n.bits().div_ceil(8) as u64;
        let cost = ProtocolCost {
            upload_bytes: self.cols as u64 * elem_bytes,
            download_bytes: self.rows as u64 * elem_bytes,
            server_mod_muls: mod_muls,
            server_word_ops: 0,
        };
        (bit, cost)
    }
}

impl QrServer {
    /// Host `db` under the client's public modulus.
    pub fn new(db: BitDatabase, modulus: BigUint) -> Self {
        let (rows, cols) = shape(db.len());
        QrServer {
            rows,
            cols,
            db,
            n: modulus,
        }
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn bit(&self, r: usize, c: usize) -> bool {
        let idx = r * self.cols + c;
        idx < self.db.len() && self.db.get(idx)
    }

    /// Process a query: one z_r per row. Returns the answers and the
    /// number of modular multiplications spent.
    pub fn answer(&self, query: &[BigUint]) -> (Vec<BigUint>, u64) {
        assert_eq!(query.len(), self.cols, "query arity");
        let mut mod_muls = 0u64;
        let answers = (0..self.rows)
            .map(|r| {
                let mut acc = BigUint::one();
                for (c, x) in query.iter().enumerate() {
                    let factor = if self.bit(r, c) {
                        x.clone()
                    } else {
                        mod_muls += 1;
                        mod_mul(x, x, &self.n)
                    };
                    acc = mod_mul(&acc, &factor, &self.n);
                    mod_muls += 1;
                }
                acc
            })
            .collect();
        (answers, mod_muls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n_bits: usize, seed: u64) -> (BitDatabase, QrClient, QrServer) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = BitDatabase::random(n_bits, seed ^ 0xa5);
        let client = QrClient::generate(n_bits, 64, &mut rng);
        let server = QrServer::new(db.clone(), client.modulus().clone());
        (db, client, server)
    }

    #[test]
    fn retrieves_correct_bits() {
        let (db, client, server) = setup(100, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for i in (0..100).step_by(13) {
            let (bit, _) = client.retrieve(i, &server, &mut rng);
            assert_eq!(bit, db.get(i), "bit {i}");
        }
    }

    #[test]
    fn works_on_all_ones_and_all_zeros() {
        for (val, seed) in [(true, 3u64), (false, 4)] {
            let bits = vec![val; 30];
            let db = BitDatabase::from_bits(&bits);
            let mut rng = StdRng::seed_from_u64(seed);
            let client = QrClient::generate(30, 48, &mut rng);
            let server = QrServer::new(db, client.modulus().clone());
            for i in [0usize, 7, 29] {
                let (bit, _) = client.retrieve(i, &server, &mut rng);
                assert_eq!(bit, val);
            }
        }
    }

    #[test]
    fn server_cost_scales_with_database_bits() {
        let (_, client, server) = setup(400, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let (_, cost) = client.retrieve(0, &server, &mut rng);
        // ~1–2 mod-muls per matrix cell; 20×20 = 400 cells.
        assert!(cost.server_mod_muls >= 400);
        assert!(cost.server_mod_muls <= 2 * 400 + 40);
    }

    #[test]
    fn communication_is_sublinear_in_bits() {
        let (_, client, server) = setup(1 << 12, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let (_, cost) = client.retrieve(9, &server, &mut rng);
        // 64 columns + 64 rows of 16-byte elements = 2 KiB vs 512 B trivial
        // — at this toy size trivial wins on bytes too, which is the point
        // the crossover sweep in E3 demonstrates at scale.
        assert_eq!(cost.upload_bytes, 64 * 16);
        assert_eq!(cost.download_bytes, 64 * 16);
    }

    #[test]
    fn queries_look_like_jacobi_plus_one_elements() {
        // Without p, q the server only sees elements; check the designed
        // invariant that QRs and the QNR both pass the client's own
        // residuosity classification as expected.
        let (_, client, _) = setup(64, 9);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..10 {
            assert!(client.is_qr(&client.random_qr(&mut rng)));
            assert!(!client.is_qr(&client.random_qnr(&mut rng)));
        }
    }
}
