//! The trivial protocol: download the database, look locally.
//!
//! Information-theoretically private against a single server (the server
//! sees no query at all), and — per Sion & Carbunar — the baseline every
//! "real" single-server PIR must beat on end-to-end time but does not.

use crate::{BitDatabase, ProtocolCost};

/// Trivial PIR over a bit database.
pub struct TrivialPir {
    db: BitDatabase,
}

impl TrivialPir {
    /// Host a database.
    pub fn new(db: BitDatabase) -> Self {
        TrivialPir { db }
    }

    /// Retrieve bit `index`: the "query" ships the whole database.
    pub fn retrieve(&self, index: usize) -> (bool, ProtocolCost) {
        let transfer = self.db.bytes().to_vec();
        let bit = {
            // Client-side lookup over the transferred copy.
            let local = BitDatabase::from_bits(
                &(0..self.db.len())
                    .map(|i| (transfer[i / 8] >> (i % 8)) & 1 == 1)
                    .collect::<Vec<bool>>(),
            );
            local.get(index)
        };
        let cost = ProtocolCost {
            upload_bytes: 8, // just "send me the db"
            download_bytes: transfer.len() as u64,
            server_mod_muls: 0,
            server_word_ops: transfer.len() as u64 / 8,
        };
        (bit, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrieves_every_bit() {
        let db = BitDatabase::random(500, 3);
        let pir = TrivialPir::new(db.clone());
        for i in (0..500).step_by(37) {
            let (bit, _) = pir.retrieve(i);
            assert_eq!(bit, db.get(i));
        }
    }

    #[test]
    fn cost_is_whole_database() {
        let db = BitDatabase::random(8000, 4);
        let pir = TrivialPir::new(db);
        let (_, cost) = pir.retrieve(0);
        assert_eq!(cost.download_bytes, 1000);
        assert_eq!(cost.server_mod_muls, 0);
    }
}
